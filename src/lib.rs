#![warn(missing_docs)]

//! # cbq — Class-based Quantization for Neural Networks
//!
//! A from-scratch Rust reproduction of *"Class-based Quantization for
//! Neural Networks"* (Sun, Zhang, Gu, Li, Schlichtmann — DATE 2023).
//!
//! CQ assigns a *per-filter / per-neuron* uniform-quantization bit-width by
//! measuring how many classes each filter matters to (its *class-based
//! importance score*), then searching score thresholds that partition the
//! filters into bit-width groups until a target average bit-width is met,
//! and finally fine-tuning the quantized network with knowledge
//! distillation and a straight-through estimator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`tensor`] — dense f32 tensors, matmul, im2col convolution, pooling
//! - [`data`] — synthetic class-structured datasets (CIFAR-like)
//! - [`nn`] — layers, losses, SGD, the model zoo (VGG-small, ResNet-20)
//! - [`quant`] — the uniform quantizer, bit arrangements, fake-quant, STE
//! - [`core`] — the paper's contribution: importance scores, threshold
//!   search, knowledge-distillation refining, the end-to-end pipeline
//! - [`baselines`] — APN-style uniform quantization and a WrapNet-style
//!   low-precision-accumulator baseline
//! - [`serve`] — dynamic micro-batching inference runtime: versioned
//!   model registry (float / fake-quant / integer backends), bounded
//!   admission queue, zero-alloc worker pool, bit-exact responses
//! - [`fleet`] — fault-tolerant multi-replica serving: deterministic
//!   consistent-hash routing, retry budgets with deterministic backoff,
//!   graceful replica kill/restart chaos drills (`serve --replicas N`)
//! - [`telemetry`] — structured spans, counters, and run reports emitted
//!   by every pipeline phase (`CBQ_LOG`, `--log-level`, `--trace-out`)
//! - [`resilience`] — crash-safe checkpoints (atomic writes, CRC-64
//!   integrity), NaN/Inf guards, search budgets, and deterministic fault
//!   injection for chaos testing (`--resume`, `--faults`)
//!
//! # Quickstart
//!
//! ```no_run
//! use cbq::core::{CqConfig, CqPipeline};
//! use cbq::data::{SyntheticImages, SyntheticSpec};
//! use cbq::nn::models;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = SyntheticImages::generate(&SyntheticSpec::cifar10_like(), &mut rng)?;
//! let model = models::mlp(&[data.feature_len(), 64, 32, data.num_classes()], &mut rng)?;
//! let config = CqConfig::new(2.0, 2.0); // 2.0-bit weights / 2.0-bit activations
//! let report = CqPipeline::new(config).run(model, &data, &mut rng)?;
//! println!("quantized accuracy: {:.2}%", 100.0 * report.final_accuracy);
//! # Ok(())
//! # }
//! ```

pub use cbq_baselines as baselines;
pub use cbq_core as core;
pub use cbq_data as data;
pub use cbq_fleet as fleet;
pub use cbq_nn as nn;
pub use cbq_quant as quant;
pub use cbq_resilience as resilience;
pub use cbq_serve as serve;
pub use cbq_telemetry as telemetry;
pub use cbq_tensor as tensor;
