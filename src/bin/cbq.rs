//! `cbq` — command-line front end for the class-based quantization
//! pipeline.
//!
//! ```sh
//! cargo run --release --bin cbq -- \
//!     --model vgg --dataset c10 --wbits 2.0 --abits 2 --epochs 4 \
//!     --seed 0 --out report.json
//! ```
//!
//! Generates the synthetic dataset, trains the model, runs the full CQ
//! pipeline, prints a summary, and (optionally) writes the searched bit
//! arrangement plus the headline numbers as JSON.

use cbq::core::{CqConfig, CqPipeline, RefineConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Sequential, TrainerConfig};
use cbq::resilience::{atomic_write_text, FaultPlan, GuardPolicy};
use cbq::telemetry::{JsonlSink, Level, Sink, StderrSink, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    model: String,
    dataset: String,
    wbits: f32,
    abits: u8,
    epochs: usize,
    seed: u64,
    out: Option<String>,
    log_level: Option<Level>,
    trace_out: Option<String>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    max_probes: Option<u64>,
    search_deadline: Option<f64>,
    guard: GuardPolicy,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            model: "vgg".into(),
            dataset: "c10".into(),
            wbits: 2.0,
            abits: 2,
            epochs: 4,
            seed: 0,
            out: None,
            log_level: None,
            trace_out: None,
            checkpoint_dir: None,
            resume: None,
            max_probes: None,
            search_deadline: None,
            guard: GuardPolicy::Abort,
            faults: None,
            threads: None,
        }
    }
}

const USAGE: &str = "usage: cbq [--model vgg|resnet20x1|resnet20x5|mlp] \
[--dataset c10|c100] [--wbits F] [--abits N] [--epochs N] [--seed N] \
[--out FILE.json] [--log-level error|warn|info|debug|trace] \
[--trace-out FILE.jsonl] [--checkpoint-dir DIR] [--resume DIR] \
[--max-probes N] [--search-deadline SECONDS] \
[--guard abort|skip-batch|halve-lr[:N]] [--faults SPEC] [--threads N]";

fn parse_level(s: &str) -> Result<Level, String> {
    match s.to_ascii_lowercase().as_str() {
        "error" => Ok(Level::Error),
        "warn" => Ok(Level::Warn),
        "info" => Ok(Level::Info),
        "debug" => Ok(Level::Debug),
        "trace" => Ok(Level::Trace),
        other => Err(format!(
            "--log-level: unknown level {other} (expected error|warn|info|debug|trace)"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--model" => opts.model = value("--model")?.clone(),
            "--dataset" => opts.dataset = value("--dataset")?.clone(),
            "--wbits" => {
                opts.wbits = value("--wbits")?
                    .parse()
                    .map_err(|e| format!("--wbits: {e}"))?;
            }
            "--abits" => {
                opts.abits = value("--abits")?
                    .parse()
                    .map_err(|e| format!("--abits: {e}"))?;
            }
            "--epochs" => {
                opts.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--log-level" => opts.log_level = Some(parse_level(value("--log-level")?)?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?.clone()),
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?.clone()),
            "--resume" => opts.resume = Some(value("--resume")?.clone()),
            "--max-probes" => {
                opts.max_probes = Some(
                    value("--max-probes")?
                        .parse()
                        .map_err(|e| format!("--max-probes: {e}"))?,
                );
            }
            "--search-deadline" => {
                opts.search_deadline = Some(
                    value("--search-deadline")?
                        .parse()
                        .map_err(|e| format!("--search-deadline: {e}"))?,
                );
            }
            "--guard" => {
                opts.guard =
                    GuardPolicy::parse(value("--guard")?).map_err(|e| format!("--guard: {e}"))?;
            }
            "--faults" => {
                opts.faults = Some(
                    FaultPlan::parse(value("--faults")?).map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be positive (1 forces the serial path)".into());
                }
                opts.threads = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if !["vgg", "resnet20x1", "resnet20x5", "mlp"].contains(&opts.model.as_str()) {
        return Err(format!("unknown model {}\n{USAGE}", opts.model));
    }
    if !["c10", "c100"].contains(&opts.dataset.as_str()) {
        return Err(format!("unknown dataset {}\n{USAGE}", opts.dataset));
    }
    if opts.wbits <= 0.0 || opts.wbits > 8.0 {
        return Err("--wbits must lie in (0, 8]".into());
    }
    if opts.abits > 8 {
        return Err("--abits must lie in 0..=8".into());
    }
    Ok(opts)
}

fn build_model(
    opts: &Options,
    spec: &SyntheticSpec,
    rng: &mut StdRng,
) -> Result<Sequential, cbq::nn::NnError> {
    match opts.model.as_str() {
        "vgg" => models::vgg_small(
            &models::VggConfig::for_input(spec.channels, spec.height, spec.width, spec.num_classes),
            rng,
        ),
        "resnet20x1" => models::resnet20(
            &models::ResNetConfig::resnet20(spec.channels, 1, spec.num_classes),
            rng,
        ),
        "resnet20x5" => models::resnet20(
            &models::ResNetConfig::resnet20(spec.channels, 5, spec.num_classes),
            rng,
        ),
        _ => models::mlp(&[spec.feature_len(), 64, 32, 16, spec.num_classes], rng),
    }
}

fn build_telemetry(opts: &Options) -> Result<Telemetry, Box<dyn std::error::Error>> {
    let stderr = match opts.log_level {
        Some(level) => StderrSink::new(level),
        None => StderrSink::from_env(),
    };
    let mut sinks: Vec<Arc<dyn Sink>> = vec![Arc::new(stderr)];
    if let Some(path) = &opts.trace_out {
        sinks.push(Arc::new(JsonlSink::create(path)?));
    }
    Ok(Telemetry::new(sinks))
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = build_telemetry(opts)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let spec = match opts.dataset.as_str() {
        "c100" => SyntheticSpec::cifar100_like(),
        _ => SyntheticSpec::cifar10_like(),
    };
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let model = build_model(opts, &spec, &mut rng)?;

    let lr = if opts.model == "vgg" { 0.02 } else { 0.1 };
    let mut config = CqConfig::new(opts.wbits, opts.abits as f32);
    let mut pretrain = TrainerConfig::quick(opts.epochs, lr);
    pretrain.guard = opts.guard;
    config.pretrain = Some(pretrain);
    config.refine = RefineConfig::quick(opts.epochs, lr / 5.0);
    config.refine.guard = opts.guard;
    // Checkpointed runs pin the refine shuffle to the run seed so a
    // resumed run replays the interrupted one bit for bit.
    if opts.checkpoint_dir.is_some() || opts.resume.is_some() {
        config.refine.shuffle_seed = Some(opts.seed);
    }
    config.search.step = 0.2;
    config.search.max_probes = opts.max_probes;
    config.search.max_seconds = opts.search_deadline;
    // Scoring, search and checkpoints are bit-exact at any worker count;
    // --threads 1 forces the serial reference path.
    if let Some(n) = opts.threads {
        config.parallelism = cbq::core::Parallelism::new(n);
    }
    eprintln!(
        "cbq: {} on {} -> {:.1}-bit weights / {}-bit activations, {} epochs, seed {}, {} worker(s)",
        opts.model,
        opts.dataset,
        opts.wbits,
        opts.abits,
        opts.epochs,
        opts.seed,
        config.parallelism.threads()
    );
    let mut pipeline = CqPipeline::new(config).with_telemetry(telemetry.clone());
    // --resume implies checkpointing into the same directory, so the run
    // keeps extending its own checkpoint trail.
    if let Some(dir) = opts.resume.as_ref().or(opts.checkpoint_dir.as_ref()) {
        pipeline = pipeline.with_checkpoint_dir(dir);
    }
    pipeline = pipeline.with_resume(opts.resume.is_some());
    if let Some(faults) = &opts.faults {
        pipeline = pipeline.with_fault_plan(Arc::new(faults.clone()));
    }
    let report = pipeline.run(model, &data, &mut rng)?;
    telemetry.flush();
    if let Some(path) = &opts.trace_out {
        eprintln!("wrote trace {path}");
    }

    println!("full precision : {:6.2}%", 100.0 * report.fp_accuracy);
    println!(
        "after search   : {:6.2}%",
        100.0 * report.pre_refine_accuracy
    );
    println!("after refining : {:6.2}%", 100.0 * report.final_accuracy);
    println!(
        "average bits   : {:.3} (target {:.1})",
        report.search.final_avg_bits, opts.wbits
    );
    println!(
        "compression    : {:.2}x vs fp32",
        report.size.compression_ratio()
    );

    if let Some(path) = &opts.out {
        let payload = serde_json::json!({
            "model": opts.model,
            "dataset": opts.dataset,
            "weight_bits_target": opts.wbits,
            "act_bits": opts.abits,
            "seed": opts.seed,
            "fp_accuracy": report.fp_accuracy,
            "pre_refine_accuracy": report.pre_refine_accuracy,
            "final_accuracy": report.final_accuracy,
            "avg_bits": report.search.final_avg_bits,
            "thresholds": report.search.thresholds,
            "arrangement": report.search.arrangement,
        });
        atomic_write_text(path, &serde_json::to_string_pretty(&payload)?)?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cbq: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse_args(&args(&[
            "--model",
            "resnet20x1",
            "--dataset",
            "c100",
            "--wbits",
            "3.0",
            "--abits",
            "4",
            "--epochs",
            "7",
            "--seed",
            "42",
            "--out",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(o.model, "resnet20x1");
        assert_eq!(o.dataset, "c100");
        assert_eq!(o.wbits, 3.0);
        assert_eq!(o.abits, 4);
        assert_eq!(o.epochs, 7);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse_args(&args(&[
            "--log-level",
            "debug",
            "--trace-out",
            "trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(o.log_level, Some(Level::Debug));
        assert_eq!(o.trace_out.as_deref(), Some("trace.jsonl"));
        // Case-insensitive level names.
        let o = parse_args(&args(&["--log-level", "TRACE"])).unwrap();
        assert_eq!(o.log_level, Some(Level::Trace));
        // Unset by default.
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.log_level, None);
        assert_eq!(o.trace_out, None);
    }

    #[test]
    fn resilience_flags_parse() {
        let o = parse_args(&args(&[
            "--checkpoint-dir",
            "ckpts",
            "--max-probes",
            "50",
            "--search-deadline",
            "12.5",
            "--guard",
            "halve-lr:3",
            "--faults",
            "fail-at:search,poison-grad:7",
        ]))
        .unwrap();
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpts"));
        assert_eq!(o.max_probes, Some(50));
        assert_eq!(o.search_deadline, Some(12.5));
        assert_eq!(o.guard, GuardPolicy::HalveLr { max_halvings: 3 });
        assert!(o.faults.is_some());

        let o = parse_args(&args(&["--resume", "ckpts"])).unwrap();
        assert_eq!(o.resume.as_deref(), Some("ckpts"));
        assert_eq!(o.checkpoint_dir, None);

        assert!(parse_args(&args(&["--guard", "explode"])).is_err());
        assert!(parse_args(&args(&["--faults", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--max-probes", "many"])).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        let o = parse_args(&args(&["--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.threads, None);
        assert!(parse_args(&args(&["--threads", "0"])).is_err());
        assert!(parse_args(&args(&["--threads", "lots"])).is_err());
        assert!(parse_args(&args(&["--threads"])).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(parse_args(&args(&["--model", "alexnet"])).is_err());
        assert!(parse_args(&args(&["--dataset", "imagenet"])).is_err());
        assert!(parse_args(&args(&["--wbits", "9.0"])).is_err());
        assert!(parse_args(&args(&["--wbits", "0"])).is_err());
        assert!(parse_args(&args(&["--abits", "12"])).is_err());
        assert!(parse_args(&args(&["--abits"])).is_err());
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
        assert!(parse_args(&args(&["--log-level", "loud"])).is_err());
        assert!(parse_args(&args(&["--trace-out"])).is_err());
    }
}
