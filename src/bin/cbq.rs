//! `cbq` — command-line front end for the class-based quantization
//! pipeline.
//!
//! ```sh
//! cargo run --release --bin cbq -- \
//!     --model vgg --dataset c10 --wbits 2.0 --abits 2 --epochs 4 \
//!     --seed 0 --out report.json
//! ```
//!
//! Generates the synthetic dataset, trains the model, runs the full CQ
//! pipeline, prints a summary, and (optionally) writes the searched bit
//! arrangement plus the headline numbers as JSON.
//!
//! The `serve` subcommand demos the micro-batching inference runtime:
//! it trains a small model, captures a serving artifact (weights +
//! quantization state), loads it into the requested backends, drives a
//! multi-client load against the server, and verifies every response
//! bit-for-bit against the offline single-sample reference:
//!
//! ```sh
//! cargo run --release --bin cbq -- serve \
//!     --backends float,fake-quant,integer,packed --requests 96 --clients 4
//! ```

use cbq::core::{
    requant_for_mix, CqConfig, CqPipeline, Parallelism, RefineConfig, ScoreConfig, SearchConfig,
};
use cbq::data::{Subset, SyntheticImages, SyntheticSpec};
use cbq::fleet::{Fleet, FleetConfig, RetryPolicy};
use cbq::nn::{
    evaluate, load_state_dict, models, state_dict, Layer, Phase, Sequential, Trainer,
    TrainerConfig,
};
use cbq::quant::{
    act_clip_bounds, install_act_quant, install_uniform, restore_act_clip_bounds, set_act_bits,
    set_act_calibration, BitWidth,
};
use cbq::resilience::{atomic_write_text, FaultPlan, GuardPolicy};
use cbq::serve::{
    compile_packed_codes, offline_logits, ArchSpec, Backend, BatchPolicy, LoadedModel,
    ModelArtifact, ModelHandle, ModelRegistry, ObserveConfig, QuantState, RequantConfig,
    RequantDecision, RequantSetup, Server, ServeError, ServerConfig, SystemClock,
};
use cbq::telemetry::{JsonlSink, Level, Sink, StderrSink, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    model: String,
    dataset: String,
    wbits: f32,
    abits: u8,
    epochs: usize,
    seed: u64,
    out: Option<String>,
    log_level: Option<Level>,
    trace_out: Option<String>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    max_probes: Option<u64>,
    search_deadline: Option<f64>,
    guard: GuardPolicy,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            model: "vgg".into(),
            dataset: "c10".into(),
            wbits: 2.0,
            abits: 2,
            epochs: 4,
            seed: 0,
            out: None,
            log_level: None,
            trace_out: None,
            checkpoint_dir: None,
            resume: None,
            max_probes: None,
            search_deadline: None,
            guard: GuardPolicy::Abort,
            faults: None,
            threads: None,
        }
    }
}

const USAGE: &str = "usage: cbq [--model vgg|resnet20x1|resnet20x5|mlp] \
[--dataset c10|c100] [--wbits F] [--abits N] [--epochs N] [--seed N] \
[--out FILE.json] [--log-level error|warn|info|debug|trace] \
[--trace-out FILE.jsonl] [--checkpoint-dir DIR] [--resume DIR] \
[--max-probes N] [--search-deadline SECONDS] \
[--guard abort|skip-batch|halve-lr[:N]] [--faults SPEC] [--threads N]";

fn parse_level(s: &str) -> Result<Level, String> {
    match s.to_ascii_lowercase().as_str() {
        "error" => Ok(Level::Error),
        "warn" => Ok(Level::Warn),
        "info" => Ok(Level::Info),
        "debug" => Ok(Level::Debug),
        "trace" => Ok(Level::Trace),
        other => Err(format!(
            "--log-level: unknown level {other} (expected error|warn|info|debug|trace)"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--model" => opts.model = value("--model")?.clone(),
            "--dataset" => opts.dataset = value("--dataset")?.clone(),
            "--wbits" => {
                opts.wbits = value("--wbits")?
                    .parse()
                    .map_err(|e| format!("--wbits: {e}"))?;
            }
            "--abits" => {
                opts.abits = value("--abits")?
                    .parse()
                    .map_err(|e| format!("--abits: {e}"))?;
            }
            "--epochs" => {
                opts.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--log-level" => opts.log_level = Some(parse_level(value("--log-level")?)?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?.clone()),
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?.clone()),
            "--resume" => opts.resume = Some(value("--resume")?.clone()),
            "--max-probes" => {
                opts.max_probes = Some(
                    value("--max-probes")?
                        .parse()
                        .map_err(|e| format!("--max-probes: {e}"))?,
                );
            }
            "--search-deadline" => {
                opts.search_deadline = Some(
                    value("--search-deadline")?
                        .parse()
                        .map_err(|e| format!("--search-deadline: {e}"))?,
                );
            }
            "--guard" => {
                opts.guard =
                    GuardPolicy::parse(value("--guard")?).map_err(|e| format!("--guard: {e}"))?;
            }
            "--faults" => {
                opts.faults = Some(
                    FaultPlan::parse(value("--faults")?).map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be positive (1 forces the serial path)".into());
                }
                opts.threads = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if !["vgg", "resnet20x1", "resnet20x5", "mlp"].contains(&opts.model.as_str()) {
        return Err(format!("unknown model {}\n{USAGE}", opts.model));
    }
    if !["c10", "c100"].contains(&opts.dataset.as_str()) {
        return Err(format!("unknown dataset {}\n{USAGE}", opts.dataset));
    }
    if opts.wbits <= 0.0 || opts.wbits > 8.0 {
        return Err("--wbits must lie in (0, 8]".into());
    }
    if opts.abits > 8 {
        return Err("--abits must lie in 0..=8".into());
    }
    Ok(opts)
}

fn build_model(
    opts: &Options,
    spec: &SyntheticSpec,
    rng: &mut StdRng,
) -> Result<Sequential, cbq::nn::NnError> {
    match opts.model.as_str() {
        "vgg" => models::vgg_small(
            &models::VggConfig::for_input(spec.channels, spec.height, spec.width, spec.num_classes),
            rng,
        ),
        "resnet20x1" => models::resnet20(
            &models::ResNetConfig::resnet20(spec.channels, 1, spec.num_classes),
            rng,
        ),
        "resnet20x5" => models::resnet20(
            &models::ResNetConfig::resnet20(spec.channels, 5, spec.num_classes),
            rng,
        ),
        _ => models::mlp(&[spec.feature_len(), 64, 32, 16, spec.num_classes], rng),
    }
}

fn build_telemetry(opts: &Options) -> Result<Telemetry, Box<dyn std::error::Error>> {
    let stderr = match opts.log_level {
        Some(level) => StderrSink::new(level),
        None => StderrSink::from_env(),
    };
    let mut sinks: Vec<Arc<dyn Sink>> = vec![Arc::new(stderr)];
    if let Some(path) = &opts.trace_out {
        sinks.push(Arc::new(JsonlSink::create(path)?));
    }
    Ok(Telemetry::new(sinks))
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = build_telemetry(opts)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let spec = match opts.dataset.as_str() {
        "c100" => SyntheticSpec::cifar100_like(),
        _ => SyntheticSpec::cifar10_like(),
    };
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let model = build_model(opts, &spec, &mut rng)?;

    let lr = if opts.model == "vgg" { 0.02 } else { 0.1 };
    let mut config = CqConfig::new(opts.wbits, opts.abits as f32);
    let mut pretrain = TrainerConfig::quick(opts.epochs, lr);
    pretrain.guard = opts.guard;
    config.pretrain = Some(pretrain);
    config.refine = RefineConfig::quick(opts.epochs, lr / 5.0);
    config.refine.guard = opts.guard;
    // Checkpointed runs pin the refine shuffle to the run seed so a
    // resumed run replays the interrupted one bit for bit.
    if opts.checkpoint_dir.is_some() || opts.resume.is_some() {
        config.refine.shuffle_seed = Some(opts.seed);
    }
    config.search.step = 0.2;
    config.search.max_probes = opts.max_probes;
    config.search.max_seconds = opts.search_deadline;
    // Scoring, search and checkpoints are bit-exact at any worker count;
    // --threads 1 forces the serial reference path.
    if let Some(n) = opts.threads {
        config.parallelism = cbq::core::Parallelism::new(n);
    }
    eprintln!(
        "cbq: {} on {} -> {:.1}-bit weights / {}-bit activations, {} epochs, seed {}, {} worker(s), {} kernels ({})",
        opts.model,
        opts.dataset,
        opts.wbits,
        opts.abits,
        opts.epochs,
        opts.seed,
        config.parallelism.threads(),
        cbq::tensor::dispatch::active_isa().name(),
        config.numerics.name()
    );
    let mut pipeline = CqPipeline::new(config).with_telemetry(telemetry.clone());
    // --resume implies checkpointing into the same directory, so the run
    // keeps extending its own checkpoint trail.
    if let Some(dir) = opts.resume.as_ref().or(opts.checkpoint_dir.as_ref()) {
        pipeline = pipeline.with_checkpoint_dir(dir);
    }
    pipeline = pipeline.with_resume(opts.resume.is_some());
    if let Some(faults) = &opts.faults {
        pipeline = pipeline.with_fault_plan(Arc::new(faults.clone()));
    }
    let report = pipeline.run(model, &data, &mut rng)?;
    telemetry.flush();
    if let Some(path) = &opts.trace_out {
        eprintln!("wrote trace {path}");
    }

    println!("full precision : {:6.2}%", 100.0 * report.fp_accuracy);
    println!(
        "after search   : {:6.2}%",
        100.0 * report.pre_refine_accuracy
    );
    println!("after refining : {:6.2}%", 100.0 * report.final_accuracy);
    println!(
        "average bits   : {:.3} (target {:.1})",
        report.search.final_avg_bits, opts.wbits
    );
    println!(
        "compression    : {:.2}x vs fp32",
        report.size.compression_ratio()
    );

    if let Some(path) = &opts.out {
        let payload = serde_json::json!({
            "model": opts.model,
            "dataset": opts.dataset,
            "weight_bits_target": opts.wbits,
            "act_bits": opts.abits,
            "seed": opts.seed,
            "fp_accuracy": report.fp_accuracy,
            "pre_refine_accuracy": report.pre_refine_accuracy,
            "final_accuracy": report.final_accuracy,
            "avg_bits": report.search.final_avg_bits,
            "thresholds": report.search.thresholds,
            "arrangement": report.search.arrangement,
        });
        atomic_write_text(path, &serde_json::to_string_pretty(&payload)?)?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cbq: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `cbq serve` options.
#[derive(Debug, Clone, PartialEq)]
struct ServeOptions {
    model: String,
    dataset: String,
    backends: Vec<Backend>,
    wbits: u8,
    abits: u8,
    epochs: usize,
    seed: u64,
    workers: usize,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    requests: usize,
    clients: usize,
    replicas: usize,
    faults: Option<FaultPlan>,
    drift_window: u64,
    requant: bool,
    requant_margin: f64,
    shadow_windows: u64,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    out: Option<String>,
    log_level: Option<Level>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            model: "mlp".into(),
            dataset: "tiny".into(),
            backends: vec![
                Backend::Float,
                Backend::FakeQuant,
                Backend::Integer,
                Backend::PackedInteger,
            ],
            wbits: 4,
            abits: 4,
            epochs: 3,
            seed: 0,
            workers: 0,
            max_batch: 8,
            max_wait_us: 500,
            queue_cap: 256,
            requests: 96,
            clients: 4,
            replicas: 1,
            faults: None,
            drift_window: 32,
            requant: false,
            requant_margin: 0.0,
            shadow_windows: 2,
            metrics_out: None,
            trace_out: None,
            out: None,
            log_level: None,
        }
    }
}

const SERVE_USAGE: &str = "usage: cbq serve [--model mlp|vgg|resnet20x1|resnet20x5] \
[--dataset tiny|c10|c100] [--backends float,fake-quant,integer,packed] [--wbits N] [--abits N] \
[--epochs N] [--seed N] [--workers N] [--max-batch N] [--max-wait-us N] [--queue-cap N] \
[--requests N] [--clients N] [--replicas N] [--faults SPEC] [--drift-window N] \
[--requant] [--requant-margin F] [--shadow-windows N] \
[--metrics-out FILE.json] [--trace-out FILE.jsonl] [--out FILE.json] \
[--log-level error|warn|info|debug|trace]";

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let parse_usize = |name: &str, v: &str| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--model" => opts.model = value("--model")?.clone(),
            "--dataset" => opts.dataset = value("--dataset")?.clone(),
            "--backends" => {
                let spec = value("--backends")?;
                let mut backends = Vec::new();
                for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
                    let b = Backend::parse(token.trim()).map_err(|e| format!("--backends: {e}"))?;
                    if !backends.contains(&b) {
                        backends.push(b);
                    }
                }
                if backends.is_empty() {
                    return Err("--backends parsed empty".into());
                }
                opts.backends = backends;
            }
            "--wbits" => {
                opts.wbits = value("--wbits")?
                    .parse()
                    .map_err(|e| format!("--wbits: {e}"))?;
            }
            "--abits" => {
                opts.abits = value("--abits")?
                    .parse()
                    .map_err(|e| format!("--abits: {e}"))?;
            }
            "--epochs" => opts.epochs = parse_usize("--epochs", value("--epochs")?)?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => opts.workers = parse_usize("--workers", value("--workers")?)?,
            "--max-batch" => opts.max_batch = parse_usize("--max-batch", value("--max-batch")?)?,
            "--max-wait-us" => {
                opts.max_wait_us = value("--max-wait-us")?
                    .parse()
                    .map_err(|e| format!("--max-wait-us: {e}"))?;
            }
            "--queue-cap" => opts.queue_cap = parse_usize("--queue-cap", value("--queue-cap")?)?,
            "--requests" => opts.requests = parse_usize("--requests", value("--requests")?)?,
            "--clients" => opts.clients = parse_usize("--clients", value("--clients")?)?,
            "--replicas" => opts.replicas = parse_usize("--replicas", value("--replicas")?)?,
            "--faults" => {
                opts.faults = Some(
                    FaultPlan::parse(value("--faults")?).map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--drift-window" => {
                opts.drift_window = value("--drift-window")?
                    .parse()
                    .map_err(|e| format!("--drift-window: {e}"))?;
            }
            "--requant" => opts.requant = true,
            "--requant-margin" => {
                opts.requant_margin = value("--requant-margin")?
                    .parse()
                    .map_err(|e| format!("--requant-margin: {e}"))?;
            }
            "--shadow-windows" => {
                opts.shadow_windows = value("--shadow-windows")?
                    .parse()
                    .map_err(|e| format!("--shadow-windows: {e}"))?;
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?.clone()),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?.clone()),
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--log-level" => opts.log_level = Some(parse_level(value("--log-level")?)?),
            "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{SERVE_USAGE}")),
        }
    }
    if !["mlp", "vgg", "resnet20x1", "resnet20x5"].contains(&opts.model.as_str()) {
        return Err(format!("unknown model {}\n{SERVE_USAGE}", opts.model));
    }
    if !["tiny", "c10", "c100"].contains(&opts.dataset.as_str()) {
        return Err(format!("unknown dataset {}\n{SERVE_USAGE}", opts.dataset));
    }
    if opts.model != "mlp"
        && opts
            .backends
            .iter()
            .any(|b| matches!(b, Backend::Integer | Backend::PackedInteger))
    {
        return Err(
            "the integer and packed backends lower Flatten/Linear/Relu topologies \
             only; use --backends float,fake-quant with conv models"
                .into(),
        );
    }
    if opts.wbits == 0 || opts.wbits > 8 {
        return Err("--wbits must lie in 1..=8".into());
    }
    if opts.abits == 0 || opts.abits > 8 {
        return Err("--abits must lie in 1..=8".into());
    }
    for (name, v) in [
        ("--max-batch", opts.max_batch),
        ("--queue-cap", opts.queue_cap),
        ("--requests", opts.requests),
        ("--clients", opts.clients),
        ("--replicas", opts.replicas),
    ] {
        if v == 0 {
            return Err(format!("{name} must be positive"));
        }
    }
    if opts.drift_window == 0 {
        return Err("--drift-window must be positive".into());
    }
    if (opts.replicas > 1 || opts.faults.is_some())
        && (opts.metrics_out.is_some() || opts.trace_out.is_some())
    {
        return Err("--metrics-out/--trace-out observe a single server; \
             they are not yet supported on the fleet path (--replicas/--faults)"
            .into());
    }
    if opts.requant && (opts.replicas > 1 || opts.faults.is_some()) {
        return Err("--requant runs a single adaptive server; it is not yet \
             supported on the fleet path (--replicas/--faults)"
            .into());
    }
    if opts.requant && !opts.backends.contains(&Backend::FakeQuant) {
        return Err("--requant re-searches the bit arrangement, which only the \
             fake-quant backend executes; add fake-quant to --backends"
            .into());
    }
    if !opts.requant && (opts.requant_margin != 0.0 || opts.shadow_windows != 2) {
        return Err("--requant-margin/--shadow-windows tune the requant loop; \
             they need --requant"
            .into());
    }
    if !opts.requant_margin.is_finite() || opts.requant_margin < 0.0 {
        return Err("--requant-margin must be finite and >= 0".into());
    }
    if opts.shadow_windows == 0 {
        return Err("--shadow-windows must be positive".into());
    }
    Ok(opts)
}

/// The architecture spec matching the main command's model zoo choices.
fn serve_arch(model: &str, spec: &SyntheticSpec) -> ArchSpec {
    match model {
        "vgg" => {
            let c = models::VggConfig::for_input(
                spec.channels,
                spec.height,
                spec.width,
                spec.num_classes,
            );
            ArchSpec::VggSmall {
                in_channels: c.in_channels,
                height: c.height,
                width: c.width,
                base_width: c.base_width,
                fc_dim: c.fc_dim,
                num_classes: c.num_classes,
            }
        }
        "resnet20x1" | "resnet20x5" => {
            let expand = if model == "resnet20x5" { 5 } else { 1 };
            let c = models::ResNetConfig::resnet20(spec.channels, expand, spec.num_classes);
            ArchSpec::ResNet20 {
                in_channels: c.in_channels,
                base_width: c.base_width,
                expand: c.expand,
                blocks_per_stage: c.blocks_per_stage,
                num_classes: c.num_classes,
            }
        }
        _ => ArchSpec::Mlp(vec![spec.feature_len(), 64, 32, 16, spec.num_classes]),
    }
}

/// Production glue for `serve --requant`: rebuilds the serving-config
/// network from the incumbent artifact (weights, calibrated activation
/// clips, activation bits) and re-runs importance scoring plus the
/// bit-arrangement search with the observed per-class request counts as
/// the class weights — the mix-weighted form of the paper's Eq. 7
/// objective. Only the weight arrangement changes; everything else in
/// the artifact is inherited from the incumbent.
fn requant_builder(val: Subset, avg_bits: u8) -> Box<dyn cbq::serve::CandidateBuilder> {
    Box::new(
        move |mix: &[u64], incumbent: &ModelArtifact| -> cbq::serve::Result<ModelArtifact> {
            let glue = |e: String| ServeError::Artifact(format!("requant glue: {e}"));
            let quant = incumbent
                .quant
                .clone()
                .ok_or_else(|| glue("incumbent has no quant state".into()))?;
            let mut net = incumbent.arch.build()?;
            load_state_dict(&mut net, &incumbent.state).map_err(|e| glue(e.to_string()))?;
            install_act_quant(&mut net);
            set_act_calibration(&mut net, false);
            restore_act_clip_bounds(&mut net, &quant.act_clips);
            set_act_bits(
                &mut net,
                Some(BitWidth::new(quant.act_bits).map_err(|e| glue(e.to_string()))?),
            );
            let score = ScoreConfig {
                samples_per_class: 8,
                ..ScoreConfig::default()
            };
            let search = SearchConfig::new(f32::from(avg_bits));
            let out = requant_for_mix(
                &mut net,
                &val,
                mix,
                &score,
                &search,
                &Telemetry::disabled(),
                Parallelism::serial(),
            )
            .map_err(|e| glue(e.to_string()))?;
            Ok(ModelArtifact {
                quant: Some(QuantState {
                    arrangement: out.search.arrangement,
                    ..quant
                }),
                // Packed codes encode the incumbent's arrangement; the
                // candidate serves the fake-quant backend only, so drop
                // them rather than ship a stale section.
                packed: None,
                ..incumbent.clone()
            })
        },
    )
}

/// Per-backend outcome of the load run.
struct BackendReport {
    backend: Backend,
    served: usize,
    correct: usize,
    mismatches: usize,
    errors: usize,
}

fn run_serve(opts: &ServeOptions) -> Result<(), Box<dyn std::error::Error>> {
    let stderr = match opts.log_level {
        Some(level) => StderrSink::new(level),
        None => StderrSink::from_env(),
    };
    let telemetry = Telemetry::new(vec![Arc::new(stderr) as Arc<dyn Sink>]);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let spec = match opts.dataset.as_str() {
        "c10" => SyntheticSpec::cifar10_like(),
        "c100" => SyntheticSpec::cifar100_like(),
        _ => SyntheticSpec::tiny(4),
    };
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let arch = serve_arch(&opts.model, &spec);
    let mut net = arch.build_init(&mut rng)?;
    let lr = if opts.model == "vgg" { 0.02 } else { 0.1 };
    Trainer::new(TrainerConfig::quick(opts.epochs, lr)).fit(&mut net, data.train(), &mut rng)?;
    let float_acc = evaluate(&mut net, data.test(), 64)?;

    // Capture the serving artifact: weights first, then calibrate the
    // activation quantizers (same order as the pipeline: clips measured
    // on the float network) and freeze a uniform weight arrangement.
    let state = state_dict(&mut net);
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    let calib = data.val().head(256)?;
    for batch in calib.batches(32) {
        net.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();
    let quant = QuantState {
        arrangement: install_uniform(&mut net, BitWidth::new(opts.wbits)?),
        act_bits: opts.abits,
        act_clips: act_clip_bounds(&mut net),
    };
    // The training-set label histogram is the drift baseline: serving
    // windows whose predicted-class mix wanders from it get flagged.
    let mut class_counts = vec![0u64; spec.num_classes];
    for &label in data.train().labels() {
        class_counts[label] += 1;
    }
    let mut artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(quant),
        baseline_mix: Some(class_counts.iter().map(|&c| c as f64).collect()),
        packed: None,
    };
    if opts.backends.contains(&Backend::PackedInteger) {
        // Author the V3 packed-code section so the packed backend's
        // load-time integrity verification runs against it.
        artifact.packed = Some(compile_packed_codes(&artifact)?);
    }

    let registry = Arc::new(ModelRegistry::new());
    let mut targets = Vec::new();
    for &backend in &opts.backends {
        let handle = registry.load(backend.as_str(), &artifact, backend)?;
        let model = registry.get(&handle)?;
        targets.push((backend, handle, model));
    }

    // Request payloads, shared by the single-server and fleet paths:
    // request i carries test row i (mod test set) plus its label.
    let item_len = spec.feature_len();
    let test = data.test();
    let images = test.images().as_slice();
    let labels = test.labels();
    let samples: Vec<(&[f32], usize)> = (0..opts.requests)
        .map(|i| {
            let j = i % test.len();
            (&images[j * item_len..(j + 1) * item_len], labels[j])
        })
        .collect();

    if opts.replicas > 1 || opts.faults.is_some() {
        return run_serve_fleet(opts, registry, &targets, &samples, float_acc, &telemetry);
    }

    let observe = ObserveConfig {
        baseline: artifact.baseline_mix.clone(),
        window: opts.drift_window,
        trace: opts.trace_out.is_some(),
        trace_path: opts.trace_out.clone().map(Into::into),
        metrics_path: opts.metrics_out.clone().map(Into::into),
        ..ObserveConfig::for_classes(spec.num_classes)
    };
    let server_config = ServerConfig {
        policy: BatchPolicy {
            max_batch: opts.max_batch,
            max_wait: Duration::from_micros(opts.max_wait_us),
            queue_capacity: opts.queue_cap,
        },
        workers: opts.workers,
    };
    // Kept for the post-run verification: a requant cutover loads a new
    // registry version whose logits the offline check must compare
    // against, not the incumbent's.
    let registry_ref = registry.clone();
    let clock = Arc::new(SystemClock::new());
    let server = if opts.requant {
        let setup = RequantSetup {
            model: Backend::FakeQuant.as_str().into(),
            backend: Backend::FakeQuant,
            artifact: artifact.clone(),
            config: RequantConfig {
                margin: opts.requant_margin,
                shadow_windows: opts.shadow_windows,
                ..RequantConfig::default()
            },
            builder: requant_builder(data.val().clone(), opts.wbits),
        };
        eprintln!(
            "cbq serve: adaptive requant armed on fake-quant \
             (margin {}, {} shadow window(s))",
            opts.requant_margin, opts.shadow_windows,
        );
        Server::start_adaptive(
            registry,
            server_config,
            clock,
            telemetry.clone(),
            observe,
            setup,
        )?
    } else {
        Server::start_observed(registry, server_config, clock, telemetry.clone(), observe)?
    };
    eprintln!(
        "cbq serve: {} on {} -> {} backend(s), {} worker(s), max batch {}, \
         {} requests from {} client(s), {} kernels (bit-exact)",
        opts.model,
        opts.dataset,
        targets.len(),
        server.workers(),
        opts.max_batch,
        opts.requests,
        opts.clients,
        cbq::tensor::dispatch::active_isa().name(),
    );

    // Load phase: each client walks its own stride of the request space,
    // round-robining across backends so micro-batches interleave models.
    let mut results = Vec::with_capacity(opts.requests);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..opts.clients {
            let server = &server;
            let samples = &samples;
            let targets = &targets;
            joins.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while i < samples.len() {
                    // Rotate the backend per block so no backend's subset
                    // aligns with the dataset's class period.
                    let t = (i + i / targets.len()) % targets.len();
                    let (sample, label) = samples[i];
                    // Labeled submission so per-class accuracy telemetry
                    // resolves, not just the predicted mix.
                    let outcome = server
                        .submit_labeled(&targets[t].1, sample.to_vec(), label)
                        .and_then(|ticket| ticket.wait());
                    out.push((i, t, outcome));
                    i += opts.clients;
                }
                out
            }));
        }
        for join in joins {
            results.extend(join.join().expect("client thread panicked"));
        }
    });

    // Verify every response bit-for-bit against the offline single-sample
    // reference and score served accuracy per backend.
    let mut reports: Vec<BackendReport> = targets
        .iter()
        .map(|(b, _, _)| BackendReport {
            backend: *b,
            served: 0,
            correct: 0,
            mismatches: 0,
            errors: 0,
        })
        .collect();
    // A requant cutover reloads the fake-quant model as a new registry
    // version mid-run; responses carry the version that served them, so
    // resolve the offline reference per response instead of per target.
    let latest_fake_quant = if opts.requant {
        registry_ref
            .latest(Backend::FakeQuant.as_str())
            .map(|h| registry_ref.get(&h))
            .transpose()?
    } else {
        None
    };
    for (i, t, outcome) in results {
        match outcome {
            Ok(resp) => {
                let (sample, label) = samples[i];
                let reference = if resp.version == targets[t].1.version() {
                    &targets[t].2
                } else {
                    latest_fake_quant
                        .as_ref()
                        .filter(|m| m.handle().version() == resp.version)
                        .ok_or_else(|| {
                            format!(
                                "response {i} served by unknown {} version {}",
                                resp.model, resp.version
                            )
                        })?
                };
                let offline = offline_logits(reference, sample)?;
                let exact = resp.logits.len() == offline.len()
                    && resp
                        .logits
                        .iter()
                        .zip(&offline)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                reports[t].served += 1;
                if !exact {
                    reports[t].mismatches += 1;
                }
                if resp.argmax == label {
                    reports[t].correct += 1;
                }
            }
            Err(e) => {
                reports[t].errors += 1;
                eprintln!("request {i}: {e}");
            }
        }
    }
    let stats = server.shutdown();

    println!(
        "float accuracy : {:6.2}% (offline, {} epochs)",
        100.0 * float_acc,
        opts.epochs
    );
    for rep in &reports {
        println!(
            "{:<15}: acc {:6.2}%  bit-exact {}/{} vs offline{}",
            rep.backend.as_str(),
            100.0 * rep.correct as f32 / rep.served.max(1) as f32,
            rep.served - rep.mismatches,
            rep.served,
            if rep.errors > 0 {
                format!("  ({} errors)", rep.errors)
            } else {
                String::new()
            },
        );
    }
    println!(
        "admission      : accepted {}, rejected {}, completed {}, failed {}",
        stats.accepted, stats.rejected, stats.completed, stats.failed
    );
    println!(
        "batching       : {} micro-batches, largest {}, latency p50 {}us p95 {}us p99 {}us",
        stats.batches,
        stats.largest_batch,
        stats.latency.quantile_us(0.5),
        stats.latency.quantile_us(0.95),
        stats.latency.quantile_us(0.99),
    );
    println!(
        "stages         : queue wait p99 {}us, batch wait p99 {}us, compute p99 {}us",
        stats.queue_wait.quantile_us(0.99),
        stats.batch_wait.quantile_us(0.99),
        stats.compute.quantile_us(0.99),
    );
    let drift_flags = stats.drift.iter().filter(|d| d.flagged).count();
    println!(
        "observability  : {} sealed windows of {}, {} drift checks ({} flagged)",
        stats.windows.len(),
        opts.drift_window,
        stats.drift.len(),
        drift_flags,
    );
    if let Some(rq) = &stats.requant {
        println!(
            "requant        : triggered {}, built {}, cutovers {}, rejected {}, \
             aborted {} ({} checkpoint hits)",
            rq.triggered, rq.built, rq.cutovers, rq.rejected, rq.aborted, rq.checkpoint_hits,
        );
        for job in &rq.jobs {
            let verdict = match &job.decision {
                RequantDecision::Cutover { seq, version } => {
                    format!("cutover at seq {seq} as v{version}")
                }
                RequantDecision::Rejected { delta } => {
                    format!("candidate rejected (shadow delta {delta})")
                }
                RequantDecision::Aborted { phase } => format!("aborted in {phase}"),
                RequantDecision::Pending => "still shadow-scoring at drain".into(),
            };
            println!(
                "                 window {} flagged drift -> {verdict}",
                job.trigger_window,
            );
        }
    }
    if let Some(path) = &opts.metrics_out {
        eprintln!("wrote {path} ({} snapshot writes)", stats.snapshot_writes);
    }
    if let Some(path) = &opts.trace_out {
        eprintln!("wrote {path} ({} request traces)", stats.traces.len());
    }
    println!(
        "scratch        : {} steady-state pool misses ({} warm-up)",
        stats.steady_pool_misses,
        stats.total_pool_misses - stats.steady_pool_misses,
    );

    let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
    if let Some(path) = &opts.out {
        let payload = serde_json::json!({
            "model": opts.model,
            "dataset": opts.dataset,
            "seed": opts.seed,
            "weight_bits": opts.wbits,
            "act_bits": opts.abits,
            "workers": stats.workers,
            "requests": opts.requests,
            "clients": opts.clients,
            "float_accuracy": float_acc,
            "backends": reports.iter().map(|r| serde_json::json!({
                "backend": r.backend.as_str(),
                "served": r.served,
                "accuracy": r.correct as f32 / r.served.max(1) as f32,
                "bit_exact": r.served - r.mismatches,
                "errors": r.errors,
            })).collect::<Vec<_>>(),
            "accepted": stats.accepted,
            "rejected": stats.rejected,
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "latency_p50_us": stats.latency.quantile_us(0.5),
            "latency_p95_us": stats.latency.quantile_us(0.95),
            "latency_p99_us": stats.latency.quantile_us(0.99),
            "queue_wait_p99_us": stats.queue_wait.quantile_us(0.99),
            "compute_p99_us": stats.compute.quantile_us(0.99),
            "steady_pool_misses": stats.steady_pool_misses,
            "windows_sealed": stats.windows.len(),
            "drift_checks": stats.drift.len(),
            "drift_flags": drift_flags,
            "requant_enabled": opts.requant,
            "requant_triggered": stats.requant.as_ref().map_or(0, |r| r.triggered),
            "requant_built": stats.requant.as_ref().map_or(0, |r| r.built),
            "requant_cutovers": stats.requant.as_ref().map_or(0, |r| r.cutovers),
            "requant_rejected": stats.requant.as_ref().map_or(0, |r| r.rejected),
            "requant_aborted": stats.requant.as_ref().map_or(0, |r| r.aborted),
            "requant_checkpoint_hits": stats.requant.as_ref().map_or(0, |r| r.checkpoint_hits),
        });
        atomic_write_text(path, &serde_json::to_string_pretty(&payload)?)?;
        eprintln!("wrote {path}");
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} responses diverged from the offline reference").into());
    }
    Ok(())
}

/// Fleet execution path for `serve --replicas N [--faults SPEC]`: the
/// same strided labeled load as the single-server path, but routed
/// through the consistent-hash router with retry/failover, optionally
/// with a replica-kill drill firing mid-run. Responses are still
/// verified bit-for-bit against the offline reference — which replica
/// served (or failed over, or was killed) must be invisible.
fn run_serve_fleet(
    opts: &ServeOptions,
    registry: Arc<ModelRegistry>,
    targets: &[(Backend, ModelHandle, Arc<LoadedModel>)],
    samples: &[(&[f32], usize)],
    float_acc: f32,
    telemetry: &Telemetry,
) -> Result<(), Box<dyn std::error::Error>> {
    let replicas = opts.replicas.max(1);
    let config = FleetConfig {
        replicas,
        server: ServerConfig {
            policy: BatchPolicy {
                max_batch: opts.max_batch,
                max_wait: Duration::from_micros(opts.max_wait_us),
                queue_capacity: opts.queue_cap,
            },
            workers: opts.workers,
        },
        // A mid-run kill can bounce every in-flight id off the dead
        // replica; attempts must cover a full ring walk with slack.
        retry: RetryPolicy {
            max_attempts: (2 * replicas + 2) as u32,
            ..RetryPolicy::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start_with_faults(
        registry,
        config,
        Arc::new(SystemClock::new()),
        telemetry.clone(),
        opts.faults.clone().map(Arc::new),
    )?;
    eprintln!(
        "cbq serve: {} on {} -> {} backend(s), {} replica(s) x {} worker(s), \
         max batch {}, {} requests from {} client(s), {} kernels (bit-exact){}",
        opts.model,
        opts.dataset,
        targets.len(),
        replicas,
        if opts.workers == 0 {
            "auto".to_string()
        } else {
            opts.workers.to_string()
        },
        opts.max_batch,
        opts.requests,
        opts.clients,
        cbq::tensor::dispatch::active_isa().name(),
        if opts.faults.is_some() {
            " [fault plan armed]"
        } else {
            ""
        },
    );

    let mut results = Vec::with_capacity(opts.requests);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..opts.clients {
            let fleet = &fleet;
            joins.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while i < samples.len() {
                    let t = (i + i / targets.len()) % targets.len();
                    let (sample, label) = samples[i];
                    let outcome =
                        fleet.infer_with_id(i as u64, &targets[t].1, sample.to_vec(), Some(label));
                    out.push((i, t, outcome));
                    i += opts.clients;
                }
                out
            }));
        }
        for join in joins {
            results.extend(join.join().expect("client thread panicked"));
        }
    });

    let mut reports: Vec<BackendReport> = targets
        .iter()
        .map(|(b, _, _)| BackendReport {
            backend: *b,
            served: 0,
            correct: 0,
            mismatches: 0,
            errors: 0,
        })
        .collect();
    for (i, t, outcome) in results {
        match outcome {
            Ok(resp) => {
                let (sample, label) = samples[i];
                let offline = offline_logits(&targets[t].2, sample)?;
                let exact = resp.logits.len() == offline.len()
                    && resp
                        .logits
                        .iter()
                        .zip(&offline)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                reports[t].served += 1;
                if !exact {
                    reports[t].mismatches += 1;
                }
                if resp.argmax == label {
                    reports[t].correct += 1;
                }
            }
            Err(e) => {
                reports[t].errors += 1;
                eprintln!("request {i}: {e}");
            }
        }
    }
    let stats = fleet.shutdown();

    println!(
        "float accuracy : {:6.2}% (offline, {} epochs)",
        100.0 * float_acc,
        opts.epochs
    );
    for rep in &reports {
        println!(
            "{:<15}: acc {:6.2}%  bit-exact {}/{} vs offline{}",
            rep.backend.as_str(),
            100.0 * rep.correct as f32 / rep.served.max(1) as f32,
            rep.served - rep.mismatches,
            rep.served,
            if rep.errors > 0 {
                format!("  ({} errors)", rep.errors)
            } else {
                String::new()
            },
        );
    }
    println!(
        "admission      : accepted {}, rejected {}, completed {}, failed {}",
        stats.merged.accepted, stats.merged.rejected, stats.merged.completed, stats.merged.failed
    );
    println!(
        "fleet          : {} retries, {} shed, {} failovers, {} readmitted, \
         {} budget-exhausted, {} restarts",
        stats.retries,
        stats.shed,
        stats.failover,
        stats.readmitted,
        stats.budget_exhausted,
        stats.replica_restarts,
    );
    for r in &stats.replicas {
        println!(
            "  {:<13}: completed {:>7}, {} micro-batches, restarts {}, \
             latency p99 {}us",
            r.name,
            r.stats.completed,
            r.stats.batches,
            r.restarts,
            r.stats.latency.quantile_us(0.99),
        );
    }
    println!(
        "batching       : {} micro-batches, largest {}, latency p50 {}us p95 {}us p99 {}us",
        stats.merged.batches,
        stats.merged.largest_batch,
        stats.merged.latency.quantile_us(0.5),
        stats.merged.latency.quantile_us(0.95),
        stats.merged.latency.quantile_us(0.99),
    );

    let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
    let errors: usize = reports.iter().map(|r| r.errors).sum();
    if let Some(path) = &opts.out {
        let payload = serde_json::json!({
            "model": opts.model,
            "dataset": opts.dataset,
            "seed": opts.seed,
            "weight_bits": opts.wbits,
            "act_bits": opts.abits,
            "replicas": replicas,
            "workers": opts.workers,
            "requests": opts.requests,
            "clients": opts.clients,
            "fault_plan": opts.faults.is_some(),
            "float_accuracy": float_acc,
            "backends": reports.iter().map(|r| serde_json::json!({
                "backend": r.backend.as_str(),
                "served": r.served,
                "accuracy": r.correct as f32 / r.served.max(1) as f32,
                "bit_exact": r.served - r.mismatches,
                "errors": r.errors,
            })).collect::<Vec<_>>(),
            "accepted": stats.merged.accepted,
            "rejected": stats.merged.rejected,
            "completed": stats.merged.completed,
            "failed": stats.merged.failed,
            "retries": stats.retries,
            "shed": stats.shed,
            "failover": stats.failover,
            "readmitted": stats.readmitted,
            "budget_exhausted": stats.budget_exhausted,
            "replica_restarts": stats.replica_restarts,
            "latency_p50_us": stats.merged.latency.quantile_us(0.5),
            "latency_p95_us": stats.merged.latency.quantile_us(0.95),
            "latency_p99_us": stats.merged.latency.quantile_us(0.99),
            "per_replica": stats.replicas.iter().map(|r| serde_json::json!({
                "name": r.name,
                "completed": r.stats.completed,
                "batches": r.stats.batches,
                "restarts": r.restarts,
            })).collect::<Vec<_>>(),
        });
        atomic_write_text(path, &serde_json::to_string_pretty(&payload)?)?;
        eprintln!("wrote {path}");
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} responses diverged from the offline reference").into());
    }
    if errors > 0 {
        return Err(format!("{errors} requests failed despite retry/failover").into());
    }
    Ok(())
}

fn serve_main(args: &[String]) -> ExitCode {
    let opts = match parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run_serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cbq serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse_args(&args(&[
            "--model",
            "resnet20x1",
            "--dataset",
            "c100",
            "--wbits",
            "3.0",
            "--abits",
            "4",
            "--epochs",
            "7",
            "--seed",
            "42",
            "--out",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(o.model, "resnet20x1");
        assert_eq!(o.dataset, "c100");
        assert_eq!(o.wbits, 3.0);
        assert_eq!(o.abits, 4);
        assert_eq!(o.epochs, 7);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse_args(&args(&[
            "--log-level",
            "debug",
            "--trace-out",
            "trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(o.log_level, Some(Level::Debug));
        assert_eq!(o.trace_out.as_deref(), Some("trace.jsonl"));
        // Case-insensitive level names.
        let o = parse_args(&args(&["--log-level", "TRACE"])).unwrap();
        assert_eq!(o.log_level, Some(Level::Trace));
        // Unset by default.
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.log_level, None);
        assert_eq!(o.trace_out, None);
    }

    #[test]
    fn resilience_flags_parse() {
        let o = parse_args(&args(&[
            "--checkpoint-dir",
            "ckpts",
            "--max-probes",
            "50",
            "--search-deadline",
            "12.5",
            "--guard",
            "halve-lr:3",
            "--faults",
            "fail-at:search,poison-grad:7",
        ]))
        .unwrap();
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpts"));
        assert_eq!(o.max_probes, Some(50));
        assert_eq!(o.search_deadline, Some(12.5));
        assert_eq!(o.guard, GuardPolicy::HalveLr { max_halvings: 3 });
        assert!(o.faults.is_some());

        let o = parse_args(&args(&["--resume", "ckpts"])).unwrap();
        assert_eq!(o.resume.as_deref(), Some("ckpts"));
        assert_eq!(o.checkpoint_dir, None);

        assert!(parse_args(&args(&["--guard", "explode"])).is_err());
        assert!(parse_args(&args(&["--faults", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--max-probes", "many"])).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        let o = parse_args(&args(&["--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.threads, None);
        assert!(parse_args(&args(&["--threads", "0"])).is_err());
        assert!(parse_args(&args(&["--threads", "lots"])).is_err());
        assert!(parse_args(&args(&["--threads"])).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(parse_args(&args(&["--model", "alexnet"])).is_err());
        assert!(parse_args(&args(&["--dataset", "imagenet"])).is_err());
        assert!(parse_args(&args(&["--wbits", "9.0"])).is_err());
        assert!(parse_args(&args(&["--wbits", "0"])).is_err());
        assert!(parse_args(&args(&["--abits", "12"])).is_err());
        assert!(parse_args(&args(&["--abits"])).is_err());
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
        assert!(parse_args(&args(&["--log-level", "loud"])).is_err());
        assert!(parse_args(&args(&["--trace-out"])).is_err());
    }

    #[test]
    fn serve_defaults_parse() {
        let o = parse_serve_args(&[]).unwrap();
        assert_eq!(o, ServeOptions::default());
        assert_eq!(
            o.backends,
            vec![
                Backend::Float,
                Backend::FakeQuant,
                Backend::Integer,
                Backend::PackedInteger
            ]
        );
    }

    #[test]
    fn serve_full_flag_set_parses() {
        let o = parse_serve_args(&args(&[
            "--model",
            "mlp",
            "--dataset",
            "c10",
            "--backends",
            "integer,float",
            "--wbits",
            "3",
            "--abits",
            "2",
            "--epochs",
            "5",
            "--seed",
            "9",
            "--workers",
            "3",
            "--max-batch",
            "16",
            "--max-wait-us",
            "250",
            "--queue-cap",
            "32",
            "--requests",
            "64",
            "--clients",
            "8",
            "--out",
            "serve.json",
        ]))
        .unwrap();
        assert_eq!(o.dataset, "c10");
        assert_eq!(o.backends, vec![Backend::Integer, Backend::Float]);
        assert_eq!((o.wbits, o.abits), (3, 2));
        assert_eq!((o.epochs, o.seed), (5, 9));
        assert_eq!((o.workers, o.max_batch), (3, 16));
        assert_eq!((o.max_wait_us, o.queue_cap), (250, 32));
        assert_eq!((o.requests, o.clients), (64, 8));
        assert_eq!(o.out.as_deref(), Some("serve.json"));
    }

    #[test]
    fn serve_rejects_invalid_inputs() {
        assert!(parse_serve_args(&args(&["--model", "alexnet"])).is_err());
        assert!(parse_serve_args(&args(&["--dataset", "imagenet"])).is_err());
        assert!(parse_serve_args(&args(&["--backends", "gpu"])).is_err());
        assert!(parse_serve_args(&args(&["--backends", ","])).is_err());
        assert!(parse_serve_args(&args(&["--wbits", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--wbits", "9"])).is_err());
        assert!(parse_serve_args(&args(&["--abits", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--max-batch", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--clients", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_serve_args(&args(&["--help"])).is_err());
        // The integer and packed backends only lower MLP topologies.
        assert!(parse_serve_args(&args(&["--model", "vgg"])).is_err());
        assert!(parse_serve_args(&args(&["--model", "vgg", "--backends", "packed"])).is_err());
        assert!(parse_serve_args(&args(&["--backends", "packed-integer"]))
            .unwrap()
            .backends
            .contains(&Backend::PackedInteger));
        let o =
            parse_serve_args(&args(&["--model", "vgg", "--backends", "float,fake-quant"])).unwrap();
        assert_eq!(o.backends, vec![Backend::Float, Backend::FakeQuant]);
    }

    #[test]
    fn serve_requant_flags_parse() {
        let o = parse_serve_args(&args(&[
            "--requant",
            "--requant-margin",
            "0.05",
            "--shadow-windows",
            "3",
        ]))
        .unwrap();
        assert!(o.requant);
        assert_eq!(o.requant_margin, 0.05);
        assert_eq!(o.shadow_windows, 3);
        // Off by default with the loop's own defaults.
        let o = parse_serve_args(&[]).unwrap();
        assert!(!o.requant);
        assert_eq!(o.requant_margin, 0.0);
        assert_eq!(o.shadow_windows, 2);
    }

    #[test]
    fn serve_requant_rejects_bad_combinations() {
        // The knobs require the loop itself.
        assert!(parse_serve_args(&args(&["--requant-margin", "0.1"])).is_err());
        assert!(parse_serve_args(&args(&["--shadow-windows", "4"])).is_err());
        // No fleet path, and the fake-quant backend must be served.
        assert!(parse_serve_args(&args(&["--requant", "--replicas", "2"])).is_err());
        assert!(parse_serve_args(&args(&["--requant", "--faults", "fail-at:serve"])).is_err());
        assert!(parse_serve_args(&args(&["--requant", "--backends", "float"])).is_err());
        // Degenerate knob values.
        assert!(parse_serve_args(&args(&["--requant", "--requant-margin", "-0.5"])).is_err());
        assert!(parse_serve_args(&args(&["--requant", "--requant-margin", "NaN"])).is_err());
        assert!(parse_serve_args(&args(&["--requant", "--shadow-windows", "0"])).is_err());
    }
}
