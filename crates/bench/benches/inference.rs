//! Criterion benchmark of inference overhead: fp32 forward vs fake-quant
//! forward (weight transform + activation quantizer), per layer type and
//! for a whole VGG-small.

use cbq_nn::{models, Layer, Phase};
use cbq_quant::{install_act_quant, install_uniform, set_act_bits, set_act_calibration, BitWidth};
use cbq_tensor::{conv2d, ConvSpec, Tensor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_conv_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[4, 16, 12, 12], 1.0, &mut rng);
    let w = Tensor::randn(&[32, 16, 3, 3], 0.1, &mut rng);
    let spec = ConvSpec::new(1, 1);
    c.bench_function("conv2d_16x32_12x12_b4", |b| {
        b.iter(|| black_box(conv2d(&x, &w, None, spec).unwrap()))
    });
}

fn bench_vgg_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = models::VggConfig::for_input(3, 12, 12, 10);
    let mut fp = models::vgg_small(&cfg, &mut rng).unwrap();
    let x = Tensor::randn(&[8, 3, 12, 12], 1.0, &mut rng);
    let mut group = c.benchmark_group("vgg_small_forward_b8");
    group.sample_size(20);
    group.bench_function("fp32", |b| {
        b.iter(|| black_box(fp.forward(&x, Phase::Eval).unwrap()))
    });
    // fake-quant: 2-bit weights per filter + 2-bit activations
    let mut rng2 = StdRng::seed_from_u64(1);
    let mut q = models::vgg_small(&cfg, &mut rng2).unwrap();
    install_uniform(&mut q, BitWidth::new(2).unwrap());
    install_act_quant(&mut q);
    set_act_calibration(&mut q, true);
    q.forward(&x, Phase::Eval).unwrap();
    set_act_calibration(&mut q, false);
    set_act_bits(&mut q, Some(BitWidth::new(2).unwrap()));
    group.bench_function("fake_quant_2bit", |b| {
        b.iter(|| black_box(q.forward(&x, Phase::Eval).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv_kernel, bench_vgg_forward
}
criterion_main!(benches);
