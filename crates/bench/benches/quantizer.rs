//! Criterion micro-benchmarks of the Eq. 1–3 uniform quantizer: scalar
//! throughput per bit-width, tensor size scaling, and per-filter vs
//! whole-layer application.

use cbq_nn::WeightTransform;
use cbq_quant::{BitWidth, PerFilterQuantizer, UniformQuantizer};
use cbq_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_quantize_tensor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("quantize_tensor");
    for &n in &[1_000usize, 10_000, 100_000] {
        let t = Tensor::randn(&[n], 1.0, &mut rng);
        let q = UniformQuantizer::symmetric(1.0, BitWidth::new(4).unwrap());
        group.bench_with_input(BenchmarkId::new("4bit", n), &t, |b, t| {
            b.iter(|| black_box(q.quantize_tensor(t)))
        });
    }
    group.finish();
}

fn bench_bit_widths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let t = Tensor::randn(&[10_000], 1.0, &mut rng);
    let mut group = c.benchmark_group("quantize_by_bits");
    for bits in [0u8, 1, 2, 4, 8] {
        let q = UniformQuantizer::symmetric(1.0, BitWidth::new(bits).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(bits), &t, |b, t| {
            b.iter(|| black_box(q.quantize_tensor(t)))
        });
    }
    group.finish();
}

fn bench_per_filter_transform(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // a conv weight tensor [64, 32, 3, 3]
    let w = Tensor::randn(&[64, 32, 3, 3], 0.1, &mut rng);
    let mixed: Vec<BitWidth> = (0..64)
        .map(|i| BitWidth::new((i % 5) as u8).unwrap())
        .collect();
    let per_filter = PerFilterQuantizer::new(mixed);
    let uniform = PerFilterQuantizer::new(vec![BitWidth::new(4).unwrap(); 64]);
    let mut group = c.benchmark_group("per_filter_transform");
    group.bench_function("mixed_0_to_4_bits", |b| {
        b.iter(|| black_box(per_filter.apply(&w)))
    });
    group.bench_function("uniform_4bit", |b| b.iter(|| black_box(uniform.apply(&w))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize_tensor, bench_bit_widths, bench_per_filter_transform
}
criterion_main!(benches);
