//! Criterion benchmark backing the paper's efficiency claim: the Taylor
//! approximation (Eq. 5, one backward pass per class batch) versus the
//! exact ablation definition (Eq. 4, one forward pass per neuron).

use cbq_core::{score_network, ScoreConfig};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{losses, models, Layer, Phase, Sequential};
use cbq_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Sequential, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(0);
    let spec = SyntheticSpec::tiny(3);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let net = models::mlp(&[spec.feature_len(), 16, 8, 3], &mut rng).unwrap();
    (net, data)
}

/// Eq. 4 computed literally: zero one hidden activation at a time and
/// re-run the forward pass (here emulated by re-running the full forward
/// per neuron — the cost profile the paper's "time-consuming" remark is
/// about).
fn exact_ablation_cost(net: &mut Sequential, images: &Tensor, neurons: usize) -> f32 {
    let mut acc = 0.0f32;
    for _ in 0..neurons {
        let out = net.forward(images, Phase::Eval).unwrap();
        acc += out.sum();
    }
    acc
}

fn bench_taylor_vs_ablation(c: &mut Criterion) {
    let (mut net, data) = setup();
    let mut group = c.benchmark_group("importance_scoring");
    group.sample_size(10);
    group.bench_function("taylor_one_backward(eq5)", |b| {
        b.iter(|| {
            let s = score_network(
                &mut net,
                data.val(),
                3,
                &ScoreConfig {
                    samples_per_class: 8,
                    epsilon: 1e-30,
                },
            )
            .unwrap();
            black_box(s.max_phi())
        })
    });
    // One forward pass per hidden neuron (16 + 8 = 24 neurons) per class
    // batch — the loop Eq. 4 implies.
    let batch = data.val().class_batch(0, 8).unwrap();
    group.bench_function("exact_ablation(eq4, 24 neurons)", |b| {
        b.iter(|| black_box(exact_ablation_cost(&mut net, &batch.images, 24)))
    });
    group.finish();
}

fn bench_backward_pass(c: &mut Criterion) {
    let (mut net, data) = setup();
    let batch = data.val().class_batch(0, 8).unwrap();
    let mut group = c.benchmark_group("scoring_primitives");
    group.bench_function("forward_backward_class_batch", |b| {
        b.iter(|| {
            let logits = net.forward(&batch.images, Phase::Eval).unwrap();
            let seed = losses::one_hot(&batch.labels, logits.shape()[1]).unwrap();
            black_box(net.backward(&seed).unwrap());
            net.zero_grad();
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_taylor_vs_ablation, bench_backward_pass
}
criterion_main!(benches);
