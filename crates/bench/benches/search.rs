//! Criterion benchmark of the threshold-search machinery: cost of one
//! arrangement construction + install as the filter count grows, and the
//! full search loop on a small trained network.

use cbq_core::{score_network, search, ScoreConfig, SearchConfig};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{models, Trainer, TrainerConfig};
use cbq_quant::{install_arrangement, BitArrangement, BitWidth, UnitArrangement};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_arrangement_install(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("install_arrangement");
    for &width in &[32usize, 128, 512] {
        let mut net = cbq_nn::Sequential::new("n");
        net.push(cbq_nn::layers::Linear::new("fc1", 64, width, true, &mut rng).unwrap());
        net.push(cbq_nn::layers::Relu::new("r1"));
        net.push(
            cbq_nn::layers::Linear::new("fc2", width, 10, true, &mut rng)
                .unwrap()
                .without_quantization(),
        );
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform(
            "fc1",
            width,
            64,
            BitWidth::new(2).unwrap(),
        ));
        group.bench_with_input(BenchmarkId::from_parameter(width), &arr, |b, arr| {
            b.iter(|| install_arrangement(&mut net, black_box(arr)).unwrap())
        });
    }
    group.finish();
}

fn bench_full_search(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(6, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("threshold_search");
    group.sample_size(10);
    for &step in &[0.1f64, 0.25, 0.5] {
        group.bench_with_input(BenchmarkId::new("step", step), &step, |b, &step| {
            b.iter(|| {
                let mut cfg = SearchConfig::new(2.0);
                cfg.step = step;
                cfg.probe_samples = 24;
                black_box(search(&mut net, &scores, data.val(), &cfg).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_arrangement_install, bench_full_search
}
criterion_main!(benches);
