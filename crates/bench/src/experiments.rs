//! The shared experiment grid behind the figure binaries.
//!
//! Every paper figure draws on runs of the same shape — (model, dataset,
//! method, weight/activation bits) — so the grid is defined once here and
//! each completed run is cached as JSON under `results/cache/`. Re-running
//! a figure binary reuses every run it shares with previously generated
//! figures (e.g. Figure 7 reads Figure 4's CQ runs from cache).
//!
//! Scale mapping (`CBQ_SCALE`):
//!
//! | | `small` (default) | `full` |
//! |---|---|---|
//! | CIFAR-10-like | 10 classes, 150/30/30 per class | 200/40/40 |
//! | CIFAR-100-like | 25 classes, 40/10/10 per class | 100 classes, 60/10/10 |
//! | ResNet-20-x5 stand-in | expand 2 | expand 5 |
//! | pretrain / refine epochs | 3 / 3 | 12 / 12 |

use crate::ExperimentScale;
use cbq_baselines::{run_apn, run_wrapnet, ApnConfig, WrapNetConfig};
use cbq_core::{CqConfig, CqPipeline, RefineConfig, SearchStep, ThresholdSummary};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{models, Sequential, TrainerConfig};
use cbq_telemetry::{Collector, RunReport, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Which network to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The paper's VGG-small.
    VggSmall,
    /// ResNet-20 with the paper's expand factor (1 or 5).
    ResNet20 {
        /// Width expansion factor.
        expand: usize,
    },
}

impl ModelKind {
    fn tag(&self) -> String {
        match self {
            ModelKind::VggSmall => "vgg".into(),
            ModelKind::ResNet20 { expand } => format!("rn20x{expand}"),
        }
    }

    /// Paper-style display name.
    pub fn label(&self) -> String {
        match self {
            ModelKind::VggSmall => "VGG-small".into(),
            ModelKind::ResNet20 { expand } => format!("ResNet-20-x{expand}"),
        }
    }
}

/// Which dataset to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// The CIFAR-10 stand-in.
    C10Like,
    /// The CIFAR-100 stand-in.
    C100Like,
}

impl DatasetKind {
    fn tag(&self) -> &'static str {
        match self {
            DatasetKind::C10Like => "c10",
            DatasetKind::C100Like => "c100",
        }
    }

    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::C10Like => "CIFAR10",
            DatasetKind::C100Like => "CIFAR100",
        }
    }

    fn spec(&self, scale: ExperimentScale) -> SyntheticSpec {
        match (self, scale) {
            (DatasetKind::C10Like, ExperimentScale::Small) => SyntheticSpec {
                train_per_class: 150,
                val_per_class: 30,
                test_per_class: 30,
                ..hard_cifar10_like()
            },
            (DatasetKind::C10Like, ExperimentScale::Full) => hard_cifar10_like(),
            (DatasetKind::C100Like, ExperimentScale::Small) => SyntheticSpec {
                num_classes: 25,
                train_per_class: 40,
                val_per_class: 10,
                test_per_class: 10,
                shared_pool: 20,
                ..hard_cifar100_like()
            },
            (DatasetKind::C100Like, ExperimentScale::Full) => hard_cifar100_like(),
        }
    }
}

/// Which quantization method to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Class-based quantization (the paper's method).
    Cq,
    /// APN-style model-level uniform quantization.
    Apn,
    /// WrapNet-style uniform quantization with a narrow accumulator.
    WrapNet {
        /// Simulated accumulator bits.
        acc_bits: u8,
    },
}

impl Method {
    fn tag(&self) -> String {
        match self {
            Method::Cq => "cq".into(),
            Method::Apn => "apn".into(),
            Method::WrapNet { acc_bits } => format!("wn{acc_bits}"),
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Cq => "CQ",
            Method::Apn => "APN",
            Method::WrapNet { .. } => "WN",
        }
    }
}

/// One grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Network.
    pub model: ModelKind,
    /// Dataset.
    pub dataset: DatasetKind,
    /// Quantization method.
    pub method: Method,
    /// Target average weight bits (CQ) or uniform weight bits (APN/WN).
    pub weight_bits: f32,
    /// Activation bits.
    pub act_bits: u8,
    /// RNG seed (dataset + init + training).
    pub seed: u64,
}

/// Bump when the training recipes below change, so stale cached runs are
/// not silently reused.
const RECIPE_VERSION: u32 = 3;

/// The hardened CIFAR-10 stand-in the experiments run on: enough noise
/// and feature sharing that the full-precision model lands around the
/// paper's ~90% rather than saturating — the regime where quantization
/// policies actually differ (calibrated in DESIGN.md).
pub fn hard_cifar10_like() -> SyntheticSpec {
    SyntheticSpec {
        noise_std: 1.0,
        gain_jitter: 0.5,
        exclusive_features: 2,
        shared_features: 4,
        ..SyntheticSpec::cifar10_like()
    }
}

/// The hardened CIFAR-100 stand-in (same hardness parameters).
pub fn hard_cifar100_like() -> SyntheticSpec {
    SyntheticSpec {
        noise_std: 1.0,
        gain_jitter: 0.5,
        exclusive_features: 2,
        shared_features: 4,
        ..SyntheticSpec::cifar100_like()
    }
}

impl RunSpec {
    fn cache_key(&self, scale: ExperimentScale) -> String {
        let scale_tag = match scale {
            ExperimentScale::Small => "small",
            ExperimentScale::Full => "full",
        };
        format!(
            "{}_{}_{}_w{:.1}_a{}_{}_s{}_r{RECIPE_VERSION}",
            self.model.tag(),
            self.dataset.tag(),
            self.method.tag(),
            self.weight_bits,
            self.act_bits,
            scale_tag,
            self.seed
        )
    }
}

/// Serializable result of one run — everything the figures read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The spec that produced this summary.
    pub spec: RunSpec,
    /// Full-precision test accuracy.
    pub fp_accuracy: f32,
    /// Test accuracy after quantization, before refining.
    pub pre_refine_accuracy: f32,
    /// Test accuracy after refining — the figures' headline number.
    pub final_accuracy: f32,
    /// Achieved average weight bit-width.
    pub avg_bits: f32,
    /// Final thresholds (CQ only).
    pub thresholds: Vec<f64>,
    /// Unit names in network order.
    pub unit_names: Vec<String>,
    /// Per-unit filter counts at bit-widths 0..=8.
    pub unit_histograms: Vec<[usize; 9]>,
    /// Per-unit sorted filter scores (CQ only; Figures 2, 3, 6).
    pub sorted_phi: Vec<Vec<f64>>,
    /// Search trace (CQ only; Figure 3).
    pub trace: Vec<SearchStep>,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Accuracy probes the search spent (CQ only). `#[serde(default)]`
    /// keeps pre-telemetry cache entries loadable.
    #[serde(default)]
    pub probe_count: usize,
    /// Per-threshold digest of the search trace (CQ only).
    #[serde(default)]
    pub threshold_summaries: Vec<ThresholdSummary>,
}

fn cache_path(key: &str) -> PathBuf {
    PathBuf::from("results/cache").join(format!("{key}.json"))
}

fn load_cached(key: &str) -> Option<RunSummary> {
    let text = fs::read_to_string(cache_path(key)).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_cached(key: &str, summary: &RunSummary) {
    if fs::create_dir_all("results/cache").is_ok() {
        if let Ok(json) = serde_json::to_string(summary) {
            // Atomic: a run killed mid-write must not leave a torn cache
            // entry that a later run would silently fail to parse.
            let _ = cbq_resilience::atomic_write_text(cache_path(key), &json);
        }
    }
}

/// Writes the run's observability report: per-experiment under
/// `results/reports/<key>.json`, plus `results/run_report.json` (latest
/// run) and `BENCH_observability.json` (perf snapshot future PRs diff
/// against). Best-effort — report I/O never fails an experiment.
fn store_run_report(key: &str, collector: &Collector) {
    let report = RunReport::from_records(key, &collector.records());
    let _ = report.write_json(PathBuf::from("results/reports").join(format!("{key}.json")));
    let _ = report.write_json("results/run_report.json");
    let _ = report.write_json("BENCH_observability.json");
}

/// Builds the model for a grid point. Small scale maps the paper's
/// expand-5 to expand-2 (documented in DESIGN.md).
pub fn build_model(
    model: ModelKind,
    spec: &SyntheticSpec,
    scale: ExperimentScale,
    rng: &mut StdRng,
) -> Result<Sequential, cbq_nn::NnError> {
    match model {
        ModelKind::VggSmall => {
            let cfg = models::VggConfig::for_input(
                spec.channels,
                spec.height,
                spec.width,
                spec.num_classes,
            );
            models::vgg_small(&cfg, rng)
        }
        ModelKind::ResNet20 { expand } => {
            let eff_expand = match (expand, scale) {
                (5, ExperimentScale::Small) => 2,
                (e, _) => e,
            };
            let cfg = models::ResNetConfig::resnet20(spec.channels, eff_expand, spec.num_classes);
            models::resnet20(&cfg, rng)
        }
    }
}

fn training_recipes(model: ModelKind, scale: ExperimentScale) -> (TrainerConfig, RefineConfig) {
    // Refining gets the larger share of the budget: the paper's search
    // deliberately over-prunes (accuracy targets down to T1*R^k) and
    // leans on a long KD fine-tune to recover — with too few refine
    // epochs CQ under-recovers relative to uniform baselines.
    let (pre_epochs, ref_epochs) = match scale {
        ExperimentScale::Small => (3, 8),
        ExperimentScale::Full => (12, 24),
    };
    let lr = match model {
        ModelKind::VggSmall => 0.02,
        ModelKind::ResNet20 { .. } => 0.1,
    };
    let pretrain = TrainerConfig::quick(pre_epochs, lr);
    let refine = RefineConfig::quick(ref_epochs, lr / 5.0);
    (pretrain, refine)
}

/// Runs one grid point (or loads it from the cache). Progress goes to
/// stderr.
///
/// # Errors
///
/// Propagates dataset, model and pipeline errors.
pub fn run_spec(
    spec: &RunSpec,
    scale: ExperimentScale,
) -> Result<RunSummary, Box<dyn std::error::Error>> {
    let key = spec.cache_key(scale);
    if let Some(cached) = load_cached(&key) {
        eprintln!("[cache] {key}");
        return Ok(cached);
    }
    eprintln!("[run  ] {key}");
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let dspec = spec.dataset.spec(scale);
    let data = SyntheticImages::generate(&dspec, &mut rng)?;
    let model = build_model(spec.model, &dspec, scale, &mut rng)?;
    let (pretrain, refine) = training_recipes(spec.model, scale);

    let summary = match spec.method {
        Method::Cq => {
            let mut cfg = CqConfig::new(spec.weight_bits, spec.act_bits as f32);
            cfg.pretrain = Some(pretrain);
            cfg.refine = refine;
            cfg.search.step = 0.2;
            cfg.search.probe_samples = 200.min(data.val().len());
            let collector = Arc::new(Collector::new());
            let report = CqPipeline::new(cfg)
                .with_telemetry(Telemetry::new(vec![collector.clone()]))
                .run(model, &data, &mut rng)?;
            store_run_report(&key, &collector);
            let arrangement = &report.search.arrangement;
            RunSummary {
                spec: spec.clone(),
                fp_accuracy: report.fp_accuracy,
                pre_refine_accuracy: report.pre_refine_accuracy,
                final_accuracy: report.final_accuracy,
                avg_bits: report.search.final_avg_bits,
                thresholds: report.search.thresholds.clone(),
                unit_names: arrangement.units().iter().map(|u| u.name.clone()).collect(),
                unit_histograms: arrangement
                    .units()
                    .iter()
                    .map(|u| {
                        let mut h = [0usize; 9];
                        for b in &u.bits {
                            h[b.bits() as usize] += 1;
                        }
                        h
                    })
                    .collect(),
                sorted_phi: report.scores.units.iter().map(|u| u.sorted_phi()).collect(),
                trace: report.search.trace.clone(),
                wall_seconds: start.elapsed().as_secs_f64(),
                probe_count: report.search.probe_count,
                threshold_summaries: report.search.threshold_summaries.clone(),
            }
        }
        Method::Apn => {
            let mut cfg = ApnConfig::new(spec.weight_bits.round() as u8, spec.act_bits);
            cfg.pretrain = Some(pretrain);
            cfg.refine = refine;
            let report = run_apn(model, &data, &cfg, &mut rng)?;
            summary_from_uniform(
                spec,
                report.fp_accuracy,
                report.pre_refine_accuracy,
                report.final_accuracy,
                &report.arrangement,
                start.elapsed().as_secs_f64(),
            )
        }
        Method::WrapNet { acc_bits } => {
            let mut cfg = WrapNetConfig::new(spec.weight_bits.round() as u8, spec.act_bits);
            cfg.acc_bits = acc_bits;
            cfg.pretrain = Some(pretrain);
            cfg.refine = refine;
            let report = run_wrapnet(model, &data, &cfg, &mut rng)?;
            summary_from_uniform(
                spec,
                report.fp_accuracy,
                report.pre_refine_accuracy,
                report.final_accuracy,
                &report.arrangement,
                start.elapsed().as_secs_f64(),
            )
        }
    };
    store_cached(&key, &summary);
    eprintln!(
        "[done ] {key}: fp {:.1}% -> final {:.1}% at {:.2} bits ({:.0}s)",
        100.0 * summary.fp_accuracy,
        100.0 * summary.final_accuracy,
        summary.avg_bits,
        summary.wall_seconds
    );
    Ok(summary)
}

fn summary_from_uniform(
    spec: &RunSpec,
    fp: f32,
    pre: f32,
    fin: f32,
    arrangement: &cbq_quant::BitArrangement,
    wall: f64,
) -> RunSummary {
    RunSummary {
        spec: spec.clone(),
        fp_accuracy: fp,
        pre_refine_accuracy: pre,
        final_accuracy: fin,
        avg_bits: arrangement.average_bits(),
        thresholds: vec![],
        unit_names: arrangement.units().iter().map(|u| u.name.clone()).collect(),
        unit_histograms: arrangement
            .units()
            .iter()
            .map(|u| {
                let mut h = [0usize; 9];
                for b in &u.bits {
                    h[b.bits() as usize] += 1;
                }
                h
            })
            .collect(),
        sorted_phi: vec![],
        trace: vec![],
        wall_seconds: wall,
        probe_count: 0,
        threshold_summaries: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_keys_distinguish_specs() {
        let a = RunSpec {
            model: ModelKind::VggSmall,
            dataset: DatasetKind::C10Like,
            method: Method::Cq,
            weight_bits: 2.0,
            act_bits: 2,
            seed: 0,
        };
        let mut b = a.clone();
        b.method = Method::Apn;
        assert_ne!(
            a.cache_key(ExperimentScale::Small),
            b.cache_key(ExperimentScale::Small)
        );
        assert_ne!(
            a.cache_key(ExperimentScale::Small),
            a.cache_key(ExperimentScale::Full)
        );
    }

    #[test]
    fn dataset_specs_validate() {
        for kind in [DatasetKind::C10Like, DatasetKind::C100Like] {
            for scale in [ExperimentScale::Small, ExperimentScale::Full] {
                kind.spec(scale).validate().unwrap();
            }
        }
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(ModelKind::ResNet20 { expand: 5 }.label(), "ResNet-20-x5");
        assert_eq!(DatasetKind::C100Like.label(), "CIFAR100");
        assert_eq!(Method::Cq.label(), "CQ");
    }
}
