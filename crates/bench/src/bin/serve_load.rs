//! Load generator for the `cbq-serve` micro-batching runtime: drives a
//! multi-client request stream against all three backends of one trained
//! model, gates on bit-for-bit equivalence with the offline single-sample
//! reference and on zero steady-state scratch-pool misses, then runs a
//! deterministic overload burst to measure bounded-queue admission. The
//! numbers land in `results/BENCH_serve.json` (published as a CI
//! artifact).
//!
//! Three phases:
//!
//! 1. **Steady load** — `CLIENTS` threads submit `REQUESTS` single-sample
//!    requests round-robin across the float / fake-quant / integer
//!    backends. Every response must be bit-identical to
//!    [`offline_logits`]; worker arenas are pre-warmed, so the steady
//!    phase must report **zero** pool misses.
//! 2. **Overload burst** — a one-worker server with a tiny admission
//!    queue and a long `max_wait` receives a synchronous burst; the
//!    excess must be rejected with `ServeError::Overloaded` (never
//!    buffered unboundedly) and every admitted request must still
//!    complete through the graceful drain.
//! 3. **Report** — throughput, latency quantiles, batch shapes, and the
//!    gate verdicts.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin serve_load
//! WORKERS=4 CLIENTS=16 REQUESTS=1200 cargo run --release -p cbq-bench --bin serve_load
//! ```

use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq_quant::{
    act_clip_bounds, install_act_quant, install_uniform, set_act_calibration, BitWidth,
};
use cbq_resilience::atomic_write_text;
use cbq_serve::{
    offline_logits, ArchSpec, Backend, BatchPolicy, ModelArtifact, ModelRegistry, QuantState,
    ServeError, Server, ServerConfig,
};
use cbq_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const BACKENDS: [Backend; 3] = [Backend::Float, Backend::FakeQuant, Backend::Integer];

/// Trains a small MLP on the tiny synthetic set and captures a serving
/// artifact with calibrated activation clips and a uniform 4-bit weight
/// arrangement — the same deployment flow as `cbq serve`.
fn build_artifact(
    seed: u64,
) -> Result<(ModelArtifact, SyntheticImages), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 48, 24, spec.num_classes]);
    let mut net = arch.build_init(&mut rng)?;
    Trainer::new(TrainerConfig::quick(2, 0.1)).fit(&mut net, data.train(), &mut rng)?;
    let state = state_dict(&mut net);
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(32) {
        net.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();
    let quant = QuantState {
        arrangement: install_uniform(&mut net, BitWidth::new(4)?),
        act_bits: 4,
        act_clips: act_clip_bounds(&mut net),
    };
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(quant),
        baseline_mix: None,
    };
    Ok((artifact, data))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = env_usize("WORKERS", 2);
    let clients = env_usize("CLIENTS", 8).max(1);
    let requests = env_usize("REQUESTS", 600).max(1);
    let max_batch = env_usize("MAX_BATCH", 8).max(1);

    let (artifact, data) = build_artifact(7)?;
    let registry = Arc::new(ModelRegistry::new());
    let mut targets = Vec::new();
    for backend in BACKENDS {
        let handle = registry.load(backend.as_str(), &artifact, backend)?;
        let model = registry.get(&handle)?;
        targets.push((backend, handle, model));
    }

    // Phase 1: steady multi-client load across all three backends.
    let server = Server::start(
        registry.clone(),
        ServerConfig {
            policy: BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
                queue_capacity: 4096,
            },
            workers,
        },
        Telemetry::disabled(),
    )?;
    let item_len: usize = artifact.input_shape.iter().product();
    let test = data.test();
    let images = test.images().as_slice();
    let samples: Vec<&[f32]> = (0..requests)
        .map(|i| {
            let j = i % test.len();
            &images[j * item_len..(j + 1) * item_len]
        })
        .collect();
    let started = Instant::now();
    let mut results = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let server = &server;
            let samples = &samples;
            let targets = &targets;
            joins.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while i < samples.len() {
                    let t = i % targets.len();
                    out.push((i, t, server.infer(&targets[t].1, samples[i].to_vec())));
                    i += clients;
                }
                out
            }));
        }
        for join in joins {
            results.extend(join.join().expect("client thread panicked"));
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut exact = vec![0usize; targets.len()];
    let mut served = vec![0usize; targets.len()];
    let mut errors = 0usize;
    for (i, t, outcome) in results {
        match outcome {
            Ok(resp) => {
                let offline = offline_logits(&targets[t].2, samples[i])?;
                served[t] += 1;
                if resp.logits.len() == offline.len()
                    && resp
                        .logits
                        .iter()
                        .zip(&offline)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                {
                    exact[t] += 1;
                }
            }
            Err(e) => {
                errors += 1;
                eprintln!("request {i}: {e}");
            }
        }
    }
    let stats = server.shutdown();
    let all_exact = errors == 0 && exact == served && served.iter().sum::<usize>() == requests;
    let throughput = stats.completed as f64 / wall_s.max(1e-9);
    eprintln!(
        "steady: {} requests, {} clients, {} workers -> {throughput:.0} req/s, \
         p50 {}us p95 {}us p99 {}us (queue p99 {}us, compute p99 {}us), \
         {} batches (largest {})",
        requests,
        clients,
        stats.workers,
        stats.latency.quantile_us(0.5),
        stats.latency.quantile_us(0.95),
        stats.latency.quantile_us(0.99),
        stats.queue_wait.quantile_us(0.99),
        stats.compute.quantile_us(0.99),
        stats.batches,
        stats.largest_batch,
    );
    for (idx, (backend, _, _)) in targets.iter().enumerate() {
        eprintln!(
            "  {:<10} bit-exact {}/{} vs offline",
            backend.as_str(),
            exact[idx],
            served[idx]
        );
    }
    eprintln!(
        "  scratch: {} steady-state pool misses ({} warm-up)",
        stats.steady_pool_misses,
        stats.total_pool_misses - stats.steady_pool_misses,
    );

    // Phase 2: deterministic overload burst. One worker, a queue of 4,
    // and a max_wait far beyond the burst duration: the queue fills with
    // exactly `queue_capacity` entries, every further submit is rejected
    // with `Overloaded`, and the graceful drain completes the admitted
    // requests (drain overrides max_wait, so nothing deadlocks).
    let burst_cap = 4usize;
    let burst_submits = 32usize;
    let burst_server = Server::start(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                // Strictly above the queue capacity so the worker can
                // never form a batch before the drain: admission counts
                // below are exact, not racy.
                max_batch: 2 * burst_cap,
                max_wait: Duration::from_secs(3600),
                queue_capacity: burst_cap,
            },
            workers: 1,
        },
        Telemetry::disabled(),
    )?;
    let mut tickets = Vec::new();
    let mut burst_rejected = 0usize;
    for i in 0..burst_submits {
        match burst_server.submit(&targets[0].1, samples[i % samples.len()].to_vec()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, burst_cap);
                burst_rejected += 1;
            }
            Err(e) => return Err(format!("burst submit {i}: {e}").into()),
        }
    }
    let burst_admitted = tickets.len();
    let burst_stats = burst_server.shutdown();
    let mut burst_completed = 0usize;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            burst_completed += 1;
        }
    }
    let burst_ok = burst_rejected > 0
        && burst_admitted + burst_rejected == burst_submits
        && burst_completed == burst_admitted
        && burst_stats.rejected == burst_rejected as u64
        && burst_stats.completed == burst_admitted as u64;
    eprintln!(
        "burst : {burst_submits} submits -> {burst_admitted} admitted, {burst_rejected} rejected, \
         {burst_completed} completed through drain (ok {burst_ok})"
    );

    let payload = serde_json::json!({
        "workload": "mlp/tiny artifact served on float+fake-quant+integer backends",
        "workers": stats.workers,
        "clients": clients,
        "requests": requests,
        "max_batch": max_batch,
        "steady": {
            "wall_s": wall_s,
            "throughput_req_per_s": throughput,
            "latency_p50_us": stats.latency.quantile_us(0.5),
            "latency_p95_us": stats.latency.quantile_us(0.95),
            "latency_p99_us": stats.latency.quantile_us(0.99),
            "latency_mean_us": stats.latency.mean_us(),
            "queue_wait_p50_us": stats.queue_wait.quantile_us(0.5),
            "queue_wait_p99_us": stats.queue_wait.quantile_us(0.99),
            "batch_wait_p99_us": stats.batch_wait.quantile_us(0.99),
            "compute_p50_us": stats.compute.quantile_us(0.5),
            "compute_p99_us": stats.compute.quantile_us(0.99),
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "latency_buckets_us": stats.latency.sparse_counts(),
            "accepted": stats.accepted,
            "rejected": stats.rejected,
            "completed": stats.completed,
            "failed": stats.failed,
            "bit_exact": BACKENDS.iter().zip(&exact).zip(&served).map(|((b, e), s)| {
                serde_json::json!({"backend": b.as_str(), "exact": e, "served": s})
            }).collect::<Vec<_>>(),
            "steady_pool_misses": stats.steady_pool_misses,
            "warmup_pool_misses": stats.total_pool_misses - stats.steady_pool_misses,
        },
        "burst": {
            "submits": burst_submits,
            "queue_capacity": burst_cap,
            "admitted": burst_admitted,
            "rejected": burst_rejected,
            "completed_through_drain": burst_completed,
            "ok": burst_ok,
        },
        "gates": {
            "bit_exact_vs_offline": all_exact,
            "zero_steady_pool_misses": stats.steady_pool_misses == 0,
            "bounded_admission": burst_ok,
        },
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_serve.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_serve.json");

    if !all_exact {
        eprintln!("BIT-EXACTNESS VIOLATION — see results/BENCH_serve.json");
        std::process::exit(1);
    }
    if stats.steady_pool_misses != 0 {
        eprintln!(
            "ALLOCATION GATE FAILED: {} steady-state pool misses",
            stats.steady_pool_misses
        );
        std::process::exit(1);
    }
    if !burst_ok {
        eprintln!("ADMISSION GATE FAILED — see results/BENCH_serve.json");
        std::process::exit(1);
    }
    Ok(())
}
