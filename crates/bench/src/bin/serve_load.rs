//! Load generator for the `cbq-serve` micro-batching runtime: drives a
//! multi-client request stream against all four backends of one trained
//! model, gates on bit-for-bit equivalence with the offline single-sample
//! reference and on zero steady-state scratch-pool misses, then runs a
//! deterministic overload burst to measure bounded-queue admission. The
//! numbers land in `results/BENCH_serve.json` (published as a CI
//! artifact).
//!
//! Four phases:
//!
//! 1. **Steady load** — `CLIENTS` threads submit `REQUESTS` single-sample
//!    requests round-robin across the float / fake-quant / integer /
//!    packed backends. Every response must be bit-identical to
//!    [`offline_logits`]; worker arenas are pre-warmed, so the steady
//!    phase must report **zero** pool misses. The artifact carries its V3
//!    packed-code section, so the packed backend also exercises the
//!    load-time CRC + recompile verification.
//! 2. **Packed vs wide** — weight-code bytes touched per single-sample
//!    request on the packed vs wide integer engine, offline throughput of
//!    both, packed-vs-integer bit-identity over the whole test set, and
//!    the artifact shrink at a uniform 2-bit arrangement. Gates:
//!    `packed_bit_identical` and `artifact_shrink >= 4x` at 2 bits.
//! 3. **Overload burst** — a one-worker server with a tiny admission
//!    queue and a long `max_wait` receives a synchronous burst; the
//!    excess must be rejected with `ServeError::Overloaded` (never
//!    buffered unboundedly) and every admitted request must still
//!    complete through the graceful drain.
//! 4. **Report** — throughput, latency quantiles, batch shapes,
//!    bytes/request, and the gate verdicts.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin serve_load
//! WORKERS=4 CLIENTS=16 REQUESTS=1200 cargo run --release -p cbq-bench --bin serve_load
//! ```

use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq_quant::{
    act_clip_bounds, install_act_quant, install_uniform, set_act_calibration, BitArrangement,
    BitWidth, UnitArrangement,
};
use cbq_resilience::atomic_write_text;
use cbq_serve::{
    compile_packed_codes, offline_logits, ArchSpec, Backend, BatchPolicy, ModelArtifact,
    ModelRegistry, QuantState, ServeError, Server, ServerConfig,
};
use cbq_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const BACKENDS: [Backend; 4] = [
    Backend::Float,
    Backend::FakeQuant,
    Backend::Integer,
    Backend::PackedInteger,
];

/// Trains a small MLP on the tiny synthetic set and captures a serving
/// artifact with calibrated activation clips and a uniform 4-bit weight
/// arrangement — the same deployment flow as `cbq serve`.
fn build_artifact(
    seed: u64,
) -> Result<(ModelArtifact, SyntheticImages), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 48, 24, spec.num_classes]);
    let mut net = arch.build_init(&mut rng)?;
    Trainer::new(TrainerConfig::quick(2, 0.1)).fit(&mut net, data.train(), &mut rng)?;
    let state = state_dict(&mut net);
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(32) {
        net.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();
    let quant = QuantState {
        arrangement: install_uniform(&mut net, BitWidth::new(4)?),
        act_bits: 4,
        act_clips: act_clip_bounds(&mut net),
    };
    let mut artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(quant),
        baseline_mix: None,
        packed: None,
    };
    // V3: embed the packed-code section so the packed backend's load-time
    // CRC + recompile verification runs under load too.
    artifact.packed = Some(compile_packed_codes(&artifact)?);
    Ok((artifact, data))
}

/// The same model re-declared at a uniform `bits` arrangement (no
/// retraining — quantization is post-hoc), for the artifact-shrink gate.
fn at_uniform_bits(artifact: &ModelArtifact, bits: BitWidth) -> ModelArtifact {
    let mut low = artifact.clone();
    let quant = low.quant.as_mut().expect("bench artifact is quantized");
    let mut arrangement = BitArrangement::new();
    for unit in quant.arrangement.units() {
        arrangement.push(UnitArrangement::uniform(
            &unit.name,
            unit.bits.len(),
            unit.weights_per_filter,
            bits,
        ));
    }
    quant.arrangement = arrangement;
    low.packed = None;
    low
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = env_usize("WORKERS", 2);
    let clients = env_usize("CLIENTS", 8).max(1);
    let requests = env_usize("REQUESTS", 600).max(1);
    let max_batch = env_usize("MAX_BATCH", 8).max(1);

    let (artifact, data) = build_artifact(7)?;
    let registry = Arc::new(ModelRegistry::new());
    let mut targets = Vec::new();
    for backend in BACKENDS {
        let handle = registry.load(backend.as_str(), &artifact, backend)?;
        let model = registry.get(&handle)?;
        targets.push((backend, handle, model));
    }

    // Phase 1: steady multi-client load across all three backends.
    let server = Server::start(
        registry.clone(),
        ServerConfig {
            policy: BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
                queue_capacity: 4096,
            },
            workers,
        },
        Telemetry::disabled(),
    )?;
    let item_len: usize = artifact.input_shape.iter().product();
    let test = data.test();
    let images = test.images().as_slice();
    let samples: Vec<&[f32]> = (0..requests)
        .map(|i| {
            let j = i % test.len();
            &images[j * item_len..(j + 1) * item_len]
        })
        .collect();
    let started = Instant::now();
    let mut results = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let server = &server;
            let samples = &samples;
            let targets = &targets;
            joins.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut i = c;
                while i < samples.len() {
                    let t = i % targets.len();
                    out.push((i, t, server.infer(&targets[t].1, samples[i].to_vec())));
                    i += clients;
                }
                out
            }));
        }
        for join in joins {
            results.extend(join.join().expect("client thread panicked"));
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut exact = vec![0usize; targets.len()];
    let mut served = vec![0usize; targets.len()];
    let mut errors = 0usize;
    for (i, t, outcome) in results {
        match outcome {
            Ok(resp) => {
                let offline = offline_logits(&targets[t].2, samples[i])?;
                served[t] += 1;
                if resp.logits.len() == offline.len()
                    && resp
                        .logits
                        .iter()
                        .zip(&offline)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                {
                    exact[t] += 1;
                }
            }
            Err(e) => {
                errors += 1;
                eprintln!("request {i}: {e}");
            }
        }
    }
    let stats = server.shutdown();
    let all_exact = errors == 0 && exact == served && served.iter().sum::<usize>() == requests;
    let throughput = stats.completed as f64 / wall_s.max(1e-9);
    eprintln!(
        "steady: {} requests, {} clients, {} workers -> {throughput:.0} req/s, \
         p50 {}us p95 {}us p99 {}us (queue p99 {}us, compute p99 {}us), \
         {} batches (largest {})",
        requests,
        clients,
        stats.workers,
        stats.latency.quantile_us(0.5),
        stats.latency.quantile_us(0.95),
        stats.latency.quantile_us(0.99),
        stats.queue_wait.quantile_us(0.99),
        stats.compute.quantile_us(0.99),
        stats.batches,
        stats.largest_batch,
    );
    for (idx, (backend, _, _)) in targets.iter().enumerate() {
        eprintln!(
            "  {:<10} bit-exact {}/{} vs offline",
            backend.as_str(),
            exact[idx],
            served[idx]
        );
    }
    eprintln!(
        "  scratch: {} steady-state pool misses ({} warm-up)",
        stats.steady_pool_misses,
        stats.total_pool_misses - stats.steady_pool_misses,
    );

    // Phase 2: packed vs wide. Weight-code bytes touched per
    // single-sample request, offline throughput of both integer engines,
    // bit-identity across the whole test set, and the artifact shrink at
    // a uniform 2-bit arrangement.
    let codes = artifact.packed.as_ref().expect("artifact carries V3 codes");
    let bytes_packed = codes.packed_code_bytes();
    let bytes_wide = codes.wide_code_bytes();
    assert_eq!(targets[2].0, Backend::Integer);
    assert_eq!(targets[3].0, Backend::PackedInteger);
    let integer_model = &targets[2].2;
    let packed_model = &targets[3].2;
    let mut packed_identical = true;
    for sample in samples.iter().take(test.len()) {
        let a = offline_logits(integer_model, sample)?;
        let b = offline_logits(packed_model, sample)?;
        if a.len() != b.len() || a.iter().zip(&b).any(|(x, y)| x.to_bits() != y.to_bits()) {
            packed_identical = false;
            break;
        }
    }
    let reps = env_usize("OFFLINE_REPS", 2000).max(1);
    let offline_throughput = |model: &Arc<cbq_serve::LoadedModel>| {
        let started = Instant::now();
        for i in 0..reps {
            std::hint::black_box(offline_logits(model, samples[i % samples.len()]))
                .expect("offline inference failed");
        }
        reps as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let tput_wide = offline_throughput(integer_model);
    let tput_packed = offline_throughput(packed_model);
    let low = at_uniform_bits(&artifact, BitWidth::new(2)?);
    let low_codes = compile_packed_codes(&low)?;
    let shrink_2bit =
        low_codes.wide_code_bytes() as f64 / (low_codes.packed_code_bytes().max(1)) as f64;
    eprintln!(
        "packed: {bytes_packed} weight-code bytes/request vs {bytes_wide} wide \
         ({:.1}x), offline {tput_packed:.0} req/s vs {tput_wide:.0} wide, \
         bit-identical {packed_identical}, 2-bit shrink {shrink_2bit:.1}x",
        bytes_wide as f64 / (bytes_packed.max(1)) as f64,
    );

    // Phase 3: deterministic overload burst. One worker, a queue of 4,
    // and a max_wait far beyond the burst duration: the queue fills with
    // exactly `queue_capacity` entries, every further submit is rejected
    // with `Overloaded`, and the graceful drain completes the admitted
    // requests (drain overrides max_wait, so nothing deadlocks).
    let burst_cap = 4usize;
    let burst_submits = 32usize;
    let burst_server = Server::start(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                // Strictly above the queue capacity so the worker can
                // never form a batch before the drain: admission counts
                // below are exact, not racy.
                max_batch: 2 * burst_cap,
                max_wait: Duration::from_secs(3600),
                queue_capacity: burst_cap,
            },
            workers: 1,
        },
        Telemetry::disabled(),
    )?;
    let mut tickets = Vec::new();
    let mut burst_rejected = 0usize;
    for i in 0..burst_submits {
        match burst_server.submit(&targets[0].1, samples[i % samples.len()].to_vec()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, burst_cap);
                burst_rejected += 1;
            }
            Err(e) => return Err(format!("burst submit {i}: {e}").into()),
        }
    }
    let burst_admitted = tickets.len();
    let burst_stats = burst_server.shutdown();
    let mut burst_completed = 0usize;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            burst_completed += 1;
        }
    }
    let burst_ok = burst_rejected > 0
        && burst_admitted + burst_rejected == burst_submits
        && burst_completed == burst_admitted
        && burst_stats.rejected == burst_rejected as u64
        && burst_stats.completed == burst_admitted as u64;
    eprintln!(
        "burst : {burst_submits} submits -> {burst_admitted} admitted, {burst_rejected} rejected, \
         {burst_completed} completed through drain (ok {burst_ok})"
    );

    let payload = serde_json::json!({
        "workload": "mlp/tiny artifact served on float+fake-quant+integer+packed backends",
        "workers": stats.workers,
        "clients": clients,
        "requests": requests,
        "max_batch": max_batch,
        "steady": {
            "wall_s": wall_s,
            "throughput_req_per_s": throughput,
            "latency_p50_us": stats.latency.quantile_us(0.5),
            "latency_p95_us": stats.latency.quantile_us(0.95),
            "latency_p99_us": stats.latency.quantile_us(0.99),
            "latency_mean_us": stats.latency.mean_us(),
            "queue_wait_p50_us": stats.queue_wait.quantile_us(0.5),
            "queue_wait_p99_us": stats.queue_wait.quantile_us(0.99),
            "batch_wait_p99_us": stats.batch_wait.quantile_us(0.99),
            "compute_p50_us": stats.compute.quantile_us(0.5),
            "compute_p99_us": stats.compute.quantile_us(0.99),
            "batches": stats.batches,
            "largest_batch": stats.largest_batch,
            "latency_buckets_us": stats.latency.sparse_counts(),
            "accepted": stats.accepted,
            "rejected": stats.rejected,
            "completed": stats.completed,
            "failed": stats.failed,
            "bit_exact": BACKENDS.iter().zip(&exact).zip(&served).map(|((b, e), s)| {
                serde_json::json!({"backend": b.as_str(), "exact": e, "served": s})
            }).collect::<Vec<_>>(),
            "steady_pool_misses": stats.steady_pool_misses,
            "warmup_pool_misses": stats.total_pool_misses - stats.steady_pool_misses,
        },
        "packed": {
            "bytes_per_request_packed": bytes_packed,
            "bytes_per_request_wide": bytes_wide,
            "code_density_x": bytes_wide as f64 / (bytes_packed.max(1)) as f64,
            "offline_reps": reps,
            "offline_throughput_packed_req_per_s": tput_packed,
            "offline_throughput_wide_req_per_s": tput_wide,
            "artifact_shrink_2bit_x": shrink_2bit,
        },
        "burst": {
            "submits": burst_submits,
            "queue_capacity": burst_cap,
            "admitted": burst_admitted,
            "rejected": burst_rejected,
            "completed_through_drain": burst_completed,
            "ok": burst_ok,
        },
        "gates": {
            "bit_exact_vs_offline": all_exact,
            "zero_steady_pool_misses": stats.steady_pool_misses == 0,
            "bounded_admission": burst_ok,
            "packed_bit_identical": packed_identical,
            "artifact_shrink_4x_at_2bit": shrink_2bit >= 4.0,
        },
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_serve.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_serve.json");

    if !all_exact {
        eprintln!("BIT-EXACTNESS VIOLATION — see results/BENCH_serve.json");
        std::process::exit(1);
    }
    if stats.steady_pool_misses != 0 {
        eprintln!(
            "ALLOCATION GATE FAILED: {} steady-state pool misses",
            stats.steady_pool_misses
        );
        std::process::exit(1);
    }
    if !burst_ok {
        eprintln!("ADMISSION GATE FAILED — see results/BENCH_serve.json");
        std::process::exit(1);
    }
    if !packed_identical {
        eprintln!("PACKED BIT-IDENTITY GATE FAILED — see results/BENCH_serve.json");
        std::process::exit(1);
    }
    if shrink_2bit < 4.0 {
        eprintln!("PACKED SHRINK GATE FAILED: {shrink_2bit:.2}x < 4x at 2 bits");
        std::process::exit(1);
    }
    Ok(())
}
