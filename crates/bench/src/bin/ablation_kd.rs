//! Ablation: how much does the knowledge-distillation term of Eq. 10
//! contribute during refining?
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin ablation_kd
//! ```
//!
//! Runs the same CQ pipeline on VGG-small / CIFAR-10 at 2.0/2.0 with
//! `α = 0.3` (the paper), `α = 1.0` (pure cross-entropy, no teacher) and
//! `α = 0.0` (pure distillation). Expected: the mixed loss matches or
//! beats pure CE.

use cbq_bench::FigureWriter;
use cbq_core::{CqConfig, CqPipeline, RefineConfig};
use cbq_data::SyntheticImages;
use cbq_nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut w = FigureWriter::new("ablation_kd");
    w.comment("KD ablation: VGG-small / CIFAR10-like at 2.0/2.0, refine alpha sweep");
    w.row(&[
        "alpha".into(),
        "pre_refine_pct".into(),
        "final_pct".into(),
        "gain_pts".into(),
    ]);
    for &alpha in &[0.3f32, 1.0, 0.0] {
        let mut rng = StdRng::seed_from_u64(5);
        let data = SyntheticImages::generate(&cbq_bench::hard_cifar10_like(), &mut rng)?;
        let vcfg = models::VggConfig::for_input(3, 12, 12, 10);
        let model = models::vgg_small(&vcfg, &mut rng)?;
        let mut cfg = CqConfig::new(2.0, 2.0);
        cfg.pretrain = Some(TrainerConfig::quick(epochs, 0.02));
        cfg.refine = RefineConfig {
            alpha,
            ..RefineConfig::quick(epochs * 2, 0.004)
        };
        cfg.search.step = 0.2;
        let report = CqPipeline::new(cfg).run(model, &data, &mut rng)?;
        w.row(&[
            format!("{alpha:.1}"),
            format!("{:.2}", 100.0 * report.pre_refine_accuracy),
            format!("{:.2}", 100.0 * report.final_accuracy),
            format!("{:.2}", 100.0 * report.refine_gain()),
        ]);
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
