//! Chaos load generator for the `cbq-fleet` multi-replica serving tier:
//! drives a large client request stream across N replicas, kills and
//! restarts one replica mid-run via the fault plan's positional trigger,
//! and hard-gates on the fleet's two invariants — **zero lost admitted
//! requests** and a **byte-identical replay log** no matter the replica
//! count, worker count, or fault timing. Numbers land in
//! `results/BENCH_fleet.json` (published as a CI artifact).
//!
//! Three phases:
//!
//! 1. **Reference run** — a 1-replica, 1-worker fleet serves the full id
//!    stream; its sorted canonical-byte replay log is the ground truth.
//! 2. **Chaos runs** — the full fleet (default 4 replicas) serves the
//!    same ids from many client threads, once fault-free and once with a
//!    `kill-replica` trigger firing mid-run (kill → graceful drain →
//!    restart). Every run must complete every request and reproduce the
//!    reference log byte for byte.
//! 3. **Report** — throughput, latency quantiles, failover/retry/shed
//!    counters, per-replica load split, and the gate verdicts.
//!
//! The serving backend is selectable (`BACKEND=float|fake-quant|integer|
//! packed`, default float); quantized backends get a calibrated uniform
//! 4-bit artifact, and the packed backend additionally carries the V3
//! packed-code section — the replay byte-identity gate then proves the
//! packed engine deterministic under failover and restart as well.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fleet_load
//! REPLICAS=6 WORKERS=2 CLIENTS=16 REQUESTS=100000 BACKEND=packed \
//!     cargo run --release -p cbq-bench --bin fleet_load
//! ```

use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_fleet::{replica_name, Fleet, FleetConfig, FleetStats, RetryPolicy};
use cbq_nn::{state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq_quant::{
    act_clip_bounds, install_act_quant, install_uniform, set_act_calibration, BitWidth,
};
use cbq_resilience::{atomic_write_text, FaultPlan};
use cbq_serve::{
    compile_packed_codes, ArchSpec, Backend, BatchPolicy, ModelArtifact, ModelRegistry, QuantState,
    ServerConfig, SystemClock,
};
use cbq_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Trains a small MLP and captures it as a serving artifact. Quantized
/// backends get calibrated activation clips and a uniform 4-bit weight
/// arrangement; the packed backend's artifact also embeds the V3
/// packed-code section so load-time verification runs in every replica.
fn build_artifact(
    seed: u64,
    backend: Backend,
) -> Result<(ModelArtifact, SyntheticImages), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 32, 16, spec.num_classes]);
    let mut net = arch.build_init(&mut rng)?;
    Trainer::new(TrainerConfig::quick(1, 0.1)).fit(&mut net, data.train(), &mut rng)?;
    let state = state_dict(&mut net);
    let quant = if backend == Backend::Float {
        None
    } else {
        install_act_quant(&mut net);
        set_act_calibration(&mut net, true);
        for batch in data.val().batches(32) {
            net.forward(&batch.images, Phase::Eval)?;
        }
        set_act_calibration(&mut net, false);
        net.clear_cache();
        Some(QuantState {
            arrangement: install_uniform(&mut net, BitWidth::new(4)?),
            act_bits: 4,
            act_clips: act_clip_bounds(&mut net),
        })
    };
    let mut artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant,
        baseline_mix: None,
        packed: None,
    };
    if backend == Backend::PackedInteger {
        artifact.packed = Some(compile_packed_codes(&artifact)?);
    }
    Ok((artifact, data))
}

struct RunOutcome {
    /// Sorted (by id) canonical response bytes, concatenated per request.
    log: Vec<Vec<u8>>,
    stats: FleetStats,
    wall_s: f64,
    errors: usize,
}

/// Drives `requests` ids through a fresh fleet and collects the replay
/// log. Client `c` owns ids `c, c+clients, …` so the id set is exactly
/// `0..requests` in every configuration.
#[allow(clippy::too_many_arguments)]
fn run(
    artifact: &ModelArtifact,
    backend: Backend,
    samples: &[&[f32]],
    requests: usize,
    replicas: usize,
    workers: usize,
    clients: usize,
    max_batch: usize,
    faults: Option<&str>,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("m", artifact, backend)?;
    let plan = match faults {
        Some(spec) => Some(Arc::new(FaultPlan::parse(spec)?)),
        None => None,
    };
    let config = FleetConfig {
        replicas,
        server: ServerConfig {
            policy: BatchPolicy {
                max_batch,
                max_wait: Duration::from_micros(200),
                queue_capacity: 4096,
            },
            workers,
        },
        retry: RetryPolicy {
            max_attempts: (2 * replicas + 2) as u32,
            ..RetryPolicy::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start_with_faults(
        registry,
        config,
        Arc::new(SystemClock::new()),
        Telemetry::disabled(),
        plan,
    )?;
    let started = Instant::now();
    let mut responses = Vec::with_capacity(requests);
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let fleet = &fleet;
            let handle = &handle;
            joins.push(scope.spawn(move || {
                let mut ok = Vec::new();
                let mut failed = 0usize;
                let mut id = c as u64;
                while (id as usize) < requests {
                    let sample = samples[id as usize % samples.len()];
                    match fleet.infer_with_id(id, handle, sample.to_vec(), None) {
                        Ok(resp) => ok.push(resp),
                        Err(e) => {
                            failed += 1;
                            eprintln!("request {id} failed: {e}");
                        }
                    }
                    id += clients as u64;
                }
                (ok, failed)
            }));
        }
        for join in joins {
            let (ok, failed) = join.join().expect("client thread panicked");
            responses.extend(ok);
            errors += failed;
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let stats = fleet.shutdown();
    responses.sort_by_key(|r| r.id);
    let log = responses.iter().map(|r| r.canonical_bytes()).collect();
    Ok(RunOutcome {
        log,
        stats,
        wall_s,
        errors,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let replicas = env_usize("REPLICAS", 4).max(1);
    let workers = env_usize("WORKERS", 2);
    let clients = env_usize("CLIENTS", 8).max(1);
    let requests = env_usize("REQUESTS", 100_000).max(clients);
    let max_batch = env_usize("MAX_BATCH", 8).max(1);
    // Positional kill trigger: fire once mid-run (after ~half the
    // requests), victim is the second replica when there is one.
    let kill_at = env_usize("KILL_AT", requests / 2).max(1);
    let victim = replica_name(1 % replicas);
    let fault_spec = format!("kill-replica:{victim}@{kill_at}");
    let backend =
        Backend::parse(&std::env::var("BACKEND").unwrap_or_else(|_| "float".to_string()))?;

    let (artifact, data) = build_artifact(11, backend)?;
    let item_len: usize = artifact.input_shape.iter().product();
    let test = data.test();
    let images = test.images().as_slice();
    let samples: Vec<&[f32]> = (0..test.len())
        .map(|j| &images[j * item_len..(j + 1) * item_len])
        .collect();

    // Phase 1: serial reference log.
    eprintln!(
        "reference: 1 replica / 1 worker / 1 client, {requests} requests, \
         backend {}",
        backend.as_str()
    );
    let reference = run(
        &artifact, backend, &samples, requests, 1, 1, 1, max_batch, None,
    )?;

    // Phase 2a: full fleet, fault-free.
    eprintln!("fleet    : {replicas} replicas / {workers} workers / {clients} clients");
    let steady = run(
        &artifact, backend, &samples, requests, replicas, workers, clients, max_batch, None,
    )?;

    // Phase 2b: same fleet with the mid-run kill/restart drill.
    eprintln!("chaos    : {fault_spec}");
    let chaos = run(
        &artifact,
        backend,
        &samples,
        requests,
        replicas,
        workers,
        clients,
        max_batch,
        Some(&fault_spec),
    )?;

    let zero_lost = reference.errors == 0
        && steady.errors == 0
        && chaos.errors == 0
        && reference.log.len() == requests
        && steady.log.len() == requests
        && chaos.log.len() == requests
        && [&reference.stats, &steady.stats, &chaos.stats]
            .iter()
            .all(|s| s.merged.accepted == s.merged.completed && s.merged.failed == 0);
    let replay_identical = steady.log == reference.log && chaos.log == reference.log;
    let drill_fired = chaos.stats.replica_restarts == 1
        && chaos
            .stats
            .replicas
            .iter()
            .any(|r| r.name == victim && r.restarts == 1);

    for (label, outcome) in [
        ("reference", &reference),
        ("steady", &steady),
        ("chaos", &chaos),
    ] {
        let s = &outcome.stats;
        eprintln!(
            "{label:>9}: {:.0} req/s ({:.3}s), p50 {}us p95 {}us p99 {}us, \
             accepted {} completed {} failed {}, {} failovers, {} retries, \
             {} shed, {} readmitted, {} budget-exhausted, {} restarts, errors {}",
            s.merged.completed as f64 / outcome.wall_s.max(1e-9),
            outcome.wall_s,
            s.merged.latency.quantile_us(0.5),
            s.merged.latency.quantile_us(0.95),
            s.merged.latency.quantile_us(0.99),
            s.merged.accepted,
            s.merged.completed,
            s.merged.failed,
            s.failover,
            s.retries,
            s.shed,
            s.readmitted,
            s.budget_exhausted,
            s.replica_restarts,
            outcome.errors,
        );
        for r in &s.replicas {
            eprintln!(
                "           {:<10} completed {:>7} in {:>5} batches (restarts {})",
                r.name, r.stats.completed, r.stats.batches, r.restarts
            );
        }
    }
    eprintln!(
        "gates    : zero_lost {zero_lost}, replay_identical {replay_identical}, \
         drill_fired {drill_fired}"
    );

    let run_json = |o: &RunOutcome| {
        let s = &o.stats;
        serde_json::json!({
            "wall_s": o.wall_s,
            "throughput_req_per_s": s.merged.completed as f64 / o.wall_s.max(1e-9),
            "latency_p50_us": s.merged.latency.quantile_us(0.5),
            "latency_p95_us": s.merged.latency.quantile_us(0.95),
            "latency_p99_us": s.merged.latency.quantile_us(0.99),
            "accepted": s.merged.accepted,
            "completed": s.merged.completed,
            "failed": s.merged.failed,
            "errors": o.errors,
            "retries": s.retries,
            "shed": s.shed,
            "failover": s.failover,
            "readmitted": s.readmitted,
            "budget_exhausted": s.budget_exhausted,
            "replica_restarts": s.replica_restarts,
            "per_replica": s.replicas.iter().map(|r| serde_json::json!({
                "name": r.name,
                "completed": r.stats.completed,
                "batches": r.stats.batches,
                "restarts": r.restarts,
            })).collect::<Vec<_>>(),
        })
    };
    let payload = serde_json::json!({
        "workload": "mlp/tiny artifact served by a loopback replica fleet",
        "backend": backend.as_str(),
        "replicas": replicas,
        "workers": workers,
        "clients": clients,
        "requests": requests,
        "max_batch": max_batch,
        "fault": fault_spec,
        "reference": run_json(&reference),
        "steady": run_json(&steady),
        "chaos": run_json(&chaos),
        "gates": {
            "zero_lost_requests": zero_lost,
            "replay_byte_identical": replay_identical,
            "kill_drill_fired_once": drill_fired,
        },
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_fleet.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_fleet.json");

    if !zero_lost {
        eprintln!("ZERO-LOST GATE FAILED — see results/BENCH_fleet.json");
        std::process::exit(1);
    }
    if !replay_identical {
        eprintln!("REPLAY BYTE-IDENTITY GATE FAILED — see results/BENCH_fleet.json");
        std::process::exit(1);
    }
    if !drill_fired {
        eprintln!("CHAOS DRILL GATE FAILED — see results/BENCH_fleet.json");
        std::process::exit(1);
    }
    Ok(())
}
