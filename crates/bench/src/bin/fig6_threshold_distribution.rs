//! Figure 6: sorted filter importance-score distribution of VGG-small at
//! the 2.0/2.0 setting on CIFAR-10, with the final bit-width thresholds
//! overlaid.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig6_threshold_distribution
//! ```
//!
//! Expected shape (paper): most layers hold many low-score filters that
//! land below the 0/1-bit threshold (especially the FC layers 5 and 6),
//! while the last hidden layer keeps every filter at 2+ bits.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let spec = RunSpec {
        model: ModelKind::VggSmall,
        dataset: DatasetKind::C10Like,
        method: Method::Cq,
        weight_bits: 2.0,
        act_bits: 2,
        seed: 0,
    };
    let summary = run_spec(&spec, scale)?;

    let mut w = FigureWriter::new("fig6_threshold_distribution");
    w.comment("Figure 6: sorted filter scores per layer + final thresholds, VGG-small 2.0/2.0");
    w.comment(format!(
        "thresholds (0/1b, 1/2b, 2/3b, 3/4b): {:?}",
        summary
            .thresholds
            .iter()
            .map(|t| format!("{t:.2}"))
            .collect::<Vec<_>>()
    ));
    w.row(&[
        "layer".into(),
        "sorted_index".into(),
        "score".into(),
        "assigned_bits".into(),
    ]);
    for (name, phi) in summary.unit_names.iter().zip(&summary.sorted_phi) {
        for (i, &p) in phi.iter().enumerate() {
            let bits = summary.thresholds.iter().take_while(|&&t| p >= t).count();
            let bits = if bits == summary.thresholds.len() {
                4
            } else {
                bits
            };
            w.row(&[
                name.clone(),
                i.to_string(),
                format!("{p:.4}"),
                bits.to_string(),
            ]);
        }
    }
    // Per-layer summary: fraction pruned / at max bits.
    w.comment("layer summaries");
    w.row(&[
        "layer".into(),
        "filters".into(),
        "pct_0bit".into(),
        "pct_4bit".into(),
    ]);
    for (name, hist) in summary.unit_names.iter().zip(&summary.unit_histograms) {
        let total: usize = hist.iter().sum();
        w.row(&[
            name.clone(),
            total.to_string(),
            format!("{:.1}", 100.0 * hist[0] as f64 / total.max(1) as f64),
            format!("{:.1}", 100.0 * hist[4] as f64 / total.max(1) as f64),
        ]);
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
