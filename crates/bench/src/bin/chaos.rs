//! Chaos harness for the CQ pipeline's crash-safety guarantees.
//!
//! Each scenario runs the full pipeline on a tiny MLP with a
//! deterministic fault armed (crash after a phase, torn checkpoint, or
//! both), then resumes from the checkpoint directory and checks that the
//! resumed run reproduces an *uninterrupted* baseline bit-for-bit:
//! identical [`SearchOutcome`], identical per-epoch refine statistics,
//! identical final accuracy. A report lands atomically in
//! `results/chaos_report.json`; the process exits non-zero if any
//! scenario diverges.
//!
//! Run with `cargo run -p cbq-bench --release --bin chaos`.

use cbq_core::{CqConfig, CqPipeline, CqReport, RefineConfig};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{models, Sequential, TrainerConfig};
use cbq_resilience::{atomic_write_text, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One seed drives data generation, model init, and the refine shuffle,
/// so every scenario starts from an identical world.
const SEED: u64 = 7;

type DynError = Box<dyn std::error::Error>;

fn config() -> CqConfig {
    let mut cfg = CqConfig::new(2.0, 2.0);
    cfg.pretrain = Some(TrainerConfig::quick(2, 0.05));
    cfg.refine = RefineConfig::quick(3, 0.01);
    // Resumed refine epochs must replay the exact batch order of the
    // uninterrupted run; a seeded shuffle makes the order a function of
    // (seed, epoch) instead of ambient RNG history.
    cfg.refine.shuffle_seed = Some(SEED);
    cfg.search.step = 0.25;
    cfg.search.probe_samples = 64;
    cfg.eval_batch = 64;
    cfg.calibration_samples = 64;
    cfg
}

/// Regenerates the identical (model, data) pair for every run.
fn fresh_inputs() -> Result<(Sequential, SyntheticImages), DynError> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng)?;
    let model = models::mlp(&[data.feature_len(), 24, 16, 4], &mut rng)?;
    Ok((model, data))
}

fn run_once(
    dir: Option<&Path>,
    resume: bool,
    fault: FaultPlan,
) -> Result<CqReport, cbq_core::CqError> {
    let (model, data) = fresh_inputs().expect("deterministic inputs");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x9e37_79b9);
    let mut pipeline = CqPipeline::new(config()).with_fault_plan(Arc::new(fault));
    if let Some(dir) = dir {
        pipeline = pipeline.with_checkpoint_dir(dir).with_resume(resume);
    }
    pipeline.run(model, &data, &mut rng)
}

/// Bit-level comparison of a resumed run against the baseline.
fn diffs(baseline: &CqReport, resumed: &CqReport) -> Vec<String> {
    let mut out = Vec::new();
    if resumed.search != baseline.search {
        out.push("search outcome differs".to_string());
    }
    if resumed.refine_stats != baseline.refine_stats {
        out.push("refine stats differ".to_string());
    }
    for (what, a, b) in [
        ("fp_accuracy", baseline.fp_accuracy, resumed.fp_accuracy),
        (
            "pre_refine_accuracy",
            baseline.pre_refine_accuracy,
            resumed.pre_refine_accuracy,
        ),
        (
            "final_accuracy",
            baseline.final_accuracy,
            resumed.final_accuracy,
        ),
    ] {
        if a.to_bits() != b.to_bits() {
            out.push(format!("{what}: baseline {a} vs resumed {b}"));
        }
    }
    out
}

struct ScenarioResult {
    name: &'static str,
    fault: &'static str,
    interrupted: bool,
    diffs: Vec<String>,
}

impl ScenarioResult {
    fn passed(&self) -> bool {
        self.interrupted && self.diffs.is_empty()
    }
}

fn run_scenario(
    base: &Path,
    name: &'static str,
    fault: &'static str,
    baseline: &CqReport,
) -> Result<ScenarioResult, DynError> {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::parse(fault)?;

    let first = run_once(Some(&dir), false, plan);
    let interrupted = first.is_err();
    if !interrupted {
        eprintln!("[chaos] {name}: fault {fault:?} did not fire");
        return Ok(ScenarioResult {
            name,
            fault,
            interrupted,
            diffs: vec!["fault did not interrupt the run".to_string()],
        });
    }

    // The crashed process is gone; the resumed one has no faults armed.
    let resumed = run_once(Some(&dir), true, FaultPlan::none())?;
    let diffs = diffs(baseline, &resumed);
    let verdict = if diffs.is_empty() {
        "match"
    } else {
        "DIVERGED"
    };
    eprintln!("[chaos] {name}: interrupted, resumed -> {verdict}");
    for d in &diffs {
        eprintln!("[chaos]   {d}");
    }
    Ok(ScenarioResult {
        name,
        fault,
        interrupted,
        diffs,
    })
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn report_json(baseline: &CqReport, results: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"baseline\": {{\"fp_accuracy\": {}, \"final_accuracy\": {}, \"avg_bits\": {}}},\n",
        baseline.fp_accuracy, baseline.final_accuracy, baseline.search.final_avg_bits
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let diffs: Vec<String> = r.diffs.iter().map(|d| json_string(d)).collect();
        out.push_str(&format!(
            "    {{\"name\": {}, \"fault\": {}, \"interrupted\": {}, \"passed\": {}, \"diffs\": [{}]}}{}\n",
            json_string(r.name),
            json_string(r.fault),
            r.interrupted,
            r.passed(),
            diffs.join(", "),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), DynError> {
    let base = PathBuf::from("results/chaos");
    std::fs::create_dir_all(&base)?;

    eprintln!("[chaos] uninterrupted baseline (no checkpoints)...");
    let baseline = run_once(None, false, FaultPlan::none())?;
    eprintln!(
        "[chaos] baseline: fp {:.2}% final {:.2}% avg bits {:.3}",
        100.0 * baseline.fp_accuracy,
        100.0 * baseline.final_accuracy,
        baseline.search.final_avg_bits
    );

    // Crash after every checkpointed phase, plus torn-write variants
    // where the freshly written checkpoint is truncated before the
    // crash — resume must detect the corruption and recompute.
    let scenarios: &[(&str, &str)] = &[
        ("crash-after-pretrain", "fail-at:pretrain"),
        ("crash-after-scores", "fail-at:scores"),
        ("crash-after-calibrate", "fail-at:calibrate"),
        ("crash-after-search", "fail-at:search"),
        ("crash-mid-refine", "fail-at:refine-epoch-1"),
        ("crash-after-refine", "fail-at:refine"),
        ("torn-pretrain-ckpt", "truncate:pretrain,fail-at:pretrain"),
        ("torn-search-ckpt", "truncate:search,fail-at:search"),
        ("torn-refine-ckpt", "truncate:refine,fail-at:refine-epoch-0"),
    ];
    let mut results = Vec::new();
    for (name, fault) in scenarios {
        results.push(run_scenario(&base, name, fault, &baseline)?);
    }

    let report_path = PathBuf::from("results/chaos_report.json");
    atomic_write_text(&report_path, &report_json(&baseline, &results))?;
    let failed = results.iter().filter(|r| !r.passed()).count();
    println!(
        "chaos: {}/{} scenarios reproduced the baseline bit-for-bit (report: {})",
        results.len() - failed,
        results.len(),
        report_path.display()
    );
    if failed > 0 {
        std::process::exit(1);
    }
    Ok(())
}
