//! Static-vs-adaptive serving drill for the closed drift loop: the same
//! traffic plan — stationary windows, then a sustained class surge —
//! runs against a *static* quantized server and an *adaptive* one
//! ([`Server::start_adaptive`] wired to the real re-quantization glue,
//! `cbq_core::requant_for_mix`). Gates:
//!
//! - **stationary identity**: with no shift, the adaptive arm never
//!   triggers and its responses are byte-identical to the static arm's;
//! - **adaptive never loses**: under the shift, post-cutover adaptive
//!   accuracy is at least the static arm's (the shadow-scoring gate
//!   rejects any candidate that does not earn the swap);
//! - **determinism**: the adaptive arm's decisions and responses are
//!   byte-identical across worker counts, and the cutover seq is
//!   window-aligned.
//!
//! Results — `accuracy_recovered`, `requant_latency_windows`,
//! `static_vs_adaptive_delta` — land in
//! `results/BENCH_serve_requant.json`.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin serve_requant
//! WINDOW=48 SHADOW=3 POST=4 cargo run --release -p cbq-bench --bin serve_requant
//! ```

use cbq_core::{requant_for_mix, ScoreConfig, SearchConfig};
use cbq_data::{Subset, SyntheticImages, SyntheticSpec};
use cbq_nn::{load_state_dict, state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq_quant::{
    act_clip_bounds, install_act_quant, restore_act_clip_bounds, set_act_bits,
    set_act_calibration, BitWidth,
};
use cbq_resilience::atomic_write_text;
use cbq_serve::{
    achieved_mix, apportion, ArchSpec, Backend, BatchPolicy, ManualClock, ModelArtifact,
    ModelRegistry, ObserveConfig, QuantState, RequantConfig, RequantDecision, RequantReport,
    RequantSetup, ServeError, Server, ServerConfig,
};
use cbq_telemetry::Telemetry;
use cbq_tensor::parallel::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One labeled request: the sample, the class the *incumbent* predicts
/// for it (the pooling key — drift is measured on predicted mixes), and
/// its ground-truth label (what accuracy is scored against).
struct Pooled {
    sample: Vec<f32>,
    true_label: usize,
}

/// Traffic pooled by incumbent-predicted class but labeled with ground
/// truth: planned predicted-mixes are realized *exactly* (stationary
/// windows score a drift L1 of literally zero) while accuracy counters
/// measure real correctness — the quantity the adaptive loop must not
/// lose and should recover.
struct LabeledTraffic {
    pools: Vec<Vec<Pooled>>,
    cursors: Vec<usize>,
}

impl LabeledTraffic {
    fn new(classes: usize) -> LabeledTraffic {
        LabeledTraffic {
            pools: (0..classes).map(|_| Vec::new()).collect(),
            cursors: vec![0; classes],
        }
    }

    /// One window of `n` requests realizing `mix` over predicted
    /// classes, interleaved round-robin, each pool cycled in order.
    fn window(&mut self, mix: &[f64], n: usize) -> Vec<(Vec<f32>, usize)> {
        let mut remaining = apportion(mix, n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            for c in 0..self.pools.len() {
                if remaining[c] == 0 {
                    continue;
                }
                let pool = &self.pools[c];
                let item = &pool[self.cursors[c] % pool.len()];
                self.cursors[c] += 1;
                remaining[c] -= 1;
                out.push((item.sample.clone(), item.true_label));
            }
        }
        out
    }
}

struct Fixture {
    artifact: ModelArtifact,
    traffic: LabeledTraffic,
    val_flat: Subset,
    classes: usize,
}

/// Trains a float MLP, calibrates activation quantizers, searches the
/// incumbent bit arrangement for the *uniform* (training) mix with the
/// same machinery the adaptive loop uses, and pools every test sample
/// under the class the quantized incumbent predicts for it.
fn build_fixture(
    seed: u64,
    epochs: usize,
    avg_bits: f32,
    probe_samples: usize,
) -> Result<Fixture, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let classes = spec.num_classes;
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 24, 16, classes]);
    let mut net = arch.build_init(&mut rng)?;
    Trainer::new(TrainerConfig::quick(epochs, 0.1)).fit(&mut net, data.train(), &mut rng)?;
    let state = state_dict(&mut net);

    // Calibrate activation quantizers exactly like the serve CLI.
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    let calib = data.val().head(256)?;
    for batch in calib.batches(32) {
        net.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();
    let act_clips = act_clip_bounds(&mut net);
    let act_bits = 4u8;
    set_act_bits(&mut net, Some(BitWidth::new(act_bits)?));

    let flatten = |s: &Subset| -> Result<Subset, Box<dyn std::error::Error>> {
        Ok(Subset::new(
            s.images().reshape(&[s.len(), spec.feature_len()])?,
            s.labels().to_vec(),
        )?)
    };
    let val_flat = flatten(data.val())?;

    // The incumbent's arrangement: the same mix-directed search the
    // adaptive loop runs, fed the uniform mix (all-ones weights make it
    // bit-identical to the offline scorer/search).
    let score = ScoreConfig {
        samples_per_class: 8,
        ..ScoreConfig::default()
    };
    let mut search = SearchConfig::new(avg_bits);
    search.probe_samples = probe_samples;
    let tel = Telemetry::disabled();
    let uniform_counts = vec![1u64; classes];
    let out = requant_for_mix(
        &mut net,
        &val_flat,
        &uniform_counts,
        &score,
        &search,
        &tel,
        Parallelism::serial(),
    )?;

    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(QuantState {
            arrangement: out.search.arrangement,
            act_bits,
            act_clips,
        }),
        baseline_mix: None,
        packed: None,
    };

    // Pool test samples by the class the quantized incumbent predicts.
    let registry = ModelRegistry::new();
    let handle = registry.load("adaptive", &artifact, Backend::FakeQuant)?;
    let model = registry.get(&handle)?;
    let test = data.test();
    let item_len = spec.feature_len();
    let images = test.images().as_slice();
    let mut traffic = LabeledTraffic::new(classes);
    for j in 0..test.len() {
        let sample = images[j * item_len..(j + 1) * item_len].to_vec();
        let logits = cbq_serve::offline_logits(&model, &sample)?;
        let predicted = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap();
        traffic.pools[predicted].push(Pooled {
            sample,
            true_label: test.labels()[j],
        });
    }
    for (c, pool) in traffic.pools.iter().enumerate() {
        if pool.is_empty() {
            return Err(format!("incumbent predicts no samples as class {c}; change seed").into());
        }
    }
    Ok(Fixture {
        artifact,
        traffic,
        val_flat,
        classes,
    })
}

/// The adaptive arm's candidate builder: the real scoring/search glue.
/// Rebuilds the serving-configured net from the incumbent artifact and
/// re-runs `requant_for_mix` against the observed mix.
fn real_builder(
    val: Subset,
    avg_bits: f32,
    probe_samples: usize,
) -> Box<dyn cbq_serve::CandidateBuilder> {
    Box::new(
        move |mix: &[u64], incumbent: &ModelArtifact| -> cbq_serve::Result<ModelArtifact> {
            let glue = |e: String| ServeError::Artifact(format!("requant glue: {e}"));
            let quant = incumbent
                .quant
                .clone()
                .ok_or_else(|| glue("incumbent has no quant state".into()))?;
            let mut net = incumbent.arch.build()?;
            load_state_dict(&mut net, &incumbent.state).map_err(|e| glue(e.to_string()))?;
            install_act_quant(&mut net);
            set_act_calibration(&mut net, false);
            restore_act_clip_bounds(&mut net, &quant.act_clips);
            set_act_bits(
                &mut net,
                Some(BitWidth::new(quant.act_bits).map_err(|e| glue(e.to_string()))?),
            );
            let score = ScoreConfig {
                samples_per_class: 8,
                ..ScoreConfig::default()
            };
            let mut search = SearchConfig::new(avg_bits);
            search.probe_samples = probe_samples;
            let tel = Telemetry::disabled();
            let out = requant_for_mix(
                &mut net,
                &val,
                mix,
                &score,
                &search,
                &tel,
                Parallelism::serial(),
            )
            .map_err(|e| glue(e.to_string()))?;
            Ok(ModelArtifact {
                quant: Some(QuantState {
                    arrangement: out.search.arrangement,
                    ..quant
                }),
                ..incumbent.clone()
            })
        },
    )
}

struct ArmRun {
    /// `(version, argmax, ok)` per response, in admission-seq order.
    responses: Vec<(u64, usize, bool)>,
    requant: Option<RequantReport>,
}

/// Drives one arm over the plan with the drained-window protocol; when
/// `adaptive` carries a setup, the requant loop runs and each window
/// fully settles (`requant_sync`) before the next is admitted.
fn run_arm(
    workers: usize,
    artifact: &ModelArtifact,
    plan: &[Vec<(Vec<f32>, usize)>],
    classes: usize,
    window: u64,
    adaptive: Option<RequantSetup>,
) -> Result<ArmRun, Box<dyn std::error::Error>> {
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("adaptive", artifact, Backend::FakeQuant)?;
    let clock = ManualClock::new();
    let config = ServerConfig {
        policy: BatchPolicy {
            max_batch: 1,
            max_wait: Duration::from_secs(3600),
            queue_capacity: 1 << 16,
        },
        workers,
    };
    let observe = ObserveConfig {
        baseline: Some(achieved_mix(&vec![1.0; classes], window as usize)),
        window,
        ..ObserveConfig::for_classes(classes)
    };
    let telemetry = Telemetry::disabled();
    let clock_arc: Arc<dyn cbq_serve::ServeClock> = Arc::new(clock.clone());
    let is_adaptive = adaptive.is_some();
    let server = match adaptive {
        Some(setup) => Server::start_adaptive(
            registry, config, clock_arc, telemetry, observe, setup,
        )?,
        None => Server::start_observed(registry, config, clock_arc, telemetry, observe)?,
    };

    let mut id = 0u64;
    let mut responses = Vec::new();
    for w in plan {
        let tickets: Vec<_> = w
            .iter()
            .map(|(sample, label)| {
                id += 1;
                server.submit_request(id, &handle, sample.clone(), Some(*label))
            })
            .collect::<cbq_serve::Result<Vec<_>>>()?;
        for (k, ticket) in tickets.into_iter().enumerate() {
            let r = ticket.wait()?;
            let (_, label) = &w[k];
            responses.push((r.version, r.argmax, r.argmax == *label));
        }
        if is_adaptive {
            server.requant_sync();
        }
        clock.advance(Duration::from_millis(1));
    }
    let stats = server.shutdown();
    Ok(ArmRun {
        responses,
        requant: stats.requant,
    })
}

fn accuracy(responses: &[(u64, usize, bool)]) -> f64 {
    if responses.is_empty() {
        return 0.0;
    }
    responses.iter().filter(|(_, _, ok)| *ok).count() as f64 / responses.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = env_usize("WINDOW", 32).max(16) as u64;
    let stationary = env_usize("STATIONARY", 2);
    let shadow = env_usize("SHADOW", 2).max(1) as u64;
    let post = env_usize("POST", 3).max(1);
    let seed = env_usize("SEED", 5) as u64;
    let epochs = env_usize("EPOCHS", 3);
    let avg_bits = env_usize("AVG_BITS_X10", 20) as f32 / 10.0;
    let probe_samples = env_usize("PROBE", 48);
    let workers = env_usize("WORKERS", 4).max(1);

    eprintln!("training fixture + searching incumbent arrangement (uniform mix)...");
    let Fixture {
        artifact,
        mut traffic,
        val_flat,
        classes,
    } = build_fixture(seed, epochs, avg_bits, probe_samples)?;

    // The plan: `stationary` uniform windows, then a sustained surge of
    // the incumbent's weakest predicted class — 1 trigger window +
    // `shadow` shadow windows + `post` post-decision windows of it.
    let uniform = vec![1.0; classes];
    let surge = {
        let mut m = vec![0.0; classes];
        m[0] = 1.0;
        m
    };
    let shifted_span = 1 + shadow as usize + post;
    let mut plan = Vec::new();
    for _ in 0..stationary {
        plan.push(traffic.window(&uniform, window as usize));
    }
    for _ in 0..shifted_span {
        plan.push(traffic.window(&surge, window as usize));
    }
    // A pure-stationary plan for the identity gate, from fresh cursors.
    let mut stationary_traffic = LabeledTraffic::new(classes);
    stationary_traffic.pools = std::mem::take(&mut traffic.pools);
    stationary_traffic.cursors = vec![0; classes];
    let calm_plan: Vec<_> = (0..stationary + 2)
        .map(|_| stationary_traffic.window(&uniform, window as usize))
        .collect();

    let requant_config = RequantConfig {
        shadow_windows: shadow,
        ..RequantConfig::default()
    };
    let setup = |builder| RequantSetup {
        model: "adaptive".into(),
        backend: Backend::FakeQuant,
        artifact: artifact.clone(),
        config: requant_config.clone(),
        builder,
    };

    // Identity gate: no shift, no trigger, bytes equal to static.
    eprintln!("stationary identity gate ({} windows)...", calm_plan.len());
    let calm_static = run_arm(workers, &artifact, &calm_plan, classes, window, None)?;
    let calm_adaptive = run_arm(
        workers,
        &artifact,
        &calm_plan,
        classes,
        window,
        Some(setup(real_builder(val_flat.clone(), avg_bits, probe_samples))),
    )?;
    let calm_report = calm_adaptive.requant.as_ref().expect("adaptive report");
    let stationary_identical = calm_static.responses == calm_adaptive.responses;
    let stationary_quiet = calm_report.triggered == 0;

    // The shift drill, static vs adaptive, plus a 1-worker adaptive
    // replay for the determinism gate.
    eprintln!("shift drill ({} windows, surge on class 0)...", plan.len());
    let static_arm = run_arm(workers, &artifact, &plan, classes, window, None)?;
    let adaptive_arm = run_arm(
        workers,
        &artifact,
        &plan,
        classes,
        window,
        Some(setup(real_builder(val_flat.clone(), avg_bits, probe_samples))),
    )?;
    let adaptive_single = run_arm(
        1,
        &artifact,
        &plan,
        classes,
        window,
        Some(setup(real_builder(val_flat.clone(), avg_bits, probe_samples))),
    )?;
    let report = adaptive_arm.requant.as_ref().expect("adaptive report");
    let deterministic = adaptive_arm.responses == adaptive_single.responses
        && adaptive_arm.requant == adaptive_single.requant;

    let (cutover_seq, cutover_version) = report
        .jobs
        .iter()
        .find_map(|j| match &j.decision {
            RequantDecision::Cutover { seq, version } => Some((*seq, *version)),
            _ => None,
        })
        .map_or((None, None), |(s, v)| (Some(s), Some(v)));
    let cutover_aligned = cutover_seq.map_or(true, |s| s % window == 0);
    let requant_latency_windows = match (cutover_seq, report.jobs.first()) {
        (Some(seq), Some(job)) => Some(seq / window - job.trigger_window),
        _ => None,
    };

    // Post-decision comparison: the span both arms serve after the
    // adaptive arm's decision landed (cutover or rejection — when
    // rejected the arms must be identical there too).
    let shift_start = stationary * window as usize;
    let decision_start = cutover_seq
        .map(|s| s as usize)
        .unwrap_or((stationary + 1 + shadow as usize) * window as usize);
    let static_post = &static_arm.responses[decision_start..];
    let adaptive_post = &adaptive_arm.responses[decision_start..];
    let static_post_acc = accuracy(static_post);
    let adaptive_post_acc = accuracy(adaptive_post);
    let accuracy_recovered = adaptive_post_acc - static_post_acc;
    let adaptive_never_loses = adaptive_post
        .iter()
        .filter(|(_, _, ok)| *ok)
        .count()
        >= static_post.iter().filter(|(_, _, ok)| *ok).count();
    let static_shift_acc = accuracy(&static_arm.responses[shift_start..]);
    let adaptive_shift_acc = accuracy(&adaptive_arm.responses[shift_start..]);
    let static_vs_adaptive_delta = adaptive_arm.responses[shift_start..]
        .iter()
        .filter(|(_, _, ok)| *ok)
        .count() as i64
        - static_arm.responses[shift_start..]
            .iter()
            .filter(|(_, _, ok)| *ok)
            .count() as i64;

    eprintln!(
        "static  : post-decision accuracy {static_post_acc:.4} (shift span {static_shift_acc:.4})"
    );
    eprintln!(
        "recovery: accuracy_recovered {accuracy_recovered:+.4}, static_vs_adaptive_delta \
         {static_vs_adaptive_delta:+} correct answers over the shifted span"
    );
    eprintln!(
        "adaptive: post-decision accuracy {adaptive_post_acc:.4} (shift span \
         {adaptive_shift_acc:.4}), triggered {}, cutovers {}, rejected {}, cutover seq \
         {cutover_seq:?} (v{cutover_version:?}), requant latency {requant_latency_windows:?} \
         windows",
        report.triggered, report.cutovers, report.rejected,
    );
    eprintln!(
        "gates   : stationary identical {stationary_identical}, stationary quiet \
         {stationary_quiet}, adaptive never loses {adaptive_never_loses}, deterministic \
         {deterministic}, cutover aligned {cutover_aligned}"
    );

    let payload = serde_json::json!({
        "workload": "predicted-class pooled traffic with ground-truth labels, \
                     uniform mix -> class-0 surge",
        "window": window,
        "stationary_windows": stationary,
        "shadow_windows": shadow,
        "post_windows": post,
        "avg_bits": avg_bits,
        "workers": workers,
        "triggered": report.triggered,
        "cutovers": report.cutovers,
        "rejected": report.rejected,
        "cutover_seq": cutover_seq,
        "cutover_version": cutover_version,
        "requant_latency_windows": requant_latency_windows,
        "static_post_accuracy": static_post_acc,
        "adaptive_post_accuracy": adaptive_post_acc,
        "accuracy_recovered": accuracy_recovered,
        "static_shift_accuracy": static_shift_acc,
        "adaptive_shift_accuracy": adaptive_shift_acc,
        "static_vs_adaptive_delta": static_vs_adaptive_delta,
        "gates": {
            "stationary_identical_to_static": stationary_identical,
            "stationary_never_triggers": stationary_quiet,
            "adaptive_never_loses_post_decision": adaptive_never_loses,
            "deterministic_across_worker_counts": deterministic,
            "cutover_window_aligned": cutover_aligned,
        },
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_serve_requant.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_serve_requant.json");

    let mut failed = false;
    if !stationary_identical || !stationary_quiet {
        eprintln!("STATIONARY GATE FAILED: adaptive arm diverged from static without drift");
        failed = true;
    }
    if !adaptive_never_loses {
        eprintln!("RECOVERY GATE FAILED: adaptive arm lost accuracy after its decision");
        failed = true;
    }
    if !deterministic {
        eprintln!("DETERMINISM GATE FAILED: adaptive arm diverged across worker counts");
        failed = true;
    }
    if !cutover_aligned {
        eprintln!("ALIGNMENT GATE FAILED: cutover seq not window-aligned");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    Ok(())
}
