//! Figure 2: histograms of the number of filters versus importance score,
//! per layer, for the floating-point VGG-small network on CIFAR-10.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig2_score_histograms
//! ```
//!
//! Output: one CSV block per layer with 20 score bins spanning
//! `[0, num_classes]`. Expected shape (paper): different layers have
//! different distributions — later FC layers skew toward low scores
//! (few-class filters), early/middle conv layers hold more all-class
//! filters.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let spec = RunSpec {
        model: ModelKind::VggSmall,
        dataset: DatasetKind::C10Like,
        method: Method::Cq,
        weight_bits: 2.0,
        act_bits: 2,
        seed: 0,
    };
    let summary = run_spec(&spec, scale)?;
    let classes = match scale {
        cbq_bench::ExperimentScale::Small => 10.0,
        cbq_bench::ExperimentScale::Full => 10.0,
    };
    let bins = 20usize;
    let mut w = FigureWriter::new("fig2_score_histograms");
    w.comment("Figure 2: filters per importance-score bin, per VGG-small layer");
    w.comment(format!(
        "bins: {bins} over [0, {classes}] (score = classes the filter serves)"
    ));
    w.row(&[
        "layer".into(),
        "bin_lo".into(),
        "bin_hi".into(),
        "filters".into(),
    ]);
    for (name, phi) in summary.unit_names.iter().zip(&summary.sorted_phi) {
        let mut hist = vec![0usize; bins];
        for &p in phi {
            let idx = ((p / classes) * bins as f64).floor() as usize;
            hist[idx.min(bins - 1)] += 1;
        }
        for (b, &count) in hist.iter().enumerate() {
            w.row(&[
                name.clone(),
                format!("{:.2}", b as f64 * classes / bins as f64),
                format!("{:.2}", (b + 1) as f64 * classes / bins as f64),
                count.to_string(),
            ]);
        }
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
