//! Measures the packed-GEMM / batched-im2col / zero-alloc forward stack
//! against the legacy per-item path on the search-probe workload, gates
//! on bit-for-bit equivalence and on zero steady-state allocations, and
//! writes the numbers to `results/BENCH_kernels.json` (published as a CI
//! artifact).
//!
//! Four measurements:
//!
//! 1. **GEMM GFLOP/s** — `naive_gemm` vs `gemm_packed` at the exact
//!    matrix shapes the vgg-small probe produces (conv layers as
//!    batched-im2col GEMMs, FC layers as NT GEMMs).
//! 2. **Per-probe wall-clock** — the legacy probe (per-item `im2col` +
//!    `naive_gemm` + fresh allocations per call, reconstructed
//!    straight-line from the network's state dict, since the old kernel
//!    no longer exists) vs `evaluate_with_scratch` on a warm arena.
//! 3. **Allocations per probe** — pool misses reported by the `Scratch`
//!    debug counters across one steady-state probe; must be zero.
//! 4. **Per-ISA dispatch sweep** — every ISA the dispatch layer knows
//!    (AVX-512, AVX2+FMA, NEON, scalar) forced in turn over the GEMM
//!    micro-kernel, the sign-plane popcount dot, and the nibble MAC.
//!    Each available ISA must reproduce forced-scalar bytes in bit-exact
//!    mode (hard gate), and on hosts with any vector ISA the popcount
//!    and nibble dots must clear 1.5x over scalar. Unavailable ISAs are
//!    recorded with `"isa_available": false` and skipped, never faked.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin kernel_speedup
//! THREADS=4 REPS=5 cargo run --release -p cbq-bench --bin kernel_speedup
//! ```
//!
//! `THREADS` defaults to 1 so the headline speedup is a single-core
//! number; it is forwarded to `CBQ_MAX_THREADS` before any kernel runs.

use cbq_data::{Subset, SyntheticImages, SyntheticSpec};
use cbq_nn::{evaluate_with_scratch, models, state_dict, Layer, Phase, StateDict};
use cbq_resilience::atomic_write_text;
use cbq_tensor::dispatch::{self, Isa, NumericsMode};
use cbq_tensor::kernels::{
    gemm_packed, naive_gemm, nibble_dot_i8, pack_bitplanes, pack_nibbles, plane_words,
    sign_plane_dot,
};
use cbq_tensor::scratch::{fresh_alloc_count, reset_fresh_alloc_count};
use cbq_tensor::{im2col, max_pool2d, ConvSpec, PoolSpec, Scratch, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

/// The legacy evaluation path, reconstructed straight-line for vgg-small
/// from a state dict: per-item im2col feeding one naive GEMM per image,
/// eval-mode batch norm from running statistics, and a fresh heap
/// allocation for every intermediate — exactly what the forward pass did
/// before the kernel rework. Its logits are the equivalence baseline.
struct LegacyVgg {
    /// (weight `[O, C, KH, KW]`) per conv layer, in order.
    conv_w: Vec<Tensor>,
    /// (gamma, beta, running_mean, running_var) per batch-norm layer.
    bn: Vec<BnParams>,
    /// (weight `[out, in]`, bias `[out]`) per FC layer, in order.
    fc: Vec<(Tensor, Tensor)>,
}

/// (gamma, beta, running_mean, running_var) for one batch-norm layer.
type BnParams = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

const BN_EPS: f32 = 1e-5;

impl LegacyVgg {
    fn from_state(dict: &StateDict) -> Self {
        let conv_w = (1..=4)
            .map(|i| dict.params[&format!("conv{i}.weight")].clone())
            .collect();
        let bn = (1..=4)
            .map(|i| {
                let stats = &dict.extra[&format!("bn{i}")];
                let c = stats.len() / 2;
                (
                    dict.params[&format!("bn{i}.gamma")].as_slice().to_vec(),
                    dict.params[&format!("bn{i}.beta")].as_slice().to_vec(),
                    stats[..c].to_vec(),
                    stats[c..].to_vec(),
                )
            })
            .collect();
        let fc = (5..=8)
            .map(|i| {
                (
                    dict.params[&format!("fc{i}.weight")].clone(),
                    dict.params[&format!("fc{i}.bias")].clone(),
                )
            })
            .collect();
        LegacyVgg { conv_w, bn, fc }
    }

    /// Per-item conv: unfold each image on its own, one naive GEMM per
    /// image, fresh buffers throughout.
    fn conv(&self, idx: usize, x: &Tensor) -> Tensor {
        let w = &self.conv_w[idx];
        let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
        let k = c * kh * kw;
        let spec = ConvSpec::new(1, 1);
        let oh = spec.out_extent(h, kh).expect("geometry");
        let ow = spec.out_extent(wd, kw).expect("geometry");
        let s = oh * ow;
        let item_len = c * h * wd;
        let mut out = vec![0.0f32; n * o * s];
        for ni in 0..n {
            let item = Tensor::from_vec(
                x.as_slice()[ni * item_len..(ni + 1) * item_len].to_vec(),
                &[c, h, wd],
            )
            .expect("item");
            let cols = im2col(&item, kh, kw, spec).expect("im2col");
            let mut y = vec![0.0f32; o * s];
            naive_gemm(o, s, k, w.as_slice(), k, 1, cols.as_slice(), s, 1, &mut y);
            out[ni * o * s..(ni + 1) * o * s].copy_from_slice(&y);
        }
        Tensor::from_vec(out, &[n, o, oh, ow]).expect("conv out")
    }

    /// Eval-mode batch norm from running statistics — the same float ops
    /// in the same order as the layer's eval path.
    fn bn(&self, idx: usize, x: &Tensor) -> Tensor {
        let (gamma, beta, mean, var) = &self.bn[idx];
        let (n, c) = (x.shape()[0], x.shape()[1]);
        let plane = x.shape()[2] * x.shape()[3];
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let src = x.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let (mu, is, gc, bc) = (mean[ci], inv_std[ci], gamma[ci], beta[ci]);
                for k in base..base + plane {
                    let v = (src[k] - mu) * is;
                    out[k] = gc * v + bc;
                }
            }
        }
        Tensor::from_vec(out, x.shape()).expect("bn out")
    }

    fn relu(&self, x: &Tensor) -> Tensor {
        x.map(|v| v.max(0.0))
    }

    /// NT GEMM against the `[out, in]` weight plus bias, one fresh output
    /// buffer per call.
    fn linear(&self, idx: usize, x: &Tensor) -> Tensor {
        let (w, b) = &self.fc[idx];
        let (m, k) = (x.shape()[0], x.shape()[1]);
        let n = w.shape()[0];
        let mut out = vec![0.0f32; m * n];
        naive_gemm(m, n, k, x.as_slice(), k, 1, w.as_slice(), 1, k, &mut out);
        let bias = b.as_slice();
        for row in out.chunks_exact_mut(n) {
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v += bv;
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("fc out")
    }

    /// Full legacy forward to logits for one image batch.
    fn forward(&self, x: &Tensor) -> Tensor {
        let pool = PoolSpec::new(2, 2);
        let mut t = self.relu(&self.bn(0, &self.conv(0, x)));
        t = self.relu(&self.bn(1, &self.conv(1, &t)));
        t = max_pool2d(&t, pool).expect("pool2").0;
        t = self.relu(&self.bn(2, &self.conv(2, &t)));
        t = self.relu(&self.bn(3, &self.conv(3, &t)));
        t = max_pool2d(&t, pool).expect("pool4").0;
        let n = t.shape()[0];
        let f = t.len() / n;
        t = t.reshape(&[n, f]).expect("flatten");
        for i in 0..self.fc.len() {
            t = self.linear(i, &t);
            if i + 1 < self.fc.len() {
                t = self.relu(&t);
            }
        }
        t
    }

    /// Legacy accuracy probe: batch, forward, first-maximum argmax.
    fn evaluate(&self, subset: &Subset, batch_size: usize) -> f32 {
        let n = subset.len();
        let item_dims: Vec<usize> = subset.images().shape()[1..].to_vec();
        let row_len: usize = item_dims.iter().product();
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let m = batch_size.min(n - start);
            let data = subset.images().as_slice()[start * row_len..(start + m) * row_len].to_vec();
            let mut dims = vec![m];
            dims.extend_from_slice(&item_dims);
            let x = Tensor::from_vec(data, &dims).expect("batch");
            let logits = self.forward(&x);
            let cols = logits.shape()[1];
            for (r, row) in logits.as_slice().chunks_exact(cols).enumerate() {
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                if best == subset.labels()[start + r] {
                    correct += 1;
                }
            }
            start += m;
        }
        correct as f32 / n as f32
    }
}

/// Times one GEMM shape through both kernels and checks bit-equality.
fn bench_gemm(
    label: &str,
    m: usize,
    n: usize,
    k: usize,
    reps: usize,
    rng: &mut StdRng,
) -> (serde_json::Value, bool) {
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen::<f32>() - 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen::<f32>() - 0.5).collect();
    let mut out_naive = vec![0.0f32; m * n];
    let mut out_packed = vec![0.0f32; m * n];
    let mut scratch = Scratch::new();
    // Warm the pack buffers so the timed runs see the steady state.
    gemm_packed(m, n, k, &a, k, 1, &b, n, 1, &mut out_packed, &mut scratch);
    let (_, naive_s) = time_best(reps, || {
        naive_gemm(m, n, k, &a, k, 1, &b, n, 1, &mut out_naive);
    });
    let (_, packed_s) = time_best(reps, || {
        gemm_packed(m, n, k, &a, k, 1, &b, n, 1, &mut out_packed, &mut scratch);
    });
    let exact = out_naive
        .iter()
        .zip(&out_packed)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    let flop = 2.0 * m as f64 * n as f64 * k as f64;
    eprintln!(
        "gemm {label} [{m}x{k}]*[{k}x{n}]: naive {:.2} GFLOP/s  packed {:.2} GFLOP/s  x{:.2}  bit_exact {exact}",
        flop / naive_s.max(1e-12) / 1e9,
        flop / packed_s.max(1e-12) / 1e9,
        naive_s / packed_s.max(1e-12),
    );
    (
        serde_json::json!({
            "label": label,
            "m": m, "n": n, "k": k,
            "naive_gflops": flop / naive_s.max(1e-12) / 1e9,
            "packed_gflops": flop / packed_s.max(1e-12) / 1e9,
            "speedup": naive_s / packed_s.max(1e-12),
            "bit_exact": exact,
        }),
        exact,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = env_usize("THREADS", 1);
    let reps = env_usize("REPS", 3);
    // Forwarded before any kernel call: the packed GEMM consults this cap,
    // so THREADS=1 (the default) makes every number below single-core.
    std::env::set_var("CBQ_MAX_THREADS", threads.to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Probe workload: vgg-small on the CIFAR-10-like synthetic set,
    // briefly trained so batch-norm statistics and probe accuracy are
    // meaningful, probing 200 validation images in batches of 100 (the
    // search defaults).
    let mut rng = StdRng::seed_from_u64(0);
    let spec = SyntheticSpec::cifar10_like();
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let cfg =
        models::VggConfig::for_input(spec.channels, spec.height, spec.width, spec.num_classes);
    let mut net = models::vgg_small(&cfg, &mut rng)?;
    cbq_nn::Trainer::new(cbq_nn::TrainerConfig::quick(1, 0.02)).fit(
        &mut net,
        data.train(),
        &mut rng,
    )?;
    let probe_set = data.val().head(200)?;
    let batch_size = 100usize;
    eprintln!(
        "workload ready: vgg_small {}x{}x{}, {} probe images, THREADS={threads}, {host_cores} host core(s)",
        spec.channels,
        spec.height,
        spec.width,
        probe_set.len()
    );

    // 1. GEMM GFLOP/s at the probe's matrix shapes.
    let s1 = spec.height * spec.width; // conv1/conv2 output positions
    let s2 = s1 / 4; // after the first 2x2 pool
    let (w1, w2) = (cfg.base_width, cfg.base_width * 2);
    let shapes = [
        ("conv1", w1, batch_size * s1, spec.channels * 9),
        ("conv2", w1, batch_size * s1, w1 * 9),
        ("conv4", w2, batch_size * s2, w2 * 9),
        ("fc5", batch_size, cfg.fc_dim, w2 * (s2 / 4)),
    ];
    let mut gemms = Vec::new();
    let mut all_exact = true;
    for &(label, m, n, k) in &shapes {
        let (j, exact) = bench_gemm(label, m, n, k, reps, &mut rng);
        gemms.push(j);
        all_exact &= exact;
    }

    // 2. Bit-for-bit probe equivalence: legacy straight-line logits vs
    // the Eval forward vs the zero-alloc Infer forward, on one batch.
    let legacy = LegacyVgg::from_state(&state_dict(&mut net));
    let item_len: usize = probe_set.images().shape()[1..].iter().product();
    let batch = Tensor::from_vec(
        probe_set.images().as_slice()[..batch_size * item_len].to_vec(),
        &[batch_size, spec.channels, spec.height, spec.width],
    )?;
    let legacy_logits = legacy.forward(&batch);
    let eval_logits = net.forward(&batch, Phase::Eval)?;
    let mut eq_scratch = Scratch::new();
    let infer_logits = net.forward_scratch(batch.clone(), Phase::Infer, &mut eq_scratch)?;
    let probe_exact = legacy_logits.len() == eval_logits.len()
        && legacy_logits
            .as_slice()
            .iter()
            .zip(eval_logits.as_slice())
            .zip(infer_logits.as_slice())
            .all(|((a, b), c)| a.to_bits() == b.to_bits() && b.to_bits() == c.to_bits());
    all_exact &= probe_exact;
    eprintln!("probe logits bit_exact (legacy == eval == infer): {probe_exact}");

    // 3. Per-probe wall-clock, legacy vs zero-alloc, plus the allocation
    // gate. One warm pass fills the arena; the counters must then stay
    // flat across a whole probe.
    let (legacy_acc, before_s) = time_best(reps, || legacy.evaluate(&probe_set, batch_size));
    let mut scratch = Scratch::new();
    let warm_acc = evaluate_with_scratch(&mut net, &probe_set, batch_size, &mut scratch)?;
    let pool_misses_before = scratch.fresh_allocs();
    reset_fresh_alloc_count();
    let steady_acc = evaluate_with_scratch(&mut net, &probe_set, batch_size, &mut scratch)?;
    let allocs_per_probe = scratch.fresh_allocs() - pool_misses_before;
    let global_allocs = fresh_alloc_count();
    let (after_acc, after_s) = time_best(reps, || {
        evaluate_with_scratch(&mut net, &probe_set, batch_size, &mut scratch).expect("probe")
    });
    let acc_match = legacy_acc == warm_acc && warm_acc == steady_acc && steady_acc == after_acc;
    all_exact &= acc_match;
    let speedup = before_s / after_s.max(1e-12);
    eprintln!(
        "probe : legacy {before_s:.4}s  zero-alloc {after_s:.4}s  speedup {speedup:.2}x  acc {after_acc:.3} (match {acc_match})"
    );
    eprintln!(
        "allocs: {allocs_per_probe} pool misses per steady-state probe ({global_allocs} across all arenas)"
    );

    // 4. Per-ISA dispatch sweep. One fixed workload — 32 packed weight
    // rows of 16384 elements against shared activations, plus the conv2
    // probe GEMM shape — with every ISA forced in turn. Forced-scalar is
    // both the byte reference and the timing baseline.
    const DOT_LEN: usize = 16384;
    const DOT_ROWS: usize = 32;
    const ACT_BITS: u32 = 4;
    let words = plane_words(DOT_LEN);
    let sign_rows: Vec<Vec<u64>> = (0..DOT_ROWS)
        .map(|_| {
            let codes: Vec<i32> = (0..DOT_LEN).map(|_| rng.gen_range(0..2)).collect();
            let mut plane = vec![0u64; words];
            pack_bitplanes(&codes, 1, &mut plane);
            plane
        })
        .collect();
    let act4: Vec<i32> = (0..DOT_LEN).map(|_| rng.gen_range(0..16)).collect();
    let mut act_planes = vec![0u64; ACT_BITS as usize * words];
    pack_bitplanes(&act4, ACT_BITS, &mut act_planes);
    let act_sum: i64 = act4.iter().map(|&c| i64::from(c)).sum();
    let nibble_rows: Vec<Vec<u8>> = (0..DOT_ROWS)
        .map(|_| {
            let levels: Vec<i32> = (0..DOT_LEN).map(|_| rng.gen_range(0..16)).collect();
            let mut packed = vec![0u8; DOT_LEN.div_ceil(2)];
            pack_nibbles(&levels, &mut packed);
            packed
        })
        .collect();
    let acts8: Vec<i32> = (0..DOT_LEN).map(|_| rng.gen_range(0..256)).collect();
    let (gm, gn, gk) = (w1, batch_size * s1, w1 * 9); // the conv2 probe shape
    let ga: Vec<f32> = (0..gm * gk).map(|_| rng.gen::<f32>() - 0.5).collect();
    let gb: Vec<f32> = (0..gk * gn).map(|_| rng.gen::<f32>() - 0.5).collect();

    let mut run_pop = || -> Vec<i64> {
        sign_rows
            .iter()
            .map(|sign| sign_plane_dot(sign, &act_planes, ACT_BITS, act_sum))
            .collect()
    };
    let mut run_nib = || -> Vec<i64> {
        nibble_rows
            .iter()
            .map(|row| nibble_dot_i8(row, 15, &acts8))
            .collect()
    };

    dispatch::set_numerics_mode(NumericsMode::BitExact);
    dispatch::force_isa(Some(Isa::Scalar));
    let mut sweep_scratch = Scratch::new();
    let mut gemm_out = vec![0.0f32; gm * gn];
    gemm_packed(
        gm,
        gn,
        gk,
        &ga,
        gk,
        1,
        &gb,
        gn,
        1,
        &mut gemm_out,
        &mut sweep_scratch,
    );
    let (pop_ref, pop_scalar_s) = time_best(reps, &mut run_pop);
    let (nib_ref, nib_scalar_s) = time_best(reps, &mut run_nib);
    let (_, gemm_scalar_s) = time_best(reps, || {
        gemm_packed(
            gm,
            gn,
            gk,
            &ga,
            gk,
            1,
            &gb,
            gn,
            1,
            &mut gemm_out,
            &mut sweep_scratch,
        );
    });
    let gemm_ref: Vec<u32> = gemm_out.iter().map(|v| v.to_bits()).collect();
    let gemm_flop = 2.0 * gm as f64 * gn as f64 * gk as f64;

    let mut isa_entries = Vec::new();
    let mut best_pop = 1.0f64;
    let mut best_nib = 1.0f64;
    let mut any_vector = false;
    for isa in Isa::ALL {
        if !isa.is_available() {
            eprintln!("isa {}: unavailable on this host", isa.name());
            isa_entries.push(serde_json::json!({
                "isa": isa.name(),
                "isa_available": false,
            }));
            continue;
        }
        if isa != Isa::Scalar {
            any_vector = true;
        }
        dispatch::force_isa(Some(isa));
        let (pop_vals, pop_s, nib_vals, nib_s, gemm_s) = if isa == Isa::Scalar {
            // The baseline above *is* the forced-scalar run; reuse it.
            (
                pop_ref.clone(),
                pop_scalar_s,
                nib_ref.clone(),
                nib_scalar_s,
                gemm_scalar_s,
            )
        } else {
            let (p, ps) = time_best(reps, &mut run_pop);
            let (nv, ns) = time_best(reps, &mut run_nib);
            let (_, gs) = time_best(reps, || {
                gemm_packed(
                    gm,
                    gn,
                    gk,
                    &ga,
                    gk,
                    1,
                    &gb,
                    gn,
                    1,
                    &mut gemm_out,
                    &mut sweep_scratch,
                );
            });
            (p, ps, nv, ns, gs)
        };
        let gemm_exact = gemm_out
            .iter()
            .zip(&gemm_ref)
            .all(|(v, &r)| v.to_bits() == r);
        let exact = pop_vals == pop_ref && nib_vals == nib_ref && gemm_exact;
        all_exact &= exact;
        // Fast mode may reassociate (FMA), so it is timed but never byte-gated.
        dispatch::set_numerics_mode(NumericsMode::Fast);
        let (_, gemm_fast_s) = time_best(reps, || {
            gemm_packed(
                gm,
                gn,
                gk,
                &ga,
                gk,
                1,
                &gb,
                gn,
                1,
                &mut gemm_out,
                &mut sweep_scratch,
            );
        });
        dispatch::set_numerics_mode(NumericsMode::BitExact);
        // Restore bit-exact bytes so the next ISA compares against the
        // scalar reference, not a leftover fast-mode result.
        gemm_packed(
            gm,
            gn,
            gk,
            &ga,
            gk,
            1,
            &gb,
            gn,
            1,
            &mut gemm_out,
            &mut sweep_scratch,
        );
        let pop_speed = pop_scalar_s / pop_s.max(1e-12);
        let nib_speed = nib_scalar_s / nib_s.max(1e-12);
        let gemm_speed = gemm_scalar_s / gemm_s.max(1e-12);
        if isa != Isa::Scalar {
            best_pop = best_pop.max(pop_speed);
            best_nib = best_nib.max(nib_speed);
        }
        eprintln!(
            "isa {}: gemm {:.2} GFLOP/s (x{gemm_speed:.2} vs scalar, fast {:.2} GFLOP/s)  popcount x{pop_speed:.2}  nibble x{nib_speed:.2}  bit_exact {exact}",
            isa.name(),
            gemm_flop / gemm_s.max(1e-12) / 1e9,
            gemm_flop / gemm_fast_s.max(1e-12) / 1e9,
        );
        isa_entries.push(serde_json::json!({
            "isa": isa.name(),
            "isa_available": true,
            "gemm_gflops": gemm_flop / gemm_s.max(1e-12) / 1e9,
            "gemm_fast_gflops": gemm_flop / gemm_fast_s.max(1e-12) / 1e9,
            "gemm_speedup_vs_scalar": gemm_speed,
            "popcount_speedup_vs_scalar": pop_speed,
            "nibble_speedup_vs_scalar": nib_speed,
            "bit_exact_vs_scalar": exact,
        }));
    }
    dispatch::force_isa(None);

    let payload = serde_json::json!({
        "workload": "vgg_small/cifar10_like probe (200 images, batch 100)",
        "threads": threads,
        "reps": reps,
        "host_cores": host_cores,
        "gemm": gemms,
        "probe": {
            "legacy_s": before_s,
            "zero_alloc_s": after_s,
            "speedup": speedup,
            "accuracy": after_acc,
            "bit_exact_logits": probe_exact,
            "accuracy_match": acc_match,
        },
        "allocations": {
            "per_steady_state_probe": allocs_per_probe,
            "global_pool_misses": global_allocs,
        },
        "isa": {
            "active": dispatch::active_isa().name(),
            "numerics": NumericsMode::BitExact.name(),
            "vector_gate_applies": any_vector,
            "sweep": isa_entries,
        },
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_kernels.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_kernels.json");

    if !all_exact {
        eprintln!("BIT-EXACTNESS VIOLATION — see results/BENCH_kernels.json");
        std::process::exit(1);
    }
    if allocs_per_probe != 0 {
        eprintln!("ALLOCATION GATE FAILED: {allocs_per_probe} pool misses in a steady-state probe");
        std::process::exit(1);
    }
    if any_vector && (best_pop < 1.5 || best_nib < 1.5) {
        eprintln!(
            "VECTOR SPEEDUP GATE FAILED: best popcount x{best_pop:.2}, best nibble x{best_nib:.2} \
             (need >= 1.5x over scalar on a vector host)"
        );
        std::process::exit(1);
    }
    Ok(())
}
