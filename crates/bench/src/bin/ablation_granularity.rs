//! Ablation: allocation granularity and allocation criterion.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin ablation_granularity
//! ```
//!
//! Same model (VGG-small), dataset (hard CIFAR-10-like), bit budget
//! (2.0 average) and refining recipe, four allocation policies:
//!
//! 1. CQ per-filter (the paper's method),
//! 2. CQ per-layer (HAQ-style granularity with CQ scores),
//! 3. greedy loss-aware per-layer (related-work criterion),
//! 4. uniform 2-bit (APN-style, no allocation at all).
//!
//! Expected: per-filter ≥ per-layer ≥ uniform; loss-aware competitive
//! but orders of magnitude more probes than CQ's one-backward scoring.

use cbq_baselines::{allocate_loss_aware, LossAwareConfig};
use cbq_bench::FigureWriter;
use cbq_core::{
    refine, score_network, search, teacher_probs, Granularity, RefineConfig, ScoreConfig,
    SearchConfig,
};
use cbq_data::SyntheticImages;
use cbq_nn::{evaluate, models, Layer, Phase, Sequential, Trainer, TrainerConfig};
use cbq_quant::{install_act_quant, install_uniform, set_act_bits, set_act_calibration, BitWidth};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prepared(
    epochs: usize,
) -> Result<(Sequential, SyntheticImages, cbq_tensor::Tensor, StdRng), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let data = SyntheticImages::generate(&cbq_bench::hard_cifar10_like(), &mut rng)?;
    let vcfg = models::VggConfig::for_input(3, 12, 12, 10);
    let mut model = models::vgg_small(&vcfg, &mut rng)?;
    Trainer::new(TrainerConfig::quick(epochs, 0.02)).fit(&mut model, data.train(), &mut rng)?;
    let teacher = teacher_probs(&mut model, data.train(), 200)?;
    install_act_quant(&mut model);
    set_act_calibration(&mut model, true);
    for batch in data.val().head(200)?.batches(200) {
        model.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut model, false);
    set_act_bits(&mut model, Some(BitWidth::new(2)?));
    Ok((model, data, teacher, rng))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut w = FigureWriter::new("ablation_granularity");
    w.comment("Granularity/criterion ablation: VGG-small, hard CIFAR10-like, 2.0 avg bits");
    w.row(&[
        "policy".into(),
        "pre_refine_pct".into(),
        "final_pct".into(),
        "avg_bits".into(),
        "probes".into(),
    ]);

    for policy in ["cq-per-filter", "cq-per-layer", "loss-aware", "uniform"] {
        let (mut model, data, teacher, mut rng) = prepared(epochs)?;
        let (avg_bits, probes) = match policy {
            "cq-per-filter" | "cq-per-layer" => {
                let scores = score_network(&mut model, data.val(), 10, &ScoreConfig::new())?;
                let mut cfg = SearchConfig::new(2.0);
                cfg.step = 0.2;
                cfg.granularity = if policy == "cq-per-layer" {
                    Granularity::PerLayer
                } else {
                    Granularity::PerFilter
                };
                let out = search(&mut model, &scores, data.val(), &cfg)?;
                (
                    out.final_avg_bits,
                    out.trace.iter().filter(|s| !s.squeeze).count(),
                )
            }
            "loss-aware" => {
                let out = allocate_loss_aware(&mut model, data.val(), &LossAwareConfig::new(2.0))?;
                (out.final_avg_bits, out.probes)
            }
            _ => {
                let arr = install_uniform(&mut model, BitWidth::new(2)?);
                (arr.average_bits(), 0)
            }
        };
        let pre = evaluate(&mut model, data.test(), 200)?;
        refine(
            &mut model,
            data.train(),
            &teacher,
            &RefineConfig::quick(epochs * 2, 0.004),
            &mut rng,
        )?;
        let fin = evaluate(&mut model, data.test(), 200)?;
        w.row(&[
            policy.into(),
            format!("{:.2}", 100.0 * pre),
            format!("{:.2}", 100.0 * fin),
            format!("{avg_bits:.3}"),
            probes.to_string(),
        ]);
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
