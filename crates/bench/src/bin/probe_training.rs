//! Quick sanity probe: trains the three paper models on the synthetic
//! datasets and prints accuracy + wall-clock, to pick harness scales.

use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{evaluate, models, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0);
    let spec = SyntheticSpec::cifar10_like();
    let t0 = Instant::now();
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    eprintln!(
        "dataset: {} train in {:?}",
        data.train().len(),
        t0.elapsed()
    );

    // VGG-small
    let cfg = models::VggConfig::for_input(3, 12, 12, 10);
    let mut vgg = models::vgg_small(&cfg, &mut rng)?;
    let t = Instant::now();
    let epochs = std::env::var("EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let tc = TrainerConfig {
        verbose: true,
        ..TrainerConfig::quick(epochs, 0.02)
    };
    Trainer::new(tc).fit(&mut vgg, data.train(), &mut rng)?;
    let acc = evaluate(&mut vgg, data.test(), 200)?;
    eprintln!(
        "vgg-small: {:?} for {epochs} epochs, test acc {:.2}%",
        t.elapsed(),
        100.0 * acc
    );

    // ResNet-20-x1
    let mut rn = models::resnet20(&models::ResNetConfig::resnet20(3, 1, 10), &mut rng)?;
    let t = Instant::now();
    let tc = TrainerConfig {
        verbose: true,
        ..TrainerConfig::quick(epochs, 0.1)
    };
    Trainer::new(tc).fit(&mut rn, data.train(), &mut rng)?;
    let acc = evaluate(&mut rn, data.test(), 200)?;
    eprintln!(
        "resnet20-x1: {:?} for {epochs} epochs, test acc {:.2}%",
        t.elapsed(),
        100.0 * acc
    );
    Ok(())
}
