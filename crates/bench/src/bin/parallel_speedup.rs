//! Measures serial vs parallel wall-clock for the three parallelized
//! phases — importance scoring, threshold-search probes, and sharded
//! gradient accumulation — on the default bench workload, verifies that
//! parallel results are bit-identical to serial, and writes the numbers
//! to `results/BENCH_parallel.json` (the CI workflow publishes that file
//! as an artifact).
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin parallel_speedup
//! THREADS=8 REPS=5 cargo run --release -p cbq-bench --bin parallel_speedup
//! ```

use cbq_core::{
    score_network_with, search_with, Parallelism, ScoreConfig, SearchConfig, Telemetry,
};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{models, Layer, Trainer, TrainerConfig};
use cbq_resilience::atomic_write_text;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = env_usize("THREADS", 4);
    let reps = env_usize("REPS", 3);
    let par = Parallelism::new(threads);
    let serial = Parallelism::serial();
    let tel = Telemetry::disabled();

    // Default bench workload: VGG-small on the CIFAR-10-like synthetic
    // set, briefly pretrained so scores and probes are meaningful.
    let mut rng = StdRng::seed_from_u64(0);
    let spec = SyntheticSpec::cifar10_like();
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let cfg =
        models::VggConfig::for_input(spec.channels, spec.height, spec.width, spec.num_classes);
    let mut net = models::vgg_small(&cfg, &mut rng)?;
    let tc = TrainerConfig::quick(2, 0.02);
    Trainer::new(tc.clone()).fit(&mut net, data.train(), &mut rng)?;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "workload ready: vgg_small, {} train images, {host_cores} host core(s)",
        data.train().len()
    );

    // Phase 1: importance scoring.
    let score_cfg = ScoreConfig::new();
    let (scores_serial, score_serial_s) = time_best(reps, || {
        score_network_with(
            &mut net,
            data.val(),
            spec.num_classes,
            &score_cfg,
            &tel,
            serial,
        )
        .expect("serial scoring")
    });
    let (scores_par, score_par_s) = time_best(reps, || {
        score_network_with(
            &mut net,
            data.val(),
            spec.num_classes,
            &score_cfg,
            &tel,
            par,
        )
        .expect("parallel scoring")
    });
    let score_exact = scores_serial == scores_par;
    eprintln!(
        "score : serial {score_serial_s:.3}s  x{threads} {score_par_s:.3}s  speedup {:.2}x  bit_exact {score_exact}",
        score_serial_s / score_par_s.max(1e-12)
    );

    // Phase 2: threshold-search probes. Each run installs transforms on a
    // fresh clone so timings never see a previously quantized network.
    let mut search_cfg = SearchConfig::new(2.0);
    search_cfg.step = 0.2;
    let (outcome_serial, search_serial_s) = time_best(reps, || {
        let mut probe_net = net.clone();
        search_with(
            &mut probe_net,
            &scores_serial,
            data.val(),
            &search_cfg,
            &tel,
            serial,
        )
        .expect("serial search")
    });
    let (outcome_par, search_par_s) = time_best(reps, || {
        let mut probe_net = net.clone();
        search_with(
            &mut probe_net,
            &scores_serial,
            data.val(),
            &search_cfg,
            &tel,
            par,
        )
        .expect("parallel search")
    });
    let search_exact = outcome_serial == outcome_par;
    eprintln!(
        "search: serial {search_serial_s:.3}s  x{threads} {search_par_s:.3}s  speedup {:.2}x  bit_exact {search_exact} ({} probes, {} cache hits)",
        search_serial_s / search_par_s.max(1e-12),
        outcome_par.probe_count,
        outcome_par.probe_cache_hits
    );

    // Phase 3: sharded gradient accumulation (one refine-scale epoch).
    // Shard count is fixed; only the worker budget varies, so the trained
    // weights must match bit for bit.
    let shard_tc = TrainerConfig {
        epochs: 1,
        grad_shards: threads,
        ..tc
    };
    let train_epoch = |budget: Parallelism| -> (Vec<f32>, f64) {
        let mut trainee = net.clone();
        let mut train_rng = StdRng::seed_from_u64(7);
        let t = Instant::now();
        Trainer::new(shard_tc.clone())
            .with_parallelism(budget)
            .fit(&mut trainee, data.train(), &mut train_rng)
            .expect("sharded epoch");
        let secs = t.elapsed().as_secs_f64();
        let mut weights = Vec::new();
        trainee.visit_params(&mut |p| weights.extend_from_slice(p.value.as_slice()));
        (weights, secs)
    };
    let (w_serial, train_serial_s) = train_epoch(serial);
    let (w_par, train_par_s) = train_epoch(par);
    let train_exact = w_serial.len() == w_par.len()
        && w_serial
            .iter()
            .zip(&w_par)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    eprintln!(
        "train : serial {train_serial_s:.3}s  x{threads} {train_par_s:.3}s  speedup {:.2}x  bit_exact {train_exact}",
        train_serial_s / train_par_s.max(1e-12)
    );

    let payload = serde_json::json!({
        "workload": "vgg_small/cifar10_like",
        "threads": threads,
        "reps": reps,
        "host_cores": host_cores,
        "phases": [
            {
                "name": "score",
                "serial_s": score_serial_s,
                "parallel_s": score_par_s,
                "speedup": score_serial_s / score_par_s.max(1e-12),
                "bit_exact": score_exact,
            },
            {
                "name": "search",
                "serial_s": search_serial_s,
                "parallel_s": search_par_s,
                "speedup": search_serial_s / search_par_s.max(1e-12),
                "bit_exact": search_exact,
            },
            {
                "name": "train_grad_shards",
                "serial_s": train_serial_s,
                "parallel_s": train_par_s,
                "speedup": train_serial_s / train_par_s.max(1e-12),
                "bit_exact": train_exact,
            },
        ],
    });
    std::fs::create_dir_all("results")?;
    atomic_write_text(
        "results/BENCH_parallel.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_parallel.json");

    if !(score_exact && search_exact && train_exact) {
        eprintln!("BIT-EXACTNESS VIOLATION — see results/BENCH_parallel.json");
        std::process::exit(1);
    }
    Ok(())
}
