//! Figure 7: percentage of filters at each bit-width for every network at
//! the 2.0/2.0, 3.0/3.0 and 4.0/4.0 settings.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig7_bitwidth_percentages
//! ```
//!
//! Shares its runs with Figure 4 through the results cache. Expected
//! shape (paper): VGG-small accumulates the most 0-bit (pruned) filters
//! (mostly in the FC layers); the ResNets keep more filters at 1–2 bits;
//! the 4.0/4.0 settings keep more filters at high widths.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let grid = [
        (ModelKind::VggSmall, DatasetKind::C10Like),
        (ModelKind::ResNet20 { expand: 1 }, DatasetKind::C10Like),
        (ModelKind::VggSmall, DatasetKind::C100Like),
        (ModelKind::ResNet20 { expand: 5 }, DatasetKind::C100Like),
    ];
    let settings = [2.0f32, 3.0, 4.0];
    let mut w = FigureWriter::new("fig7_bitwidth_percentages");
    w.comment("Figure 7: percentage of filters per bit-width (CQ arrangements)");
    w.row(&[
        "model".into(),
        "dataset".into(),
        "setting".into(),
        "pct_0b".into(),
        "pct_1b".into(),
        "pct_2b".into(),
        "pct_3b".into(),
        "pct_4b".into(),
    ]);
    for (model, dataset) in grid {
        for &bits in &settings {
            let spec = RunSpec {
                model,
                dataset,
                method: Method::Cq,
                weight_bits: bits,
                act_bits: bits as u8,
                seed: 0,
            };
            let s = run_spec(&spec, scale)?;
            let mut total = [0usize; 9];
            for hist in &s.unit_histograms {
                for (t, &c) in total.iter_mut().zip(hist) {
                    *t += c;
                }
            }
            let sum: usize = total.iter().sum();
            let mut row = vec![
                model.label(),
                dataset.label().into(),
                format!("{bits:.1}/{bits:.1}"),
            ];
            for &count in &total[..5] {
                row.push(format!("{:.1}", 100.0 * count as f64 / sum.max(1) as f64));
            }
            w.row(&row);
        }
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
