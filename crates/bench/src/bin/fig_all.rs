//! Convenience runner: regenerates every paper figure and ablation in
//! sequence (cache-aware, so already-computed runs are free).
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig_all
//! ```

use std::process::Command;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bins = [
        "fig4_cq_vs_apn",
        "fig5_cq_vs_wrapnet",
        "fig2_score_histograms",
        "fig3_search_trace",
        "fig6_threshold_distribution",
        "fig7_bitwidth_percentages",
        "ablation_scoring",
        "ablation_kd",
        "ablation_granularity",
    ];
    let exe_dir = std::env::current_exe()?
        .parent()
        .ok_or("executable has no parent directory")?
        .to_path_buf();
    for bin in bins {
        eprintln!("== {bin} ==");
        let status = Command::new(exe_dir.join(bin)).status()?;
        if !status.success() {
            return Err(format!("{bin} failed with {status}").into());
        }
    }
    eprintln!("all figures regenerated; CSVs in results/");
    Ok(())
}
