//! Ablation: does the *class-based* criterion matter, or would any
//! per-filter ranking do?
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin ablation_scoring
//! ```
//!
//! Runs the identical search + refine budget on VGG-small / CIFAR-10 at
//! 2.0/2.0 with three score sources: the paper's class-based scores,
//! per-filter weight-magnitude scores, and random scores. Expected:
//! class-based ≥ magnitude ≥ random on final accuracy.

use cbq_bench::FigureWriter;
use cbq_core::{
    refine, score_network, search, teacher_probs, RefineConfig, ScoreConfig, SearchConfig,
};
use cbq_data::SyntheticImages;
use cbq_nn::{evaluate, models, Layer, Phase, Trainer, TrainerConfig};
use cbq_quant::{install_act_quant, set_act_bits, set_act_calibration, BitWidth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut w = FigureWriter::new("ablation_scoring");
    w.comment("Scoring ablation: VGG-small / CIFAR10-like at 2.0/2.0, same search+refine budget");
    w.row(&[
        "score_source".into(),
        "pre_refine_pct".into(),
        "final_pct".into(),
        "avg_bits".into(),
    ]);

    for source in ["class-based", "magnitude", "random"] {
        let mut rng = StdRng::seed_from_u64(5);
        let data = SyntheticImages::generate(&cbq_bench::hard_cifar10_like(), &mut rng)?;
        let vcfg = models::VggConfig::for_input(3, 12, 12, 10);
        let mut model = models::vgg_small(&vcfg, &mut rng)?;
        Trainer::new(TrainerConfig::quick(epochs, 0.02)).fit(&mut model, data.train(), &mut rng)?;
        let teacher = teacher_probs(&mut model, data.train(), 200)?;

        // Always compute the real scores (for unit structure), then
        // overwrite phi according to the ablated source.
        let mut scores = score_network(&mut model, data.val(), 10, &ScoreConfig::new())?;
        match source {
            "class-based" => {}
            "magnitude" => {
                // Rescale per-filter |w|max into [0, M] so thresholds and
                // step sizes stay comparable.
                let mut mags: Vec<Vec<f32>> = Vec::new();
                model.visit_layers_mut(&mut |l| {
                    if l.quantizable() {
                        if let Some(m) = l.weight_channel_max_abs() {
                            mags.push(m);
                        }
                    }
                });
                let global_max = mags
                    .iter()
                    .flat_map(|m| m.iter())
                    .fold(0.0f32, |a, &b| a.max(b))
                    .max(f32::MIN_POSITIVE);
                for (unit, m) in scores.units.iter_mut().zip(mags) {
                    unit.phi = m.iter().map(|&v| 10.0 * (v / global_max) as f64).collect();
                }
            }
            "random" => {
                for unit in scores.units.iter_mut() {
                    unit.phi = (0..unit.out_channels)
                        .map(|_| rng.gen_range(0.0..10.0))
                        .collect();
                }
            }
            _ => unreachable!(),
        }

        install_act_quant(&mut model);
        set_act_calibration(&mut model, true);
        for batch in data.val().head(200)?.batches(200) {
            model.forward(&batch.images, Phase::Eval)?;
        }
        set_act_calibration(&mut model, false);
        set_act_bits(&mut model, Some(BitWidth::new(2)?));

        let mut scfg = SearchConfig::new(2.0);
        scfg.step = 0.2;
        let outcome = search(&mut model, &scores, data.val(), &scfg)?;
        let pre = evaluate(&mut model, data.test(), 200)?;
        refine(
            &mut model,
            data.train(),
            &teacher,
            &RefineConfig::quick(epochs * 2, 0.004),
            &mut rng,
        )?;
        let fin = evaluate(&mut model, data.test(), 200)?;
        w.row(&[
            source.into(),
            format!("{:.2}", 100.0 * pre),
            format!("{:.2}", 100.0 * fin),
            format!("{:.3}", outcome.final_avg_bits),
        ]);
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
