//! End-to-end CQ pipeline probe on VGG-small / synthetic CIFAR-10 at the
//! paper's 2.0/2.0 setting. Prints every phase's numbers.

use cbq_core::{CqConfig, CqPipeline, RefineConfig};
use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0);
    let data = SyntheticImages::generate(&SyntheticSpec::cifar10_like(), &mut rng)?;
    let cfg = models::VggConfig::for_input(3, 12, 12, 10);
    let model = models::vgg_small(&cfg, &mut rng)?;
    let mut config = CqConfig::new(2.0, 2.0);
    config.pretrain = Some(TrainerConfig::quick(4, 0.02));
    config.refine = RefineConfig::quick(4, 0.004);
    config.search.step = 0.2;
    let t = Instant::now();
    let report = CqPipeline::new(config).run(model, &data, &mut rng)?;
    println!("total time {:?}", t.elapsed());
    println!("fp acc          {:.2}%", 100.0 * report.fp_accuracy);
    println!("pre-refine acc  {:.2}%", 100.0 * report.pre_refine_accuracy);
    println!("final acc       {:.2}%", 100.0 * report.final_accuracy);
    println!("avg bits        {:.3}", report.search.final_avg_bits);
    println!("thresholds      {:?}", report.search.thresholds);
    println!("search probes   {}", report.search.trace.len());
    println!("compression     {:.2}x", report.size.compression_ratio());
    for u in report.search.arrangement.units() {
        let h = report.search.arrangement.unit_histogram(&u.name)?;
        println!("  {:<8} {:?}", u.name, h.counts);
    }
    Ok(())
}
