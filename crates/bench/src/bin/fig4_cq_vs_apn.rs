//! Figure 4: accuracy of CQ vs APN vs full precision at 2.0/2.0, 3.0/3.0
//! and 4.0/4.0 weight/activation settings, on VGG-small and ResNet-20-x1
//! (CIFAR-10) and VGG-small and ResNet-20-x5 (CIFAR-100).
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig4_cq_vs_apn
//! ```
//!
//! Expected shape (paper): CQ ≥ APN at every setting, with the largest
//! gaps at 2.0/2.0 and on the wider ResNet-20-x5/CIFAR-100 pairing;
//! 4.0/4.0 settings approach the full-precision bars.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let grid = [
        (ModelKind::VggSmall, DatasetKind::C10Like),
        (ModelKind::ResNet20 { expand: 1 }, DatasetKind::C10Like),
        (ModelKind::VggSmall, DatasetKind::C100Like),
        (ModelKind::ResNet20 { expand: 5 }, DatasetKind::C100Like),
    ];
    let settings = [2.0f32, 3.0, 4.0];
    let mut w = FigureWriter::new("fig4_cq_vs_apn");
    w.comment("Figure 4: CQ vs APN vs full precision (accuracy %, weight/act bits equal)");
    w.row(&[
        "model".into(),
        "dataset".into(),
        "setting".into(),
        "method".into(),
        "accuracy_pct".into(),
        "avg_bits".into(),
    ]);
    for (model, dataset) in grid {
        for &bits in &settings {
            let mut fp_logged = false;
            for method in [Method::Cq, Method::Apn] {
                let spec = RunSpec {
                    model,
                    dataset,
                    method,
                    weight_bits: bits,
                    act_bits: bits as u8,
                    seed: 0,
                };
                let s = run_spec(&spec, scale)?;
                if !fp_logged {
                    w.row(&[
                        model.label(),
                        dataset.label().into(),
                        format!("{bits:.1}/{bits:.1}"),
                        "FP32".into(),
                        format!("{:.2}", 100.0 * s.fp_accuracy),
                        "32.00".into(),
                    ]);
                    fp_logged = true;
                }
                w.row(&[
                    model.label(),
                    dataset.label().into(),
                    format!("{bits:.1}/{bits:.1}"),
                    method.label().into(),
                    format!("{:.2}", 100.0 * s.final_accuracy),
                    format!("{:.2}", s.avg_bits),
                ]);
            }
        }
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
