//! Figure 3: the search process — sorted filter importance curves with
//! the thresholds moving upward until each accuracy target is violated.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig3_search_trace
//! ```
//!
//! Output: (a) the sorted importance-score curve per layer (the blue
//! curves of Fig. 3) and (b) the probe trace — every threshold position
//! visited, the probe accuracy there, and the average bit-width. Expected
//! shape: accuracy decreases as each threshold climbs; each `p_k` freezes
//! when accuracy crosses its target `T_k = T_{k-1} * 0.8` from `T_1 = 50%`.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let spec = RunSpec {
        model: ModelKind::VggSmall,
        dataset: DatasetKind::C10Like,
        method: Method::Cq,
        weight_bits: 2.0,
        act_bits: 2,
        seed: 0,
    };
    let summary = run_spec(&spec, scale)?;

    let mut w = FigureWriter::new("fig3_search_trace");
    w.comment("Figure 3 (a): sorted filter importance scores per layer");
    w.row(&["layer".into(), "sorted_index".into(), "score".into()]);
    for (name, phi) in summary.unit_names.iter().zip(&summary.sorted_phi) {
        for (i, &p) in phi.iter().enumerate() {
            w.row(&[name.clone(), i.to_string(), format!("{p:.4}")]);
        }
    }
    w.comment("Figure 3 (b): threshold trajectory during the search");
    w.comment("phase: probe = accuracy-checked move, squeeze = phase-2 bit squeeze");
    w.row(&[
        "step".into(),
        "threshold_k".into(),
        "position".into(),
        "accuracy".into(),
        "avg_bits".into(),
        "phase".into(),
    ]);
    for (i, s) in summary.trace.iter().enumerate() {
        w.row(&[
            i.to_string(),
            format!("p{}", s.threshold_index + 1),
            format!("{:.2}", s.threshold),
            if s.squeeze {
                "-".into()
            } else {
                format!("{:.4}", s.accuracy)
            },
            format!("{:.4}", s.avg_bits),
            if s.squeeze {
                "squeeze".into()
            } else {
                "probe".into()
            },
        ]);
    }
    // Per-threshold digest, precomputed by the search itself
    // (SearchOutcome::threshold_summaries) rather than re-derived here.
    w.comment(format!(
        "Figure 3 (c): per-threshold summary ({} accuracy probes total)",
        summary.probe_count
    ));
    w.row(&[
        "threshold_k".into(),
        "probes".into(),
        "squeeze_moves".into(),
        "final_position".into(),
        "last_probe_accuracy".into(),
    ]);
    for s in &summary.threshold_summaries {
        w.row(&[
            format!("p{}", s.threshold_index + 1),
            s.probes.to_string(),
            s.squeeze_moves.to_string(),
            format!("{:.2}", s.final_position),
            if s.last_probe_accuracy < 0.0 {
                "-".into()
            } else {
                format!("{:.4}", s.last_probe_accuracy)
            },
        ]);
    }
    w.comment(format!(
        "final thresholds: {:?}, final avg bits {:.3}",
        summary
            .thresholds
            .iter()
            .map(|t| format!("{t:.2}"))
            .collect::<Vec<_>>(),
        summary.avg_bits
    ));
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
