//! Drift drill for the `cbq-serve` observability layer: a synthetic
//! traffic generator with a scheduled class-mix shift drives an observed
//! server on a manual clock, and the run gates on the drift detector's
//! two promises — **zero false positives** while the mix is stationary,
//! and the shift **flagged in its very first window** — plus the
//! byte-identity contract: traces and metrics snapshots identical across
//! worker counts. Results land in `results/BENCH_serve_drift.json`.
//!
//! Traffic is pooled by *offline-predicted* class, so each window's
//! observed mix equals the planned mix exactly (largest-remainder
//! apportionment, no sampling noise) and the stationary gate is robust
//! rather than statistical.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin serve_drift
//! STATIONARY=8 SHIFTED=2 WINDOW=64 cargo run --release -p cbq-bench --bin serve_drift
//! ```

use cbq_data::{SyntheticImages, SyntheticSpec};
use cbq_nn::{state_dict, Trainer, TrainerConfig};
use cbq_resilience::atomic_write_text;
use cbq_serve::{
    achieved_mix, offline_logits, ArchSpec, Backend, BatchPolicy, ManualClock, ModelArtifact,
    ModelRegistry, ObserveConfig, ServeStats, Server, ServerConfig, TrafficGenerator,
};
use cbq_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Labeled samples pooled by the class the model predicts for them.
type PredictedPools = Vec<(Vec<f32>, usize)>;

/// Trains a float MLP and pools every test sample under the class the
/// model itself predicts for it.
fn build_pools(
    seed: u64,
) -> Result<(ModelArtifact, PredictedPools, usize), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 24, 16, spec.num_classes]);
    let mut net = arch.build_init(&mut rng)?;
    Trainer::new(TrainerConfig::quick(2, 0.1)).fit(&mut net, data.train(), &mut rng)?;
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state: state_dict(&mut net),
        quant: None,
        baseline_mix: None,
        packed: None,
    };
    let registry = ModelRegistry::new();
    let handle = registry.load("drift", &artifact, Backend::Float)?;
    let model = registry.get(&handle)?;
    let test = data.test();
    let item_len: usize = artifact.input_shape.iter().product();
    let images = test.images().as_slice();
    let mut pooled = Vec::new();
    for j in 0..test.len() {
        let sample = images[j * item_len..(j + 1) * item_len].to_vec();
        let logits = offline_logits(&model, &sample)?;
        let predicted = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap();
        pooled.push((sample, predicted));
    }
    for c in 0..spec.num_classes {
        if !pooled.iter().any(|(_, p)| *p == c) {
            return Err(format!("fixture predicts no samples as class {c}; change seed").into());
        }
    }
    Ok((artifact, pooled, spec.num_classes))
}

/// Runs the full traffic plan against an observed server and returns the
/// drained stats plus the trace / snapshot documents.
fn run_plan(
    workers: usize,
    artifact: &ModelArtifact,
    plan: &[Vec<(Vec<f32>, usize)>],
    baseline: &[f64],
    window: u64,
    out_dir: &std::path::Path,
) -> Result<(ServeStats, String, String), Box<dyn std::error::Error>> {
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("drift", artifact, Backend::Float)?;
    let clock = ManualClock::new();
    let trace_path = out_dir.join(format!("drift-trace-{workers}.jsonl"));
    let metrics_path = out_dir.join(format!("drift-metrics-{workers}.json"));
    let server = Server::start_observed(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                max_batch: 1,
                max_wait: Duration::from_secs(3600),
                queue_capacity: 1 << 16,
            },
            workers,
        },
        Arc::new(clock.clone()),
        Telemetry::disabled(),
        ObserveConfig {
            baseline: Some(baseline.to_vec()),
            window,
            trace: true,
            trace_path: Some(trace_path.clone()),
            metrics_path: Some(metrics_path.clone()),
            ..ObserveConfig::for_classes(4)
        },
    )?;
    let mut id = 0u64;
    for w in plan {
        let tickets: Vec<_> = w
            .iter()
            .map(|(sample, label)| {
                id += 1;
                server.submit_request(id, &handle, sample.clone(), Some(*label))
            })
            .collect::<cbq_serve::Result<_>>()?;
        for ticket in tickets {
            ticket.wait()?;
        }
        clock.advance(Duration::from_millis(1));
    }
    let stats = server.shutdown();
    let trace = std::fs::read_to_string(&trace_path)?;
    let snapshot = std::fs::read_to_string(&metrics_path)?;
    Ok((stats, trace, snapshot))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stationary = env_usize("STATIONARY", 6);
    let shifted = env_usize("SHIFTED", 2).max(1);
    let window = env_usize("WINDOW", 32).max(1) as u64;
    let worker_counts = [1usize, env_usize("WORKERS", 4).max(1)];

    let (artifact, pooled, classes) = build_pools(91)?;
    let mut gen = TrafficGenerator::new(&pooled, classes)?;
    let uniform = vec![1.0; classes];
    let mut shift_mix = vec![0.125; classes];
    shift_mix[0] = 1.0; // class 0 surges, the rest thin out
    let mut plan = Vec::new();
    for _ in 0..stationary {
        plan.push(gen.window(&uniform, window as usize));
    }
    for _ in 0..shifted {
        plan.push(gen.window(&shift_mix, window as usize));
    }
    let baseline = achieved_mix(&uniform, window as usize);

    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir)?;

    let mut runs = Vec::new();
    for &workers in &worker_counts {
        runs.push((
            workers,
            run_plan(workers, &artifact, &plan, &baseline, window, out_dir)?,
        ));
    }
    let (_, (stats, trace0, snapshot0)) = &runs[0];

    // Gate 1: deterministic artifacts across worker counts.
    let bytes_identical = runs
        .iter()
        .all(|(_, (s, t, m))| s.traces == stats.traces && t == trace0 && m == snapshot0);

    // Gate 2: no stationary window flags; Gate 3: the first shifted
    // window flags immediately.
    let stationary_flags = stats
        .drift
        .iter()
        .filter(|d| d.window < stationary as u64 && d.flagged)
        .count();
    let first_flagged = stats.drift.iter().find(|d| d.flagged).map(|d| d.window);
    let flagged_on_time = first_flagged == Some(stationary as u64);

    for run in &runs {
        let (workers, (s, _, _)) = run;
        let flags = s.drift.iter().filter(|d| d.flagged).count();
        eprintln!(
            "{workers} worker(s): {} windows sealed, {} drift checks, {} flagged, \
             {} traces, {} snapshot writes",
            s.windows.len(),
            s.drift.len(),
            flags,
            s.traces.len(),
            s.snapshot_writes,
        );
    }
    eprintln!(
        "drill : {stationary} stationary + {shifted} shifted windows of {window} -> \
         stationary flags {stationary_flags}, first flag at window {first_flagged:?}, \
         bytes identical across workers: {bytes_identical}"
    );

    let payload = serde_json::json!({
        "workload": "predicted-class pooled traffic, uniform mix -> class-0 surge",
        "window": window,
        "stationary_windows": stationary,
        "shifted_windows": shifted,
        "worker_counts": worker_counts,
        "baseline": baseline,
        "drift": stats.drift.iter().map(|d| serde_json::json!({
            "window": d.window,
            "samples": d.samples,
            "l1": d.l1,
            "chi2": d.chi2,
            "skipped": d.skipped,
            "flagged": d.flagged,
        })).collect::<Vec<_>>(),
        "stationary_false_positives": stationary_flags,
        "first_flagged_window": first_flagged.map(|w| w as i64).unwrap_or(-1),
        "trace_lines": stats.traces.len(),
        "gates": {
            "bytes_identical_across_workers": bytes_identical,
            "zero_stationary_false_positives": stationary_flags == 0,
            "shift_flagged_in_first_window": flagged_on_time,
        },
    });
    atomic_write_text(
        "results/BENCH_serve_drift.json",
        &serde_json::to_string_pretty(&payload)?,
    )?;
    eprintln!("wrote results/BENCH_serve_drift.json");

    if !bytes_identical {
        eprintln!("DETERMINISM GATE FAILED: observability bytes diverged across worker counts");
        std::process::exit(1);
    }
    if stationary_flags != 0 {
        eprintln!("FALSE-POSITIVE GATE FAILED: {stationary_flags} stationary windows flagged");
        std::process::exit(1);
    }
    if !flagged_on_time {
        eprintln!(
            "DETECTION GATE FAILED: first flag at {first_flagged:?}, expected window {stationary}"
        );
        std::process::exit(1);
    }
    Ok(())
}
