//! Figure 5: accuracy of CQ vs WrapNet on ResNet-20-x1 / CIFAR-10 at the
//! 1.0/3.0, 1.0/7.0, 2.0/4.0 and 2.0/7.0 weight/activation settings.
//!
//! ```sh
//! cargo run --release -p cbq-bench --bin fig5_cq_vs_wrapnet
//! ```
//!
//! Expected shape (paper): CQ above WN at every setting, with the largest
//! gap around 2.0/4.0, and CQ more stable as the activation width drops.

use cbq_bench::{run_spec, scale_from_env, DatasetKind, FigureWriter, Method, ModelKind, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let settings: [(f32, u8); 4] = [(1.0, 3), (1.0, 7), (2.0, 4), (2.0, 7)];
    let mut w = FigureWriter::new("fig5_cq_vs_wrapnet");
    w.comment("Figure 5: CQ vs WrapNet on ResNet-20-x1 / CIFAR10 (accuracy %)");
    w.comment("WN simulated with an 8-bit wraparound accumulator (see DESIGN.md)");
    w.row(&[
        "setting".into(),
        "method".into(),
        "accuracy_pct".into(),
        "avg_bits".into(),
    ]);
    for (wbits, abits) in settings {
        for method in [Method::Cq, Method::WrapNet { acc_bits: 8 }] {
            let spec = RunSpec {
                model: ModelKind::ResNet20 { expand: 1 },
                dataset: DatasetKind::C10Like,
                method,
                weight_bits: wbits,
                act_bits: abits,
                seed: 0,
            };
            let s = run_spec(&spec, scale)?;
            w.row(&[
                format!("{wbits:.1}/{abits}.0"),
                method.label().into(),
                format!("{:.2}", 100.0 * s.final_accuracy),
                format!("{:.2}", s.avg_bits),
            ]);
        }
    }
    let path = w.save()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
