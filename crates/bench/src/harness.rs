//! Scale selection and result emission for the figure harness.

use cbq_resilience::atomic_write_text;
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// CPU-minutes scale: reduced epochs and dataset sizes. Shapes hold;
    /// absolute accuracies sit below the paper's GPU-scale numbers.
    Small,
    /// Longer training closer to the paper's protocol (tens of minutes).
    Full,
}

impl ExperimentScale {
    /// Multiplies an epoch count by the scale factor.
    pub fn epochs(&self, small: usize, full: usize) -> usize {
        match self {
            ExperimentScale::Small => small,
            ExperimentScale::Full => full,
        }
    }
}

/// Reads `CBQ_SCALE` (`small`/`full`, default `small`).
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("CBQ_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "full" => ExperimentScale::Full,
        _ => ExperimentScale::Small,
    }
}

/// Writes figure data both to stdout and to `results/<name>.csv`.
#[derive(Debug)]
pub struct FigureWriter {
    name: String,
    lines: Vec<String>,
}

impl FigureWriter {
    /// Creates a writer for figure `name` (e.g. `"fig4_cq_vs_apn"`).
    pub fn new(name: impl Into<String>) -> Self {
        FigureWriter {
            name: name.into(),
            lines: Vec::new(),
        }
    }

    /// Emits a header / comment line.
    pub fn comment(&mut self, text: impl Display) {
        let line = format!("# {text}");
        println!("{line}");
        self.lines.push(line);
    }

    /// Emits one CSV data row.
    pub fn row(&mut self, cells: &[String]) {
        let line = cells.join(",");
        println!("{line}");
        self.lines.push(line);
    }

    /// Convenience: emits a row from display-able cells.
    pub fn row_display(&mut self, cells: &[&dyn Display]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings);
    }

    /// Flushes the collected lines to `results/<name>.csv` via an
    /// atomic temp-file + rename, so a crash mid-save never leaves a
    /// half-written figure behind a stale-looking mtime.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut body = self.lines.join("\n");
        body.push('\n');
        atomic_write_text(&path, &body).map_err(std::io::Error::other)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_epochs() {
        assert_eq!(ExperimentScale::Small.epochs(5, 50), 5);
        assert_eq!(ExperimentScale::Full.epochs(5, 50), 50);
    }

    #[test]
    fn writer_accumulates() {
        let mut w = FigureWriter::new("test_fig");
        w.comment("hello");
        w.row(&["a".into(), "b".into()]);
        assert_eq!(w.lines.len(), 2);
        assert!(w.lines[0].starts_with('#'));
        assert_eq!(w.lines[1], "a,b");
    }
}
