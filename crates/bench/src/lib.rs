#![warn(missing_docs)]

//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion micro-benchmarks.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper; run
//! them with `cargo run -p cbq-bench --release --bin <name>`. The
//! `CBQ_SCALE` environment variable selects the experiment scale:
//! `small` (default, minutes) or `full` (longer training, tighter to the
//! paper's protocol).

pub mod experiments;
pub mod harness;

pub use experiments::{
    hard_cifar100_like, hard_cifar10_like, run_spec, DatasetKind, Method, ModelKind, RunSpec,
    RunSummary,
};
pub use harness::{scale_from_env, ExperimentScale, FigureWriter};
