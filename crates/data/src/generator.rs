//! Feature-template machinery behind [`SyntheticImages`].
//!
//! A *feature template* is a smooth spatial pattern (a sum of a few random
//! 2-D sinusoids) occupying the full image. Each class owns
//! `exclusive_features` templates nobody else uses and borrows
//! `shared_features` templates from a common pool, so classes overlap
//! partially — the structure Figure 1 of the paper motivates: some neurons
//! end up serving one class, some serve many.
//!
//! [`SyntheticImages`]: crate::SyntheticImages

use crate::{DataError, SyntheticSpec};
use cbq_tensor::Tensor;
use rand::Rng;

/// The template pool for one dataset: per-class exclusive templates plus a
/// shared pool with per-class mixing weights.
#[derive(Debug, Clone)]
pub struct FeaturePool {
    exclusive: Vec<Vec<Tensor>>,            // [class][feature] -> [C,H,W]
    shared: Vec<Tensor>,                    // [pool] -> [C,H,W]
    shared_weights: Vec<Vec<(usize, f32)>>, // [class] -> (pool index, weight)
}

/// Generates one smooth template of shape `[c, h, w]` as a sum of a few
/// random sinusoids per channel, normalized to unit max-abs.
fn smooth_template(c: usize, h: usize, w: usize, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::zeros(&[c, h, w]);
    let waves = 3;
    for ci in 0..c {
        let mut params = Vec::with_capacity(waves);
        for _ in 0..waves {
            let fx: f32 = rng.gen_range(0.5..2.5);
            let fy: f32 = rng.gen_range(0.5..2.5);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp: f32 = rng.gen_range(0.4..1.0);
            params.push((fx, fy, phase, amp));
        }
        for yi in 0..h {
            for xi in 0..w {
                let mut v = 0.0;
                for &(fx, fy, phase, amp) in &params {
                    let arg = std::f32::consts::TAU
                        * (fx * xi as f32 / w as f32 + fy * yi as f32 / h as f32)
                        + phase;
                    v += amp * arg.sin();
                }
                t.set(&[ci, yi, xi], v);
            }
        }
    }
    let m = t.max_abs();
    if m > 0.0 {
        t.scale_inplace(1.0 / m);
    }
    t
}

impl FeaturePool {
    /// Builds the template pool for a spec.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for an invalid spec.
    pub fn build(spec: &SyntheticSpec, rng: &mut impl Rng) -> Result<Self, DataError> {
        spec.validate()?;
        let (c, h, w) = (spec.channels, spec.height, spec.width);
        let exclusive = (0..spec.num_classes)
            .map(|_| {
                (0..spec.exclusive_features)
                    .map(|_| smooth_template(c, h, w, rng))
                    .collect()
            })
            .collect();
        let shared: Vec<Tensor> = (0..spec.shared_pool)
            .map(|_| smooth_template(c, h, w, rng))
            .collect();
        let shared_weights = (0..spec.num_classes)
            .map(|_| {
                let mut picks = Vec::with_capacity(spec.shared_features);
                for _ in 0..spec.shared_features {
                    let idx = rng.gen_range(0..spec.shared_pool.max(1));
                    let weight = rng.gen_range(0.4..0.9);
                    picks.push((idx, weight));
                }
                picks
            })
            .collect();
        Ok(FeaturePool {
            exclusive,
            shared,
            shared_weights,
        })
    }

    /// Number of classes the pool serves.
    pub fn num_classes(&self) -> usize {
        self.exclusive.len()
    }

    /// The noiseless prototype image for `class` — the mixture of its
    /// exclusive and shared templates.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ClassOutOfRange`] for an invalid class.
    pub fn prototype(&self, class: usize) -> Result<Tensor, DataError> {
        let ex = self
            .exclusive
            .get(class)
            .ok_or(DataError::ClassOutOfRange {
                class,
                num_classes: self.num_classes(),
            })?;
        let dims = ex[0].shape().to_vec();
        let mut proto = Tensor::zeros(&dims);
        for t in ex {
            proto.add_scaled(t, 1.0)?;
        }
        for &(idx, wgt) in &self.shared_weights[class] {
            if let Some(t) = self.shared.get(idx) {
                proto.add_scaled(t, wgt)?;
            }
        }
        Ok(proto)
    }

    /// Draws one noisy sample of `class`: `gain * prototype + noise`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ClassOutOfRange`] for an invalid class.
    pub fn sample(
        &self,
        class: usize,
        spec: &SyntheticSpec,
        rng: &mut impl Rng,
    ) -> Result<Tensor, DataError> {
        let proto = self.prototype(class)?;
        let gain = 1.0 + rng.gen_range(-spec.gain_jitter..=spec.gain_jitter);
        let noise = Tensor::randn(proto.shape(), spec.noise_std, rng);
        let mut img = proto.scale(gain);
        img.add_scaled(&noise, 1.0)?;
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn templates_are_unit_normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = smooth_template(2, 8, 8, &mut rng);
        let m = t.max_abs();
        assert!((m - 1.0).abs() < 1e-5, "max_abs {m}");
    }

    #[test]
    fn pool_has_one_prototype_per_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SyntheticSpec::tiny(5);
        let pool = FeaturePool::build(&spec, &mut rng).unwrap();
        assert_eq!(pool.num_classes(), 5);
        for c in 0..5 {
            let p = pool.prototype(c).unwrap();
            assert_eq!(p.shape(), &[1, 6, 6]);
            assert!(p.max_abs() > 0.0);
        }
        assert!(pool.prototype(5).is_err());
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = SyntheticSpec::tiny(3);
        let pool = FeaturePool::build(&spec, &mut rng).unwrap();
        let p0 = pool.prototype(0).unwrap();
        let p1 = pool.prototype(1).unwrap();
        let diff = p0.sub(&p1).unwrap().norm_sq();
        assert!(diff > 0.1, "prototypes nearly identical: {diff}");
    }

    #[test]
    fn samples_cluster_around_prototype() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = SyntheticSpec::tiny(2);
        let pool = FeaturePool::build(&spec, &mut rng).unwrap();
        let proto = pool.prototype(0).unwrap();
        // Mean of many samples approaches the prototype (gain mean = 1).
        let mut mean = Tensor::zeros(proto.shape());
        let n = 300;
        for _ in 0..n {
            let s = pool.sample(0, &spec, &mut rng).unwrap();
            mean.add_scaled(&s, 1.0 / n as f32).unwrap();
        }
        let err = mean.sub(&proto).unwrap().max_abs();
        assert!(err < 0.15, "sample mean deviates from prototype by {err}");
    }

    #[test]
    fn invalid_spec_rejected_by_build() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut spec = SyntheticSpec::tiny(2);
        spec.num_classes = 0;
        assert!(FeaturePool::build(&spec, &mut rng).is_err());
    }
}
