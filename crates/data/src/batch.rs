use cbq_tensor::Tensor;

/// One minibatch: a stacked image tensor `[B, C, H, W]` (or `[B, F]` for
/// flat features) and its labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor with the batch dimension leading.
    pub images: Tensor,
    /// One label per batch item.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Iterator over minibatches of a [`Subset`], produced by
/// [`Subset::batches`].
///
/// [`Subset`]: crate::Subset
/// [`Subset::batches`]: crate::Subset::batches
#[derive(Debug)]
pub struct BatchIter<'a> {
    pub(crate) images: &'a Tensor,
    pub(crate) labels: &'a [usize],
    pub(crate) order: Vec<usize>,
    pub(crate) batch_size: usize,
    pub(crate) cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() || self.batch_size == 0 {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idxs = &self.order[self.cursor..end];
        self.cursor = end;
        let item_dims: Vec<usize> = self.images.shape()[1..].to_vec();
        let item_len: usize = item_dims.iter().product();
        let mut data = Vec::with_capacity(idxs.len() * item_len);
        let src = self.images.as_slice();
        let mut labels = Vec::with_capacity(idxs.len());
        for &i in idxs {
            data.extend_from_slice(&src[i * item_len..(i + 1) * item_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![idxs.len()];
        dims.extend_from_slice(&item_dims);
        // from_vec cannot fail here: data length is idxs.len() * item_len.
        let images = Tensor::from_vec(data, &dims).expect("batch tensor shape");
        Some(Batch { images, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_len_reporting() {
        let b = Batch {
            images: Tensor::zeros(&[3, 2]),
            labels: vec![0, 1, 2],
        };
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let e = Batch {
            images: Tensor::zeros(&[0, 2]),
            labels: vec![],
        };
        assert!(e.is_empty());
    }
}
