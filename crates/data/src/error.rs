use cbq_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced while generating or slicing a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A spec field is out of its valid range.
    InvalidSpec(String),
    /// A class index exceeded the dataset's class count.
    ClassOutOfRange {
        /// Class requested.
        class: usize,
        /// Number of classes in the dataset.
        num_classes: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSpec(msg) => write!(f, "invalid dataset spec: {msg}"),
            DataError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range for {num_classes} classes")
            }
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::from(TensorError::Empty);
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let e2 = DataError::InvalidSpec("zero classes".into());
        assert!(e2.to_string().contains("zero classes"));
        assert!(Error::source(&e2).is_none());
    }
}
