use crate::DataError;
use serde::{Deserialize, Serialize};

/// Configuration for a synthetic class-structured image dataset.
///
/// The defaults mirror the roles the paper's datasets play: a 10-class
/// "CIFAR-10-like" set and a 100-class "CIFAR-100-like" set, scaled to
/// dimensions a CPU can train in minutes while preserving the property CQ
/// exploits — per-class activation pathways with partial overlap between
/// classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of classes `M`.
    pub num_classes: usize,
    /// Image channels (3 for the CIFAR-like sets).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Validation samples per class (used by importance scoring and the
    /// threshold search).
    pub val_per_class: usize,
    /// Held-out test samples per class.
    pub test_per_class: usize,
    /// Features exclusive to each class.
    pub exclusive_features: usize,
    /// Features shared with other classes (drawn from a common pool).
    pub shared_features: usize,
    /// Size of the shared feature pool.
    pub shared_pool: usize,
    /// Standard deviation of the per-pixel Gaussian noise.
    pub noise_std: f32,
    /// Standard deviation of the per-sample multiplicative gain jitter.
    pub gain_jitter: f32,
}

impl SyntheticSpec {
    /// A 10-class set standing in for CIFAR-10: 3×12×12 images,
    /// 200/40/40 train/val/test samples per class.
    pub fn cifar10_like() -> Self {
        SyntheticSpec {
            num_classes: 10,
            channels: 3,
            height: 12,
            width: 12,
            train_per_class: 200,
            val_per_class: 40,
            test_per_class: 40,
            exclusive_features: 3,
            shared_features: 3,
            shared_pool: 12,
            noise_std: 0.35,
            gain_jitter: 0.25,
        }
    }

    /// A 100-class set standing in for CIFAR-100: same geometry as
    /// [`SyntheticSpec::cifar10_like`], fewer samples per class.
    pub fn cifar100_like() -> Self {
        SyntheticSpec {
            num_classes: 100,
            train_per_class: 60,
            val_per_class: 10,
            test_per_class: 10,
            shared_pool: 40,
            ..SyntheticSpec::cifar10_like()
        }
    }

    /// A very small set for unit tests and doc examples: `classes`
    /// classes of 1×6×6 images, 20/8/8 samples per class.
    pub fn tiny(classes: usize) -> Self {
        SyntheticSpec {
            num_classes: classes,
            channels: 1,
            height: 6,
            width: 6,
            train_per_class: 20,
            val_per_class: 8,
            test_per_class: 8,
            exclusive_features: 2,
            shared_features: 1,
            shared_pool: 4,
            noise_std: 0.25,
            gain_jitter: 0.2,
        }
    }

    /// Flattened feature length `channels * height * width`.
    pub fn feature_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Checks the spec is generatable.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] when any count is zero where a
    /// positive value is required, or the noise level is not finite and
    /// non-negative.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.num_classes == 0 {
            return Err(DataError::InvalidSpec(
                "num_classes must be positive".into(),
            ));
        }
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(DataError::InvalidSpec(
                "image dimensions must be positive".into(),
            ));
        }
        if self.train_per_class == 0 || self.val_per_class == 0 || self.test_per_class == 0 {
            return Err(DataError::InvalidSpec(
                "each split needs at least one sample per class".into(),
            ));
        }
        if self.exclusive_features == 0 {
            return Err(DataError::InvalidSpec(
                "each class needs at least one exclusive feature".into(),
            ));
        }
        if self.shared_features > 0 && self.shared_pool == 0 {
            return Err(DataError::InvalidSpec(
                "shared features requested but the shared pool is empty".into(),
            ));
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(DataError::InvalidSpec(
                "noise_std must be finite and non-negative".into(),
            ));
        }
        if !self.gain_jitter.is_finite() || self.gain_jitter < 0.0 {
            return Err(DataError::InvalidSpec(
                "gain_jitter must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec::cifar10_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SyntheticSpec::cifar10_like().validate().unwrap();
        SyntheticSpec::cifar100_like().validate().unwrap();
        SyntheticSpec::tiny(3).validate().unwrap();
    }

    #[test]
    fn cifar100_has_100_classes() {
        assert_eq!(SyntheticSpec::cifar100_like().num_classes, 100);
    }

    #[test]
    fn feature_len_is_chw() {
        let s = SyntheticSpec::cifar10_like();
        assert_eq!(s.feature_len(), 3 * 12 * 12);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = SyntheticSpec::tiny(2);
        s.num_classes = 0;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.height = 0;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.val_per_class = 0;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.exclusive_features = 0;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.shared_features = 2;
        s.shared_pool = 0;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.noise_std = f32::NAN;
        assert!(s.validate().is_err());

        let mut s = SyntheticSpec::tiny(2);
        s.gain_jitter = -1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn default_is_cifar10_like() {
        assert_eq!(SyntheticSpec::default(), SyntheticSpec::cifar10_like());
    }
}
