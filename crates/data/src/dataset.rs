use crate::{Batch, BatchIter, DataError, FeaturePool, SyntheticSpec};
use cbq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// One split of a dataset: a stacked tensor `[N, C, H, W]` and labels.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Subset {
    images: Tensor,
    labels: Vec<usize>,
}

impl Subset {
    /// Creates a subset from pre-stacked images and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the leading image dimension
    /// disagrees with the label count.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Result<Self, DataError> {
        let n = images.shape().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(DataError::InvalidSpec(format!(
                "{} images but {} labels",
                n,
                labels.len()
            )));
        }
        Ok(Subset { images, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The stacked image tensor, batch dimension leading.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates minibatches in index order.
    pub fn batches(&self, batch_size: usize) -> BatchIter<'_> {
        BatchIter {
            images: &self.images,
            labels: &self.labels,
            order: (0..self.len()).collect(),
            batch_size,
            cursor: 0,
        }
    }

    /// Iterates minibatches in a freshly shuffled order.
    pub fn batches_shuffled(&self, batch_size: usize, rng: &mut impl Rng) -> BatchIter<'_> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        BatchIter {
            images: &self.images,
            labels: &self.labels,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Returns one batch containing every sample of `class` (up to `cap`
    /// samples). Used by per-class importance scoring.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ClassOutOfRange`] when the class never occurs.
    pub fn class_batch(&self, class: usize, cap: usize) -> Result<Batch, DataError> {
        let idxs: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .take(cap)
            .collect();
        if idxs.is_empty() {
            let num_classes = self.labels.iter().copied().max().map_or(0, |m| m + 1);
            return Err(DataError::ClassOutOfRange { class, num_classes });
        }
        let item_dims: Vec<usize> = self.images.shape()[1..].to_vec();
        let item_len: usize = item_dims.iter().product();
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(idxs.len() * item_len);
        for &i in &idxs {
            data.extend_from_slice(&src[i * item_len..(i + 1) * item_len]);
        }
        let mut dims = vec![idxs.len()];
        dims.extend_from_slice(&item_dims);
        Ok(Batch {
            images: Tensor::from_vec(data, &dims)?,
            labels: vec![class; idxs.len()],
        })
    }

    /// Copies the first `n` samples into a new subset (deterministic
    /// down-sampling for fast accuracy probes during the search).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors; `n` larger than the subset is clamped.
    pub fn head(&self, n: usize) -> Result<Subset, DataError> {
        let n = n.min(self.len());
        let item_dims: Vec<usize> = self.images.shape()[1..].to_vec();
        let item_len: usize = item_dims.iter().product();
        let mut dims = vec![n];
        dims.extend_from_slice(&item_dims);
        let images = Tensor::from_vec(self.images.as_slice()[..n * item_len].to_vec(), &dims)?;
        Subset::new(images, self.labels[..n].to_vec())
    }

    /// Copies the given sample indices (in order, repeats allowed) into a
    /// new subset — the building block for mix-weighted probe sets, where
    /// the sample composition must mirror an observed class distribution
    /// rather than the split's own ordering.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for an out-of-range index;
    /// propagates tensor errors.
    pub fn select(&self, indices: &[usize]) -> Result<Subset, DataError> {
        let item_dims: Vec<usize> = self.images.shape()[1..].to_vec();
        let item_len: usize = item_dims.iter().product();
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * item_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::InvalidSpec(format!(
                    "select index {i} out of range for subset of {}",
                    self.len()
                )));
            }
            data.extend_from_slice(&src[i * item_len..(i + 1) * item_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&item_dims);
        Subset::new(Tensor::from_vec(data, &dims)?, labels)
    }
}

/// A generated synthetic dataset with train/val/test splits.
///
/// # Example
///
/// ```
/// use cbq_data::{SyntheticImages, SyntheticSpec};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng)?;
/// let batch = data.train().batches(8).next().expect("non-empty split");
/// assert_eq!(batch.images.shape()[0], 8);
/// # Ok::<(), cbq_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SyntheticImages {
    spec: SyntheticSpec,
    train: Subset,
    val: Subset,
    test: Subset,
}

impl SyntheticImages {
    /// Generates a dataset from a spec. Samples are interleaved across
    /// classes so un-shuffled batches are still class-balanced.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for an invalid spec.
    pub fn generate(spec: &SyntheticSpec, rng: &mut impl Rng) -> Result<Self, DataError> {
        spec.validate()?;
        let pool = FeaturePool::build(spec, rng)?;
        fn make_split<R: Rng>(
            pool: &FeaturePool,
            spec: &SyntheticSpec,
            per_class: usize,
            rng: &mut R,
        ) -> Result<Subset, DataError> {
            let n = per_class * spec.num_classes;
            let item_len = spec.feature_len();
            let mut data = Vec::with_capacity(n * item_len);
            let mut labels = Vec::with_capacity(n);
            // Interleave classes: sample s of class c sits at index
            // s * num_classes + c.
            for _s in 0..per_class {
                for c in 0..spec.num_classes {
                    let img = pool.sample(c, spec, rng)?;
                    data.extend_from_slice(img.as_slice());
                    labels.push(c);
                }
            }
            let images = Tensor::from_vec(data, &[n, spec.channels, spec.height, spec.width])?;
            Subset::new(images, labels)
        }
        let train = make_split(&pool, spec, spec.train_per_class, rng)?;
        let val = make_split(&pool, spec, spec.val_per_class, rng)?;
        let test = make_split(&pool, spec, spec.test_per_class, rng)?;
        Ok(SyntheticImages {
            spec: spec.clone(),
            train,
            val,
            test,
        })
    }

    /// The spec this dataset was generated from.
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    /// Number of classes `M`.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Flattened feature length `C*H*W`.
    pub fn feature_len(&self) -> usize {
        self.spec.feature_len()
    }

    /// Training split.
    pub fn train(&self) -> &Subset {
        &self.train
    }

    /// Validation split (importance scoring + threshold search).
    pub fn val(&self) -> &Subset {
        &self.val
    }

    /// Held-out test split.
    pub fn test(&self) -> &Subset {
        &self.test
    }

    /// Writes the dataset as JSON so an experiment's exact inputs can be
    /// archived and replayed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] wrapping any I/O or
    /// serialization failure.
    pub fn to_json_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), DataError> {
        let json = serde_json::to_string(self)
            .map_err(|e| DataError::InvalidSpec(format!("serialize: {e}")))?;
        std::fs::write(path, json).map_err(|e| DataError::InvalidSpec(format!("write: {e}")))
    }

    /// Reads a dataset previously written by
    /// [`SyntheticImages::to_json_file`].
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] wrapping any I/O or parse
    /// failure.
    pub fn from_json_file(path: impl AsRef<std::path::Path>) -> Result<Self, DataError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DataError::InvalidSpec(format!("read: {e}")))?;
        serde_json::from_str(&text).map_err(|e| DataError::InvalidSpec(format!("parse: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data() -> SyntheticImages {
        let mut rng = StdRng::seed_from_u64(9);
        SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap()
    }

    #[test]
    fn split_sizes_match_spec() {
        let d = tiny_data();
        let s = d.spec().clone();
        assert_eq!(d.train().len(), s.train_per_class * 3);
        assert_eq!(d.val().len(), s.val_per_class * 3);
        assert_eq!(d.test().len(), s.test_per_class * 3);
    }

    #[test]
    fn labels_are_interleaved_and_balanced() {
        let d = tiny_data();
        let labels = d.train().labels();
        assert_eq!(&labels[..6], &[0, 1, 2, 0, 1, 2]);
        for c in 0..3 {
            let count = labels.iter().filter(|&&l| l == c).count();
            assert_eq!(count, d.spec().train_per_class);
        }
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = tiny_data();
        let mut seen = 0;
        for b in d.train().batches(7) {
            seen += b.len();
            assert_eq!(b.images.shape()[0], b.len());
        }
        assert_eq!(seen, d.train().len());
    }

    #[test]
    fn shuffled_batches_permute() {
        let d = tiny_data();
        let mut rng = StdRng::seed_from_u64(10);
        let plain: Vec<usize> = d.train().batches(1000).flat_map(|b| b.labels).collect();
        let shuffled: Vec<usize> = d
            .train()
            .batches_shuffled(1000, &mut rng)
            .flat_map(|b| b.labels)
            .collect();
        assert_eq!(plain.len(), shuffled.len());
        assert_ne!(plain, shuffled, "shuffle produced identity permutation");
        let mut a = plain.clone();
        let mut b = shuffled.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle changed the multiset of labels");
    }

    #[test]
    fn class_batch_selects_only_that_class() {
        let d = tiny_data();
        let b = d.val().class_batch(1, 5).unwrap();
        assert_eq!(b.len(), 5);
        assert!(b.labels.iter().all(|&l| l == 1));
        assert!(d.val().class_batch(99, 5).is_err());
    }

    #[test]
    fn head_truncates() {
        let d = tiny_data();
        let h = d.val().head(4).unwrap();
        assert_eq!(h.len(), 4);
        assert_eq!(h.labels(), &d.val().labels()[..4]);
        let all = d.val().head(10_000).unwrap();
        assert_eq!(all.len(), d.val().len());
    }

    #[test]
    fn select_copies_indices_in_order_with_repeats() {
        let d = tiny_data();
        let v = d.val();
        let s = v.select(&[2, 0, 2]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels()[0], v.labels()[2]);
        assert_eq!(s.labels()[1], v.labels()[0]);
        assert_eq!(s.labels()[2], v.labels()[2]);
        let f = d.feature_len();
        assert_eq!(
            &s.images().as_slice()[..f],
            &v.images().as_slice()[2 * f..3 * f]
        );
        assert!(v.select(&[v.len()]).is_err());
    }

    #[test]
    fn subset_rejects_mismatched_labels() {
        let images = Tensor::zeros(&[3, 2]);
        assert!(Subset::new(images, vec![0, 1]).is_err());
    }

    #[test]
    fn zero_batch_size_yields_no_batches() {
        let d = tiny_data();
        assert!(d.train().batches(0).next().is_none());
    }

    #[test]
    fn dataset_json_round_trip() {
        let d = tiny_data();
        let path = std::env::temp_dir().join("cbq_dataset_test.json");
        d.to_json_file(&path).unwrap();
        let back = SyntheticImages::from_json_file(&path).unwrap();
        assert_eq!(back, d);
        std::fs::remove_file(&path).ok();
        assert!(SyntheticImages::from_json_file("/nonexistent/x.json").is_err());
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // The dataset must be learnable: nearest-class-mean classification
        // on raw pixels should beat chance by a wide margin.
        let d = tiny_data();
        let n_classes = d.num_classes();
        let f = d.feature_len();
        let train = d.train();
        let mut means = vec![vec![0.0f64; f]; n_classes];
        let mut counts = vec![0usize; n_classes];
        let src = train.images().as_slice();
        for (i, &l) in train.labels().iter().enumerate() {
            for (j, m) in means[l].iter_mut().enumerate() {
                *m += src[i * f + j] as f64;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let test = d.test();
        let tsrc = test.images().as_slice();
        let mut correct = 0;
        for (i, &l) in test.labels().iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let dist: f64 = (0..f)
                    .map(|j| {
                        let diff = tsrc[i * f + j] as f64 - m[j];
                        diff * diff
                    })
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "nearest-mean accuracy only {acc}");
    }
}
