#![warn(missing_docs)]

//! Synthetic class-structured datasets for the CBQ reproduction.
//!
//! The paper evaluates on CIFAR-10/100. Real natural-image training is a
//! GPU-scale job and the images themselves are not what class-based
//! quantization (CQ) depends on — CQ's mechanism is that *different classes
//! excite different activation pathways*, with some features shared between
//! classes and some exclusive to one. This crate generates image-shaped
//! data with exactly that structure, so every code path the paper exercises
//! (per-class importance scoring, threshold search on validation accuracy,
//! QAT refining) runs unchanged on laptop-scale budgets.
//!
//! Each dataset is built from a pool of smooth spatial *feature templates*.
//! Every class mixes a few templates exclusive to it plus a few shared with
//! neighbouring classes; a sample is the class mixture plus Gaussian noise
//! and a random gain. See [`SyntheticSpec`] for the knobs.
//!
//! # Example
//!
//! ```
//! use cbq_data::{SyntheticImages, SyntheticSpec};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let spec = SyntheticSpec::tiny(4); // 4 classes, fast to generate
//! let data = SyntheticImages::generate(&spec, &mut rng)?;
//! assert_eq!(data.num_classes(), 4);
//! assert_eq!(data.train().len(), spec.train_per_class * 4);
//! # Ok::<(), cbq_data::DataError>(())
//! ```

mod batch;
mod dataset;
mod error;
mod generator;
mod spec;

pub use batch::{Batch, BatchIter};
pub use dataset::{Subset, SyntheticImages};
pub use error::DataError;
pub use generator::FeaturePool;
pub use spec::SyntheticSpec;
