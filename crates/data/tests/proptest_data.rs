//! Property-based tests of the dataset generator's invariants.

use cbq_data::{SyntheticImages, SyntheticSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_spec(classes: usize, noise: f32) -> SyntheticSpec {
    SyntheticSpec {
        num_classes: classes,
        channels: 1,
        height: 5,
        width: 5,
        train_per_class: 6,
        val_per_class: 3,
        test_per_class: 3,
        exclusive_features: 1,
        shared_features: 1,
        shared_pool: 3,
        noise_std: noise,
        gain_jitter: 0.2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every split is exactly class-balanced with in-range labels.
    #[test]
    fn splits_are_balanced(classes in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = SyntheticImages::generate(&small_spec(classes, 0.3), &mut rng).unwrap();
        for subset in [data.train(), data.val(), data.test()] {
            prop_assert!(subset.labels().iter().all(|&l| l < classes));
            for c in 0..classes {
                let count = subset.labels().iter().filter(|&&l| l == c).count();
                prop_assert_eq!(count, subset.len() / classes);
            }
        }
    }

    /// Identical seeds generate identical datasets; different seeds differ.
    #[test]
    fn generation_is_deterministic(seed in 0u64..1000) {
        let spec = small_spec(3, 0.3);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let a = SyntheticImages::generate(&spec, &mut r1).unwrap();
        let b = SyntheticImages::generate(&spec, &mut r2).unwrap();
        prop_assert_eq!(a.train().images().as_slice(), b.train().images().as_slice());
        let mut r3 = StdRng::seed_from_u64(seed.wrapping_add(1));
        let c = SyntheticImages::generate(&spec, &mut r3).unwrap();
        prop_assert_ne!(a.train().images().as_slice(), c.train().images().as_slice());
    }

    /// All generated pixels are finite regardless of noise level.
    #[test]
    fn pixels_are_finite(noise in 0.0f32..3.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = SyntheticImages::generate(&small_spec(2, noise), &mut rng).unwrap();
        prop_assert!(data.train().images().as_slice().iter().all(|v| v.is_finite()));
    }

    /// Class batches select only the requested class, up to the cap.
    #[test]
    fn class_batches_are_pure(class in 0usize..3, cap in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(7);
        let data = SyntheticImages::generate(&small_spec(3, 0.3), &mut rng).unwrap();
        let batch = data.val().class_batch(class, cap).unwrap();
        prop_assert!(batch.labels.iter().all(|&l| l == class));
        prop_assert!(batch.len() <= cap);
        prop_assert!(batch.len() >= 1);
    }

    /// Shuffled batching is a permutation of plain batching.
    #[test]
    fn shuffle_is_permutation(seed in 0u64..500, batch in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(3);
        let data = SyntheticImages::generate(&small_spec(2, 0.3), &mut rng).unwrap();
        let mut shuffle_rng = StdRng::seed_from_u64(seed);
        let mut plain: Vec<usize> =
            data.train().batches(batch).flat_map(|b| b.labels).collect();
        let mut shuffled: Vec<usize> = data
            .train()
            .batches_shuffled(batch, &mut shuffle_rng)
            .flat_map(|b| b.labels)
            .collect();
        plain.sort_unstable();
        shuffled.sort_unstable();
        prop_assert_eq!(plain, shuffled);
    }
}
