//! Property-based tests of the training stack's mathematical invariants.

use cbq_nn::layers::{Linear, Relu};
use cbq_nn::{losses, Layer, Phase, Sequential};
use cbq_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax rows are probability distributions for any finite logits.
    #[test]
    fn softmax_rows_are_distributions(
        data in prop::collection::vec(-30.0f32..30.0, 2..24),
    ) {
        let cols = 2 + data.len() % 4;
        let rows = data.len() / cols;
        prop_assume!(rows > 0);
        let logits = Tensor::from_vec(data[..rows * cols].to_vec(), &[rows, cols]).unwrap();
        let p = losses::softmax_rows(&logits).unwrap();
        for r in 0..rows {
            let row = p.row(r).unwrap();
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
            prop_assert!(row.as_slice().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    /// Cross-entropy is non-negative and its gradient rows sum to zero.
    #[test]
    fn cross_entropy_invariants(
        data in prop::collection::vec(-10.0f32..10.0, 6..30),
        label_seed in 0usize..1000,
    ) {
        let cols = 3;
        let rows = data.len() / cols;
        let logits = Tensor::from_vec(data[..rows * cols].to_vec(), &[rows, cols]).unwrap();
        let labels: Vec<usize> = (0..rows).map(|i| (label_seed + i) % cols).collect();
        let (loss, grad) = losses::cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= -1e-6);
        for r in 0..rows {
            prop_assert!(grad.row(r).unwrap().sum().abs() < 1e-5);
        }
    }

    /// KD loss interpolates: at alpha=1 it equals CE for any teacher.
    #[test]
    fn kd_alpha_one_is_ce(
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[3, 4], 2.0, &mut rng);
        let teacher = losses::softmax_rows(&Tensor::randn(&[3, 4], 2.0, &mut rng)).unwrap();
        let labels = [0usize, 1, 2];
        let (kd, _) = losses::kd_loss(&logits, &teacher, &labels, 1.0).unwrap();
        let (ce, _) = losses::cross_entropy(&logits, &labels).unwrap();
        prop_assert!((kd - ce).abs() < 1e-5);
    }

    /// A forward pass is deterministic: same input, same output.
    #[test]
    fn forward_is_deterministic(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc1", 5, 7, true, &mut rng).unwrap());
        net.push(Relu::new("r"));
        net.push(Linear::new("fc2", 7, 2, true, &mut rng).unwrap());
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let a = net.forward(&x, Phase::Eval).unwrap();
        let b = net.forward(&x, Phase::Eval).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Network output is linear in the final layer's scale: doubling the
    /// last weights doubles the logits (ReLU nets are positively
    /// homogeneous per layer).
    #[test]
    fn last_layer_scaling_scales_logits(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc1", 4, 6, true, &mut rng).unwrap());
        net.push(Relu::new("r"));
        net.push(Linear::new("fc2", 6, 3, false, &mut rng).unwrap());
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y1 = net.forward(&x, Phase::Eval).unwrap();
        net.visit_params(&mut |p| {
            if p.name == "fc2.weight" {
                p.value.scale_inplace(2.0);
            }
        });
        let y2 = net.forward(&x, Phase::Eval).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    /// Gradient accumulation is additive: two backward passes double the
    /// parameter gradients.
    #[test]
    fn gradients_accumulate_linearly(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 3, 2, true, &mut rng).unwrap());
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let gy = Tensor::randn(&[2, 2], 1.0, &mut rng);
        net.forward(&x, Phase::Train).unwrap();
        net.backward(&gy).unwrap();
        let mut once = Vec::new();
        net.visit_params(&mut |p| once.push(p.grad.clone()));
        net.forward(&x, Phase::Train).unwrap();
        net.backward(&gy).unwrap();
        let mut idx = 0;
        net.visit_params(&mut |p| {
            for (a, b) in p.grad.as_slice().iter().zip(once[idx].as_slice()) {
                assert!((a - 2.0 * b).abs() < 1e-4);
            }
            idx += 1;
        });
    }
}
