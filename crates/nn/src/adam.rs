//! Adam optimizer and cosine learning-rate schedule — alternatives to
//! the paper's SGD recipe, useful for quick experiments on the synthetic
//! datasets where adaptive steps converge in fewer epochs.

use crate::{Layer, NnError, Result};
use cbq_tensor::Tensor;

/// Hyperparameters for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Numerical stabilizer (default 1e-8).
    pub eps: f32,
    /// L2 weight decay applied to parameters flagged for decay.
    pub weight_decay: f32,
}

impl AdamConfig {
    /// Standard Adam defaults at the given learning rate.
    pub fn new(lr: f32) -> Self {
        AdamConfig {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam optimizer with bias-corrected moment estimates.
///
/// Like [`Sgd`](crate::Sgd), per-parameter state is positional over the
/// network's stable [`Layer::visit_params`] order.
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with empty state; moments are allocated on
    /// the first [`Adam::step`].
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one Adam update to every parameter of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the network's parameter
    /// count changed since the first step.
    pub fn step(&mut self, net: &mut dyn Layer) -> Result<()> {
        self.t += 1;
        let t = self.t as i32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(t);
        let bias2 = 1.0 - c.beta2.powi(t);
        let first_pass = self.m.is_empty();
        let m = &mut self.m;
        let v = &mut self.v;
        let mut idx = 0usize;
        net.visit_params(&mut |p| {
            if first_pass {
                m.push(Tensor::zeros(p.value.shape()));
                v.push(Tensor::zeros(p.value.shape()));
            }
            if idx >= m.len() {
                idx += 1;
                return;
            }
            let ms = m[idx].as_mut_slice();
            let vs = v[idx].as_mut_slice();
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            let decay = if p.weight_decay { c.weight_decay } else { 0.0 };
            for i in 0..w.len() {
                let grad = g[i] + decay * w[i];
                ms[i] = c.beta1 * ms[i] + (1.0 - c.beta1) * grad;
                vs[i] = c.beta2 * vs[i] + (1.0 - c.beta2) * grad * grad;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                w[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
            idx += 1;
        });
        if idx != self.m.len() {
            return Err(NnError::InvalidConfig(format!(
                "optimizer state holds {} parameters but the network has {idx}",
                self.m.len()
            )));
        }
        Ok(())
    }
}

/// Cosine learning-rate schedule: decays from `base_lr` to `min_lr` over
/// `total_epochs` following a half cosine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    base_lr: f32,
    min_lr: f32,
    total_epochs: usize,
}

impl CosineLr {
    /// Creates a schedule over `total_epochs`.
    pub fn new(base_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        CosineLr {
            base_lr,
            min_lr,
            total_epochs,
        }
    }

    /// Learning rate at `epoch` (clamped to the final value afterwards).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if self.total_epochs <= 1 {
            return self.min_lr;
        }
        let progress = (epoch.min(self.total_epochs - 1)) as f32 / (self.total_epochs - 1) as f32;
        let cos = (std::f32::consts::PI * progress).cos();
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + cos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::{Phase, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_descends_a_quadratic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 2, 1, false, &mut rng).unwrap());
        let mut opt = Adam::new(AdamConfig::new(0.05));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let mut err = f32::INFINITY;
        for _ in 0..300 {
            net.zero_grad();
            let y = net.forward(&x, Phase::Train).unwrap();
            err = y.as_slice()[0] - 3.0;
            let gy = Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap();
            net.backward(&gy).unwrap();
            opt.step(&mut net).unwrap();
        }
        assert!(err.abs() < 1e-2, "did not converge: {err}");
    }

    #[test]
    fn adam_state_mismatch_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Sequential::new("a");
        a.push(Linear::new("fc", 2, 2, true, &mut rng).unwrap());
        let mut b = Sequential::new("b");
        b.push(Linear::new("fc", 2, 2, true, &mut rng).unwrap());
        b.push(Linear::new("fc2", 2, 2, true, &mut rng).unwrap());
        let mut opt = Adam::new(AdamConfig::new(0.01));
        opt.step(&mut a).unwrap();
        assert!(opt.step(&mut b).is_err());
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineLr::new(0.1, 0.001, 10);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(9) - 0.001).abs() < 1e-6);
        assert!(s.lr_at(100) <= 0.001 + 1e-6);
        // monotone decreasing
        for e in 0..9 {
            assert!(s.lr_at(e + 1) <= s.lr_at(e) + 1e-7);
        }
        // degenerate schedules
        assert_eq!(CosineLr::new(0.1, 0.01, 1).lr_at(0), 0.01);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 1, 1, false, &mut rng).unwrap());
        let mut w0 = 0.0;
        net.visit_params(&mut |p| w0 = p.value.as_slice()[0]);
        let mut cfg = AdamConfig::new(0.01);
        cfg.weight_decay = 1.0;
        let mut opt = Adam::new(cfg);
        net.zero_grad();
        opt.step(&mut net).unwrap();
        net.visit_params(&mut |p| {
            let w1 = p.value.as_slice()[0];
            assert!(
                w1.abs() < w0.abs(),
                "decay did not shrink weight: {w0} -> {w1}"
            );
        });
    }
}
