//! The layer zoo: convolution, linear, batch-norm, ReLU, pooling, flatten
//! and the residual basic block.

mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;
mod relu;
mod residual;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2dLayer, GlobalAvgPoolLayer, MaxPool2dLayer};
pub use relu::Relu;
pub use residual::BasicBlock;
