use crate::layers::{BatchNorm2d, Conv2d, Relu};
use crate::{Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::Tensor;
use rand::Rng;

/// The ResNet basic block: two 3×3 conv/BN stages plus a skip connection,
/// with a ReLU after the residual addition.
///
/// When the block changes resolution or width, the skip path is a strided
/// 1×1 convolution + BN (the standard "option B" projection shortcut).
#[derive(Debug, Clone)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu2: Relu,
    name: String,
    cached_input: Option<Tensor>,
}

impl BasicBlock {
    /// Creates a basic block mapping `in_channels` to `out_channels` with
    /// the given stride on the first convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero-sized arguments.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let name = name.into();
        let conv1 = Conv2d::new(
            format!("{name}.conv1"),
            in_channels,
            out_channels,
            3,
            stride,
            1,
            false,
            rng,
        )?;
        let bn1 = BatchNorm2d::new(format!("{name}.bn1"), out_channels)?;
        let relu1 = Relu::new(format!("{name}.relu1"));
        let conv2 = Conv2d::new(
            format!("{name}.conv2"),
            out_channels,
            out_channels,
            3,
            1,
            1,
            false,
            rng,
        )?;
        let bn2 = BatchNorm2d::new(format!("{name}.bn2"), out_channels)?;
        let downsample = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(
                    format!("{name}.downsample.conv"),
                    in_channels,
                    out_channels,
                    1,
                    stride,
                    0,
                    false,
                    rng,
                )?,
                BatchNorm2d::new(format!("{name}.downsample.bn"), out_channels)?,
            ))
        } else {
            None
        };
        let relu2 = Relu::new(format!("{name}.relu2"));
        Ok(BasicBlock {
            conv1,
            bn1,
            relu1,
            conv2,
            bn2,
            downsample,
            relu2,
            name,
            cached_input: None,
        })
    }

    /// Whether the block uses a projection shortcut.
    pub fn has_downsample(&self) -> bool {
        self.downsample.is_some()
    }
}

impl Layer for BasicBlock {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let main = self.conv1.forward(x, phase)?;
        let main = self.bn1.forward(&main, phase)?;
        let main = self.relu1.forward(&main, phase)?;
        let main = self.conv2.forward(&main, phase)?;
        let main = self.bn2.forward(&main, phase)?;
        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(x, phase)?;
                bn.forward(&s, phase)?
            }
            None => x.clone(),
        };
        let summed = main.add(&skip)?;
        self.cached_input = Some(x.clone());
        self.relu2.forward(&summed, phase)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if self.cached_input.is_none() {
            return Err(NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            });
        }
        let g_sum = self.relu2.backward(grad_out)?;
        // Main path.
        let g = self.bn2.backward(&g_sum)?;
        let g = self.conv2.backward(&g)?;
        let g = self.relu1.backward(&g)?;
        let g = self.bn1.backward(&g)?;
        let g_main = self.conv1.backward(&g)?;
        // Skip path.
        let g_skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let g = bn.backward(&g_sum)?;
                conv.backward(&g)?
            }
            None => g_sum,
        };
        Ok(g_main.add(&g_skip)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        self.conv1.visit_layers_mut(f);
        self.bn1.visit_layers_mut(f);
        self.relu1.visit_layers_mut(f);
        self.conv2.visit_layers_mut(f);
        self.bn2.visit_layers_mut(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_layers_mut(f);
            bn.visit_layers_mut(f);
        }
        self.relu2.visit_layers_mut(f);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Container
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.conv1.clear_cache();
        self.bn1.clear_cache();
        self.relu1.clear_cache();
        self.conv2.clear_cache();
        self.bn2.clear_cache();
        if let Some((conv, bn)) = &mut self.downsample {
            conv.clear_cache();
            bn.clear_cache();
        }
        self.relu2.clear_cache();
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_block_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = BasicBlock::new("b", 4, 4, 1, &mut rng).unwrap();
        assert!(!block.has_downsample());
        let x = Tensor::randn(&[2, 4, 6, 6], 1.0, &mut rng);
        let y = block.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    fn downsample_block_halves_resolution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = BasicBlock::new("b", 4, 8, 2, &mut rng).unwrap();
        assert!(block.has_downsample());
        let x = Tensor::randn(&[1, 4, 6, 6], 1.0, &mut rng);
        let y = block.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape(), &[1, 8, 3, 3]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = BasicBlock::new("b", 2, 2, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        block.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::ones(&[1, 2, 4, 4]);
        let gx = block.backward(&gy).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 9, 18, 27] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (block.forward(&xp, Phase::Train).unwrap().sum()
                - block.forward(&xm, Phase::Train).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (fd - gx.as_slice()[idx]).abs() < 5e-2,
                "x[{idx}]: fd {fd} vs {}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn visit_order_puts_relu_after_convs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut block = BasicBlock::new("b", 2, 4, 2, &mut rng).unwrap();
        let mut names = Vec::new();
        block.visit_layers_mut(&mut |l| names.push(l.name().to_string()));
        assert_eq!(
            names,
            vec![
                "b.conv1",
                "b.bn1",
                "b.relu1",
                "b.conv2",
                "b.bn2",
                "b.downsample.conv",
                "b.downsample.bn",
                "b.relu2"
            ]
        );
    }

    #[test]
    fn param_visit_covers_downsample() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut block = BasicBlock::new("b", 2, 4, 2, &mut rng).unwrap();
        let mut names = Vec::new();
        block.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names.iter().any(|n| n.contains("downsample.conv")));
        assert!(names.iter().any(|n| n.contains("bn2.gamma")));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut block = BasicBlock::new("b", 2, 2, 1, &mut rng).unwrap();
        assert!(block.backward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }
}
