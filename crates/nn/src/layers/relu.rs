use crate::{ActivationQuantizer, Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::{Scratch, Tensor};

/// Rectified linear activation, optionally followed by an installed
/// [`ActivationQuantizer`].
///
/// ReLU layers are the *importance taps* of the class-based quantization
/// algorithm: they cache their output activations and the upstream
/// gradient of the most recent backward pass, so the scorer can read the
/// Taylor term `|a · ∂Φ/∂a|` (paper Eq. 5) without touching layer
/// internals. When an activation quantizer is installed, the cached
/// output is the *quantized* activation and the backward pass applies the
/// quantizer's straight-through mask before the ReLU mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    name: String,
    quantizer: Option<Box<dyn ActivationQuantizer>>,
    cached_relu_out: Option<Tensor>,
    cached_quant_mask: Option<Tensor>,
    cached_output: Option<Tensor>,
    cached_grad_out: Option<Tensor>,
}

impl Relu {
    /// Creates a named ReLU.
    pub fn new(name: impl Into<String>) -> Self {
        Relu {
            name: name.into(),
            quantizer: None,
            cached_relu_out: None,
            cached_quant_mask: None,
            cached_output: None,
            cached_grad_out: None,
        }
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if phase == Phase::Infer {
            // Forward-only fast path: no STE mask, no caches.
            let mut out = x.map(|v| v.max(0.0));
            if let Some(q) = &mut self.quantizer {
                q.apply_infer(out.as_mut_slice());
            }
            return Ok(out);
        }
        let relu_out = x.map(|v| v.max(0.0));
        let (out, mask) = match &mut self.quantizer {
            Some(q) => {
                let (out, mask) = q.apply(&relu_out);
                (out, Some(mask))
            }
            None => (relu_out.clone(), None),
        };
        self.cached_relu_out = Some(relu_out);
        self.cached_quant_mask = mask;
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        mut x: Tensor,
        phase: Phase,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        // Owns the buffer: clamp and quantize fully in place, zero copies.
        for v in x.as_mut_slice() {
            *v = v.max(0.0);
        }
        if let Some(q) = &mut self.quantizer {
            q.apply_infer(x.as_mut_slice());
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let relu_out =
            self.cached_relu_out
                .as_ref()
                .ok_or_else(|| NnError::BackwardBeforeForward {
                    layer: self.name.clone(),
                })?;
        let after_quant = match &self.cached_quant_mask {
            Some(mask) => grad_out.mul(mask)?,
            None => grad_out.clone(),
        };
        let grad_in = relu_out.zip_map(&after_quant, |o, g| if o > 0.0 { g } else { 0.0 })?;
        self.cached_grad_out = Some(grad_out.clone());
        Ok(grad_in)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cached_output(&self) -> Option<&Tensor> {
        self.cached_output.as_ref()
    }

    fn cached_grad_out(&self) -> Option<&Tensor> {
        self.cached_grad_out.as_ref()
    }

    fn set_activation_quantizer(&mut self, quantizer: Option<Box<dyn ActivationQuantizer>>) {
        self.quantizer = quantizer;
    }

    fn activation_quantizer_mut(&mut self) -> Option<&mut (dyn ActivationQuantizer + 'static)> {
        self.quantizer.as_deref_mut()
    }

    fn clear_cache(&mut self) {
        self.cached_relu_out = None;
        self.cached_quant_mask = None;
        self.cached_output = None;
        self.cached_grad_out = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new("r");
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new("r");
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        r.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::from_vec(vec![5.0, 7.0], &[2]).unwrap();
        let gx = r.backward(&gy).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 7.0]);
    }

    #[test]
    fn taps_expose_activation_and_grad() {
        let mut r = Relu::new("r");
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        r.forward(&x, Phase::Eval).unwrap();
        let gy = Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap();
        r.backward(&gy).unwrap();
        assert_eq!(r.cached_output().unwrap().as_slice(), &[1.0, 0.0]);
        assert_eq!(r.cached_grad_out().unwrap().as_slice(), &[0.5, 0.5]);
        r.clear_cache();
        assert!(r.cached_output().is_none());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = Relu::new("r");
        assert!(r.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[derive(Debug, Clone)]
    struct HalveAboveOne {
        bits: Option<u8>,
    }
    impl ActivationQuantizer for HalveAboveOne {
        fn clone_box(&self) -> Box<dyn ActivationQuantizer> {
            Box::new(self.clone())
        }

        fn apply(&mut self, x: &Tensor) -> (Tensor, Tensor) {
            // clip at 1.0: output min(x, 1), mask 1 where x <= 1
            let out = x.map(|v| v.min(1.0));
            let mask = x.map(|v| if v <= 1.0 { 1.0 } else { 0.0 });
            (out, mask)
        }
        fn set_bits(&mut self, bits: Option<u8>) {
            self.bits = bits;
        }
        fn bits(&self) -> Option<u8> {
            self.bits
        }
        fn set_calibrating(&mut self, _on: bool) {}
        fn clip(&self) -> f32 {
            1.0
        }
    }

    #[test]
    fn installed_quantizer_shapes_forward_and_backward() {
        let mut r = Relu::new("r");
        r.set_activation_quantizer(Some(Box::new(HalveAboveOne { bits: Some(2) })));
        let x = Tensor::from_vec(vec![-1.0, 0.5, 3.0], &[3]).unwrap();
        let y = r.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.5, 1.0]);
        let gx = r.backward(&Tensor::ones(&[3])).unwrap();
        // -1: relu-masked; 0.5 passes; 3.0: clipped by quantizer
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0]);
        assert_eq!(r.activation_quantizer_mut().unwrap().bits(), Some(2));
    }
}
