use crate::{Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::{Scratch, Tensor};

/// Flattens `[N, ...]` into `[N, prod(...)]` — the CNN-to-FC adapter.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    name: String,
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten {
            name: name.into(),
            cached_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if x.rank() == 0 {
            return Err(NnError::Tensor(cbq_tensor::TensorError::RankMismatch {
                expected: 2,
                actual: 0,
            }));
        }
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if phase != Phase::Infer {
            self.cached_dims = Some(x.shape().to_vec());
        }
        Ok(x.reshape(&[n, rest])?)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        if x.rank() == 0 {
            return Err(NnError::Tensor(cbq_tensor::TensorError::RankMismatch {
                expected: 2,
                actual: 0,
            }));
        }
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        // Owns the tensor, so the reshape reuses its storage — zero copies.
        Ok(x.into_reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut fl = Flatten::new("fl");
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = fl.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let gx = fl.backward(&y).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 2, 2]);
        assert_eq!(gx.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut fl = Flatten::new("fl");
        assert!(fl.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
