use crate::{Layer, LayerKind, NnError, Param, Phase, Result, WeightTransform};
use cbq_tensor::{conv2d, conv2d_backward, conv2d_into, ConvSpec, Scratch, Tensor};
use rand::Rng;

/// 2-D convolution layer with an optional weight transform (fake
/// quantization hook) and He-normal initialization.
///
/// Weights are `[out_channels, in_channels, k, k]`; the bias is optional
/// (the model zoo disables it before batch norm).
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    spec: ConvSpec,
    kernel: usize,
    in_channels: usize,
    out_channels: usize,
    quantize: bool,
    name: String,
    transform: Option<Box<dyn WeightTransform>>,
    cached_input: Option<Tensor>,
    cached_eff_weight: Option<Tensor>,
    cached_output: Option<Tensor>,
    cached_grad_out: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-normal initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero-sized channel or kernel
    /// arguments.
    #[allow(clippy::too_many_arguments)] // mirrors the conv layer's full geometry
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "conv2d channels, kernel and stride must be positive".into(),
            ));
        }
        let name = name.into();
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let weight = Param::new(
            Tensor::randn(&[out_channels, in_channels, kernel, kernel], std, rng),
            true,
            format!("{name}.weight"),
        );
        let bias = bias.then(|| {
            Param::new(
                Tensor::zeros(&[out_channels]),
                false,
                format!("{name}.bias"),
            )
        });
        Ok(Conv2d {
            weight,
            bias,
            spec: ConvSpec::new(stride, padding),
            kernel,
            in_channels,
            out_channels,
            quantize: true,
            name,
            transform: None,
            cached_input: None,
            cached_eff_weight: None,
            cached_output: None,
            cached_grad_out: None,
        })
    }

    /// Marks the layer as excluded from quantization (first/output layers
    /// in the paper's protocol). Returns `self` for builder chaining.
    pub fn without_quantization(mut self) -> Self {
        self.quantize = false;
        self
    }

    /// The full-precision shadow weights.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the shadow weights (tests, surgery).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The effective weights the next forward pass will use (after the
    /// installed transform, if any).
    pub fn effective_weight(&self) -> Tensor {
        match &self.transform {
            Some(t) => t.apply(&self.weight.value),
            None => self.weight.value.clone(),
        }
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let eff = self.effective_weight();
        let out = conv2d(x, &eff, self.bias.as_ref().map(|b| &b.value), self.spec)?;
        if phase != Phase::Infer {
            self.cached_input = Some(x.clone());
            self.cached_eff_weight = Some(eff);
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        x.shape_obj().ensure_rank(4)?;
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let oh = self.spec.out_extent(h, self.kernel)?;
        let ow = self.spec.out_extent(w, self.kernel)?;
        let mut eff = scratch.take_f32(self.weight.value.len());
        match &self.transform {
            Some(t) => t.apply_into(&self.weight.value, &mut eff),
            None => eff.copy_from_slice(self.weight.value.as_slice()),
        }
        let eff = Tensor::from_vec(eff, self.weight.value.shape())?;
        let mut out = scratch.take_f32(n * self.out_channels * oh * ow);
        conv2d_into(
            &x,
            &eff,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
            &mut out,
            scratch,
        )?;
        scratch.recycle_f32(x.into_vec());
        scratch.recycle_f32(eff.into_vec());
        Ok(Tensor::from_vec(out, &[n, self.out_channels, oh, ow])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        let eff =
            self.cached_eff_weight
                .as_ref()
                .ok_or_else(|| NnError::BackwardBeforeForward {
                    layer: self.name.clone(),
                })?;
        let grads = conv2d_backward(input, eff, grad_out, self.spec)?;
        // Straight-through estimator: the weight gradient computed against
        // the effective (quantized) weights is applied to the shadow
        // weights unchanged.
        self.weight.grad.add_scaled(&grads.grad_weight, 1.0)?;
        if let Some(b) = &mut self.bias {
            b.grad.add_scaled(&grads.grad_bias, 1.0)?;
        }
        self.cached_grad_out = Some(grad_out.clone());
        Ok(grads.grad_input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cached_output(&self) -> Option<&Tensor> {
        self.cached_output.as_ref()
    }

    fn cached_grad_out(&self) -> Option<&Tensor> {
        self.cached_grad_out.as_ref()
    }

    fn out_channels(&self) -> Option<usize> {
        Some(self.out_channels)
    }

    fn quantizable(&self) -> bool {
        self.quantize
    }

    fn weight_len(&self) -> Option<usize> {
        Some(self.weight.value.len())
    }

    fn weight_channel_max_abs(&self) -> Option<Vec<f32>> {
        let per = self.weight.value.len() / self.out_channels.max(1);
        Some(
            self.weight
                .value
                .as_slice()
                .chunks(per)
                .map(|c| c.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
                .collect(),
        )
    }

    fn set_weight_transform(&mut self, transform: Option<Box<dyn WeightTransform>>) {
        self.transform = transform;
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_eff_weight = None;
        self.cached_output = None;
        self.cached_grad_out = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug, Clone)]
    struct Halve;
    impl WeightTransform for Halve {
        fn clone_box(&self) -> Box<dyn WeightTransform> {
            Box::new(self.clone())
        }

        fn apply(&self, w: &Tensor) -> Tensor {
            w.scale(0.5)
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let y = conv.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape(), &[2, 8, 6, 6]);
        assert_eq!(conv.out_channels(), Some(8));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, true, &mut rng).unwrap();
        let g = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(matches!(
            conv.backward(&g),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn weight_transform_changes_output_but_not_shadow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new("c", 1, 2, 3, 1, 1, false, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y_plain = conv.forward(&x, Phase::Eval).unwrap();
        let shadow_before = conv.weight().clone();
        conv.set_weight_transform(Some(Box::new(Halve)));
        let y_half = conv.forward(&x, Phase::Eval).unwrap();
        assert_eq!(conv.weight(), &shadow_before, "shadow weights mutated");
        for (a, b) in y_plain.as_slice().iter().zip(y_half.as_slice()) {
            assert!((a * 0.5 - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, true, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y = conv.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::ones(y.shape());
        conv.backward(&gy).unwrap();
        let mut g1 = Tensor::zeros(&[1]);
        conv.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                g1 = p.grad.clone();
            }
        });
        conv.forward(&x, Phase::Train).unwrap();
        conv.backward(&gy).unwrap();
        conv.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                for (a, b) in p.grad.as_slice().iter().zip(g1.as_slice()) {
                    assert!((a - 2.0 * b).abs() < 1e-4, "grad did not accumulate");
                }
            }
        });
    }

    #[test]
    fn ste_applies_grad_to_shadow_even_with_transform() {
        // With a transform installed, the *input* gradient must use the
        // transformed weights while the weight gradient lands on the
        // shadow parameter.
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new("c", 1, 1, 1, 1, 0, false, &mut rng).unwrap();
        conv.set_weight_transform(Some(Box::new(Halve)));
        let x = Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap();
        let y = conv.forward(&x, Phase::Train).unwrap();
        let w = conv.weight().as_slice()[0];
        assert!((y.as_slice()[0] - 0.5 * w * 2.0).abs() < 1e-6);
        let gy = Tensor::ones(&[1, 1, 1, 1]);
        let gx = conv.backward(&gy).unwrap();
        // d(out)/d(in) = effective weight = w/2
        assert!((gx.as_slice()[0] - 0.5 * w).abs() < 1e-6);
        conv.visit_params(&mut |p| {
            // d(out)/d(w_eff) = x = 2.0, applied straight through.
            assert!((p.grad.as_slice()[0] - 2.0).abs() < 1e-6);
        });
    }

    #[test]
    fn zero_config_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(Conv2d::new("c", 0, 1, 3, 1, 1, true, &mut rng).is_err());
        assert!(Conv2d::new("c", 1, 0, 3, 1, 1, true, &mut rng).is_err());
        assert!(Conv2d::new("c", 1, 1, 0, 1, 1, true, &mut rng).is_err());
        assert!(Conv2d::new("c", 1, 1, 3, 0, 1, true, &mut rng).is_err());
    }

    #[test]
    fn without_quantization_clears_flag() {
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2d::new("c", 1, 1, 3, 1, 1, true, &mut rng).unwrap();
        assert!(conv.quantizable());
        let conv = conv.without_quantization();
        assert!(!conv.quantizable());
    }

    #[test]
    fn clear_cache_frees_activations() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, true, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        conv.forward(&x, Phase::Train).unwrap();
        assert!(conv.cached_output().is_some());
        conv.clear_cache();
        assert!(conv.cached_output().is_none());
    }
}
