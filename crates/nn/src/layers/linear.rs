use crate::{Layer, LayerKind, NnError, Param, Phase, Result, WeightTransform};
use cbq_tensor::{Scratch, Tensor};
use rand::Rng;

/// Fully-connected layer `y = x · Wᵀ + b` with weights `[out, in]`.
///
/// Like [`Conv2d`](crate::layers::Conv2d) it supports a weight transform
/// for fake quantization; gradients pass straight through to the shadow
/// weights (STE).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    quantize: bool,
    name: String,
    transform: Option<Box<dyn WeightTransform>>,
    cached_input: Option<Tensor>,
    cached_eff_weight: Option<Tensor>,
    cached_output: Option<Tensor>,
    cached_grad_out: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-normal initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero-sized dimensions.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig(
                "linear dimensions must be positive".into(),
            ));
        }
        let name = name.into();
        let std = (2.0 / in_features as f32).sqrt();
        let weight = Param::new(
            Tensor::randn(&[out_features, in_features], std, rng),
            true,
            format!("{name}.weight"),
        );
        let bias = bias.then(|| {
            Param::new(
                Tensor::zeros(&[out_features]),
                false,
                format!("{name}.bias"),
            )
        });
        Ok(Linear {
            weight,
            bias,
            in_features,
            out_features,
            quantize: true,
            name,
            transform: None,
            cached_input: None,
            cached_eff_weight: None,
            cached_output: None,
            cached_grad_out: None,
        })
    }

    /// Marks the layer as excluded from quantization. Returns `self` for
    /// builder chaining.
    pub fn without_quantization(mut self) -> Self {
        self.quantize = false;
        self
    }

    /// The full-precision shadow weights, `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the shadow weights.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The effective weights after the installed transform, if any.
    pub fn effective_weight(&self) -> Tensor {
        match &self.transform {
            Some(t) => t.apply(&self.weight.value),
            None => self.weight.value.clone(),
        }
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        x.shape_obj().ensure_rank(2)?;
        let eff = self.effective_weight();
        let mut out = x.matmul_nt(&eff)?; // [B, out]
        if let Some(b) = &self.bias {
            let bs = b.value.as_slice();
            let o = self.out_features;
            for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                *v += bs[i % o];
            }
        }
        if phase != Phase::Infer {
            self.cached_input = Some(x.clone());
            self.cached_eff_weight = Some(eff);
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        x.shape_obj().ensure_rank(2)?;
        let batch = x.shape()[0];
        let o = self.out_features;
        let mut eff = scratch.take_f32(self.weight.value.len());
        match &self.transform {
            Some(t) => t.apply_into(&self.weight.value, &mut eff),
            None => eff.copy_from_slice(self.weight.value.as_slice()),
        }
        let eff = Tensor::from_vec(eff, &[o, self.in_features])?;
        let mut out = scratch.take_f32(batch * o);
        x.matmul_nt_into(&eff, &mut out, scratch)?;
        if let Some(b) = &self.bias {
            let bs = b.value.as_slice();
            for (i, v) in out.iter_mut().enumerate() {
                *v += bs[i % o];
            }
        }
        scratch.recycle_f32(x.into_vec());
        scratch.recycle_f32(eff.into_vec());
        Ok(Tensor::from_vec(out, &[batch, o])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        let eff =
            self.cached_eff_weight
                .as_ref()
                .ok_or_else(|| NnError::BackwardBeforeForward {
                    layer: self.name.clone(),
                })?;
        // dW = gyᵀ · x, applied straight through to the shadow weights.
        let gw = grad_out.matmul_tn(input)?;
        self.weight.grad.add_scaled(&gw, 1.0)?;
        if let Some(b) = &mut self.bias {
            let o = self.out_features;
            let gb = b.grad.as_mut_slice();
            for (i, &g) in grad_out.as_slice().iter().enumerate() {
                gb[i % o] += g;
            }
        }
        self.cached_grad_out = Some(grad_out.clone());
        // dX = gy · W_eff
        Ok(grad_out.matmul(eff)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cached_output(&self) -> Option<&Tensor> {
        self.cached_output.as_ref()
    }

    fn cached_grad_out(&self) -> Option<&Tensor> {
        self.cached_grad_out.as_ref()
    }

    fn out_channels(&self) -> Option<usize> {
        Some(self.out_features)
    }

    fn quantizable(&self) -> bool {
        self.quantize
    }

    fn weight_len(&self) -> Option<usize> {
        Some(self.weight.value.len())
    }

    fn weight_channel_max_abs(&self) -> Option<Vec<f32>> {
        Some(
            self.weight
                .value
                .as_slice()
                .chunks(self.in_features)
                .map(|c| c.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
                .collect(),
        )
    }

    fn set_weight_transform(&mut self, transform: Option<Box<dyn WeightTransform>>) {
        self.transform = transform;
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
        self.cached_eff_weight = None;
        self.cached_output = None;
        self.cached_grad_out = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new("fc", 3, 2, true, &mut rng).unwrap();
        lin.weight.value = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5], &[2, 3]).unwrap();
        if let Some(b) = &mut lin.bias {
            b.value = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        }
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0], &[1, 3]).unwrap();
        let y = lin.forward(&x, Phase::Eval).unwrap();
        // row0: 2-6+1 = -3 ; row1: 1+2+3-1 = 5
        assert_eq!(y.as_slice(), &[-3.0, 5.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new("fc", 4, 3, true, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = lin.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::ones(y.shape());
        let gx = lin.backward(&gy).unwrap();
        let eps = 1e-2f32;
        // input grad
        for idx in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (lin.forward(&xp, Phase::Train).unwrap().sum()
                - lin.forward(&xm, Phase::Train).unwrap().sum())
                / (2.0 * eps);
            assert!((fd - gx.as_slice()[idx]).abs() < 1e-2, "input[{idx}]");
        }
        // weight grad (recompute cleanly)
        let mut lin2 = Linear::new("fc", 4, 3, true, &mut rng).unwrap();
        lin2.forward(&x, Phase::Train).unwrap();
        lin2.backward(&gy).unwrap();
        let mut wgrad = Tensor::zeros(&[1]);
        lin2.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                wgrad = p.grad.clone();
            }
        });
        for idx in [0usize, 5, 11] {
            let mut wp = lin2.weight.value.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = lin2.weight.value.clone();
            wm.as_mut_slice()[idx] -= eps;
            let orig = lin2.weight.value.clone();
            lin2.weight.value = wp;
            let lp = lin2.forward(&x, Phase::Train).unwrap().sum();
            lin2.weight.value = wm;
            let lm = lin2.forward(&x, Phase::Train).unwrap().sum();
            lin2.weight.value = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - wgrad.as_slice()[idx]).abs() < 1e-2, "weight[{idx}]");
        }
    }

    #[test]
    fn bias_grad_is_column_sum() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lin = Linear::new("fc", 2, 2, true, &mut rng).unwrap();
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng);
        lin.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        lin.backward(&gy).unwrap();
        lin.visit_params(&mut |p| {
            if p.name.ends_with("bias") {
                assert_eq!(p.grad.as_slice(), &[9.0, 12.0]);
            }
        });
    }

    #[test]
    fn rejects_wrong_rank() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lin = Linear::new("fc", 4, 2, true, &mut rng).unwrap();
        let x = Tensor::zeros(&[4]);
        assert!(lin.forward(&x, Phase::Eval).is_err());
    }

    #[test]
    fn zero_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Linear::new("fc", 0, 2, true, &mut rng).is_err());
        assert!(Linear::new("fc", 2, 0, true, &mut rng).is_err());
    }
}
