// Per-channel statistics index several parallel arrays at once;
// explicit indices are clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]

use crate::{Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::{Scratch, Tensor};

/// Batch normalization over `[N, C, H, W]` with learnable affine
/// parameters and running statistics.
///
/// Backward after an eval-mode forward is supported (the importance
/// scoring pass of the paper runs backward through a frozen network):
/// in that case the statistics are constants, so
/// `dx = gy * gamma / sqrt(running_var + eps)`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    eps: f32,
    momentum: f32,
    name: String,
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
    cached_phase: Phase,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with `gamma = 1`, `beta = 0`,
    /// `eps = 1e-5` and running-stat momentum `0.1`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a zero channel count.
    pub fn new(name: impl Into<String>, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidConfig(
                "batchnorm needs at least one channel".into(),
            ));
        }
        let name = name.into();
        Ok(BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels]), false, format!("{name}.gamma")),
            beta: Param::new(Tensor::zeros(&[channels]), false, format!("{name}.beta")),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            eps: 1e-5,
            momentum: 0.1,
            name,
            cached_xhat: None,
            cached_inv_std: Vec::new(),
            cached_phase: Phase::Eval,
        })
    }

    /// The running per-channel means (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running per-channel variances (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        x.shape_obj().ensure_rank(4)?;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        if c != self.channels {
            return Err(NnError::Tensor(cbq_tensor::TensorError::ShapeMismatch {
                lhs: x.shape().to_vec(),
                rhs: vec![n, self.channels, h, w],
            }));
        }
        let m = (n * h * w) as f32;
        let src = x.as_slice();
        let plane = h * w;
        let (mean, var): (Vec<f32>, Vec<f32>) = if phase == Phase::Train {
            let mut mean = vec![0.0f64; c];
            let mut var = vec![0.0f64; c];
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        mean[ci] += v as f64;
                    }
                }
            }
            for mc in mean.iter_mut() {
                *mc /= m as f64;
            }
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        let d = v as f64 - mean[ci];
                        var[ci] += d * d;
                    }
                }
            }
            for vc in var.iter_mut() {
                *vc /= m as f64;
            }
            let mean: Vec<f32> = mean.iter().map(|&v| v as f32).collect();
            let var: Vec<f32> = var.iter().map(|&v| v as f32).collect();
            for ci in 0..c {
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let mut xhat = Tensor::zeros(x.shape());
        let mut out = Tensor::zeros(x.shape());
        {
            let xh = xhat.as_mut_slice();
            let o = out.as_mut_slice();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let (mu, is, gc, bc) = (mean[ci], inv_std[ci], g[ci], b[ci]);
                    for k in base..base + plane {
                        let v = (src[k] - mu) * is;
                        xh[k] = v;
                        o[k] = gc * v + bc;
                    }
                }
            }
        }
        if phase != Phase::Infer {
            self.cached_xhat = Some(xhat);
            self.cached_inv_std = inv_std;
            self.cached_phase = phase;
        }
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        mut x: Tensor,
        phase: Phase,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        x.shape_obj().ensure_rank(4)?;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        if c != self.channels {
            return Err(NnError::Tensor(cbq_tensor::TensorError::ShapeMismatch {
                lhs: x.shape().to_vec(),
                rhs: vec![n, self.channels, h, w],
            }));
        }
        let plane = h * w;
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let data = x.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                // Identical op sequence to the eval branch of `forward`
                // ((v - mu) * inv_std, then gamma * xhat + beta), so the
                // fused in-place pass is bit-for-bit equal to it.
                let mu = self.running_mean[ci];
                let is = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let (gc, bc) = (g[ci], b[ci]);
                let base = (ni * c + ci) * plane;
                for v in &mut data[base..base + plane] {
                    let xh = (*v - mu) * is;
                    *v = gc * xh + bc;
                }
            }
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let xhat = self
            .cached_xhat
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        xhat.shape_obj().ensure_same(grad_out.shape_obj())?;
        let (n, c, h, w) = (
            xhat.shape()[0],
            xhat.shape()[1],
            xhat.shape()[2],
            xhat.shape()[3],
        );
        let plane = h * w;
        let m = (n * h * w) as f32;
        let gy = grad_out.as_slice();
        let xh = xhat.as_slice();
        let g = self.gamma.value.as_slice();

        // Parameter gradients are identical in both phases.
        let mut dgamma = vec![0.0f64; c];
        let mut dbeta = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for k in base..base + plane {
                    dgamma[ci] += (gy[k] * xh[k]) as f64;
                    dbeta[ci] += gy[k] as f64;
                }
            }
        }
        for ci in 0..c {
            self.gamma.grad.as_mut_slice()[ci] += dgamma[ci] as f32;
            self.beta.grad.as_mut_slice()[ci] += dbeta[ci] as f32;
        }

        let mut grad_in = Tensor::zeros(xhat.shape());
        let gi = grad_in.as_mut_slice();
        if self.cached_phase == Phase::Train {
            // dx = (gamma * inv_std / m) * (m*gy - sum(gy) - xhat * sum(gy*xhat))
            for ci in 0..c {
                let sum_gy = dbeta[ci] as f32;
                let sum_gy_xh = dgamma[ci] as f32;
                let coef = g[ci] * self.cached_inv_std[ci] / m;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for k in base..base + plane {
                        gi[k] = coef * (m * gy[k] - sum_gy - xh[k] * sum_gy_xh);
                    }
                }
            }
        } else {
            // Statistics are constants in eval mode.
            for ci in 0..c {
                let coef = g[ci] * self.cached_inv_std[ci];
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for k in base..base + plane {
                        gi[k] = coef * gy[k];
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::BatchNorm
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_xhat = None;
        self.cached_inv_std.clear();
    }

    fn extra_state(&self) -> Option<Vec<f32>> {
        let mut state = self.running_mean.clone();
        state.extend_from_slice(&self.running_var);
        Some(state)
    }

    fn set_extra_state(&mut self, state: &[f32]) {
        if state.len() == 2 * self.channels {
            self.running_mean.copy_from_slice(&state[..self.channels]);
            self.running_var.copy_from_slice(&state[self.channels..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn train_forward_normalizes_per_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new("bn", 3).unwrap();
        let x = Tensor::from_fn(&[4, 3, 5, 5], |_| rng.gen_range(-2.0..5.0));
        let y = bn.forward(&x, Phase::Train).unwrap();
        // each channel of y should have ~0 mean and ~1 variance
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hi in 0..5 {
                    for wi in 0..5 {
                        vals.push(y.at(&[ni, ci, hi, wi]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new("bn", 1).unwrap();
        // constant input with mean 3, var 0
        let x = Tensor::full(&[2, 1, 4, 4], 3.0);
        for _ in 0..50 {
            bn.forward(&x, Phase::Train).unwrap();
        }
        assert!((bn.running_mean()[0] - 3.0).abs() < 0.05);
        assert!(bn.running_var()[0] < 0.05);
        let _ = rng.gen_range(0..2); // silence unused
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1).unwrap();
        bn.running_mean = vec![2.0];
        bn.running_var = vec![4.0];
        let x = Tensor::full(&[1, 1, 2, 2], 6.0);
        let y = bn.forward(&x, Phase::Eval).unwrap();
        // (6-2)/2 = 2
        for &v in y.as_slice() {
            assert!((v - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn infer_matches_eval_bit_for_bit_without_caching() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut bn = BatchNorm2d::new("bn", 3).unwrap();
        bn.running_mean = vec![0.3, -1.2, 2.0];
        bn.running_var = vec![0.9, 4.0, 0.2];
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.7, -2.0], &[3]).unwrap();
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.4, 3.0], &[3]).unwrap();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |_| rng.gen_range(-3.0..3.0));
        let eval = bn.forward(&x, Phase::Eval).unwrap();
        let mut bn2 = bn.clone();
        bn2.clear_cache();
        let mut scratch = Scratch::new();
        let infer = bn2
            .forward_scratch(x.clone(), Phase::Infer, &mut scratch)
            .unwrap();
        for (a, b) in eval.as_slice().iter().zip(infer.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(bn2.backward(&Tensor::ones(eval.shape())).is_err());
    }

    #[test]
    fn train_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new("bn", 2).unwrap();
        // random gamma/beta so gradients are non-trivial
        bn.gamma.value = Tensor::randn(&[2], 1.0, &mut rng).map(|v| v + 1.5);
        bn.beta.value = Tensor::randn(&[2], 0.5, &mut rng);
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        bn.forward(&x, Phase::Train).unwrap();
        // loss = sum(y * k) with a fixed random k, so grad_out = k.
        let k = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let gx = bn.backward(&k).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 17, 26, 35] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = bn
                .forward(&xp, Phase::Train)
                .unwrap()
                .mul(&k)
                .unwrap()
                .sum();
            let lm = bn
                .forward(&xm, Phase::Train)
                .unwrap()
                .mul(&k)
                .unwrap()
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.as_slice()[idx]).abs() < 3e-2,
                "x[{idx}]: fd {fd} vs {}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn eval_backward_is_gain_only() {
        let mut bn = BatchNorm2d::new("bn", 1).unwrap();
        bn.running_mean = vec![0.0];
        bn.running_var = vec![3.0];
        bn.gamma.value = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        let x = Tensor::full(&[1, 1, 2, 2], 1.0);
        bn.forward(&x, Phase::Eval).unwrap();
        let gy = Tensor::ones(&[1, 1, 2, 2]);
        let gx = bn.backward(&gy).unwrap();
        let expect = 2.0 / (3.0f32 + 1e-5).sqrt();
        for &v in gx.as_slice() {
            assert!((v - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn gamma_beta_grads() {
        let mut bn = BatchNorm2d::new("bn", 1).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        bn.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::ones(&[1, 1, 2, 2]);
        bn.backward(&gy).unwrap();
        bn.visit_params(&mut |p| {
            if p.name.ends_with("beta") {
                assert!((p.grad.as_slice()[0] - 4.0).abs() < 1e-4);
            }
            if p.name.ends_with("gamma") {
                // sum of xhat over a symmetric batch is ~0
                assert!(p.grad.as_slice()[0].abs() < 1e-3);
            }
        });
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut bn = BatchNorm2d::new("bn", 2).unwrap();
        let x = Tensor::zeros(&[1, 3, 2, 2]);
        assert!(bn.forward(&x, Phase::Train).is_err());
        assert!(BatchNorm2d::new("bn", 0).is_err());
    }
}
