use crate::{Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, ConvSpec, MaxPoolIndices, PoolSpec, Scratch, Tensor,
};

/// Max-pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2dLayer {
    spec: PoolSpec,
    name: String,
    cached_indices: Option<MaxPoolIndices>,
}

impl MaxPool2dLayer {
    /// Creates a max-pool layer; `kernel`/`stride` of 2/2 halves the map.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        MaxPool2dLayer {
            spec: PoolSpec::new(kernel, stride),
            name: name.into(),
            cached_indices: None,
        }
    }
}

impl Layer for MaxPool2dLayer {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let (out, idx) = max_pool2d(x, self.spec)?;
        if phase != Phase::Infer {
            self.cached_indices = Some(idx);
        }
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        x.shape_obj().ensure_rank(4)?;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let cs = ConvSpec {
            stride: self.spec.stride,
            padding: 0,
        };
        let oh = cs.out_extent(h, self.spec.kernel)?;
        let ow = cs.out_extent(w, self.spec.kernel)?;
        let mut out = scratch.take_f32(n * c * oh * ow);
        let data = x.as_slice();
        // Same scan as max_pool2d, minus the winner-index bookkeeping the
        // backward pass would need — Infer never runs backward.
        for ni in 0..n {
            for ci in 0..c {
                let in_base = (ni * c + ci) * h * w;
                let out_base = (ni * c + ci) * oh * ow;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ki in 0..self.spec.kernel {
                            for kj in 0..self.spec.kernel {
                                let p = in_base
                                    + (oi * self.spec.stride + ki) * w
                                    + oj * self.spec.stride
                                    + kj;
                                if data[p] > best {
                                    best = data[p];
                                }
                            }
                        }
                        out[out_base + oi * ow + oj] = best;
                    }
                }
            }
        }
        scratch.recycle_f32(x.into_vec());
        Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let idx = self
            .cached_indices
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        Ok(max_pool2d_backward(grad_out, idx)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_indices = None;
    }
}

/// Average-pooling layer.
#[derive(Debug, Clone)]
pub struct AvgPool2dLayer {
    spec: PoolSpec,
    name: String,
    cached_dims: Option<[usize; 4]>,
}

impl AvgPool2dLayer {
    /// Creates an average-pool layer.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        AvgPool2dLayer {
            spec: PoolSpec::new(kernel, stride),
            name: name.into(),
            cached_dims: None,
        }
    }
}

impl Layer for AvgPool2dLayer {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let dims = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let out = avg_pool2d(x, self.spec)?;
        if phase != Phase::Infer {
            self.cached_dims = Some(dims);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        Ok(avg_pool2d_backward(grad_out, dims, self.spec)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_dims = None;
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]` (the ResNet head).
#[derive(Debug, Clone)]
pub struct GlobalAvgPoolLayer {
    name: String,
    cached_dims: Option<[usize; 4]>,
}

impl GlobalAvgPoolLayer {
    /// Creates a global average-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPoolLayer {
            name: name.into(),
            cached_dims: None,
        }
    }
}

impl Layer for GlobalAvgPoolLayer {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let dims = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let out = global_avg_pool(x)?;
        if phase != Phase::Infer {
            self.cached_dims = Some(dims);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        Ok(global_avg_pool_backward(grad_out, dims)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_dims = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_round_trip() {
        let mut p = MaxPool2dLayer::new("mp", 2, 2);
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let gy = Tensor::ones(y.shape());
        let gx = p.backward(&gy).unwrap();
        assert_eq!(gx.sum(), 4.0);
    }

    #[test]
    fn avg_pool_layer_round_trip() {
        let mut p = AvgPool2dLayer::new("ap", 2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = p.forward(&x, Phase::Eval).unwrap();
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let gx = p.backward(&Tensor::ones(y.shape())).unwrap();
        assert!((gx.sum() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn global_pool_layer_round_trip() {
        let mut p = GlobalAvgPoolLayer::new("gap");
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        let gx = p.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4, 4]);
        assert!((gx.sum() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn max_pool_infer_matches_eval_without_caching() {
        let mut p = MaxPool2dLayer::new("mp", 2, 2);
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| ((i * 37) % 19) as f32 - 9.0);
        let eval = p.forward(&x, Phase::Eval).unwrap();
        let mut scratch = Scratch::new();
        let mut p2 = MaxPool2dLayer::new("mp", 2, 2);
        let infer = p2
            .forward_scratch(x.clone(), Phase::Infer, &mut scratch)
            .unwrap();
        assert_eq!(eval.shape(), infer.shape());
        assert_eq!(eval.as_slice(), infer.as_slice());
        // Infer must not leave a backward-usable cache behind.
        assert!(p2.backward(&Tensor::ones(infer.shape())).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(MaxPool2dLayer::new("p", 2, 2)
            .backward(&Tensor::zeros(&[1, 1, 1, 1]))
            .is_err());
        assert!(AvgPool2dLayer::new("p", 2, 2)
            .backward(&Tensor::zeros(&[1, 1, 1, 1]))
            .is_err());
        assert!(GlobalAvgPoolLayer::new("p")
            .backward(&Tensor::zeros(&[1, 1]))
            .is_err());
    }
}
