use crate::{Layer, LayerKind, NnError, Param, Phase, Result};
use cbq_tensor::{Scratch, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)` so eval-mode
/// forward passes need no rescaling. Identity in eval mode.
///
/// The layer owns its RNG (seeded at construction) so training runs stay
/// reproducible without threading an RNG through `forward`.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    name: String,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for `p` outside `[0, 1)`.
    pub fn new(name: impl Into<String>, p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig(format!(
                "dropout p {p} outside [0, 1)"
            )));
        }
        Ok(Dropout {
            p,
            name: name.into(),
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        })
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if phase == Phase::Infer {
            // Identity, and no mask cache: Infer never runs backward.
            return Ok(x.clone());
        }
        if phase == Phase::Eval || self.p == 0.0 {
            self.cached_mask = Some(Tensor::ones(x.shape()));
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let rng = &mut self.rng;
        let mask = Tensor::from_fn(
            x.shape(),
            |_| {
                if rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            },
        );
        let out = x.mul(&mask)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        _scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if phase != Phase::Infer {
            return self.forward(&x, phase);
        }
        // Owns the input: pass the buffer straight through, zero copies.
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name.clone(),
            })?;
        Ok(grad_out.mul(mask)?)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clear_cache(&mut self) {
        self.cached_mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("d", 0.5, 1).unwrap();
        let x = Tensor::from_fn(&[4, 4], |i| i as f32);
        let y = d.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_drops_and_rescales() {
        let mut d = Dropout::new("d", 0.5, 2).unwrap();
        let x = Tensor::ones(&[1, 1000]);
        let y = d.forward(&x, Phase::Train).unwrap();
        let zeros = y.count(|v| v == 0.0);
        let kept = y.count(|v| (v - 2.0).abs() < 1e-6);
        assert_eq!(zeros + kept, 1000);
        assert!(
            (350..650).contains(&zeros),
            "dropped {zeros} of 1000 at p=0.5"
        );
        // expectation preserved
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn backward_reuses_mask() {
        let mut d = Dropout::new("d", 0.5, 3).unwrap();
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, Phase::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[1, 100])).unwrap();
        // gradient zero exactly where output was dropped
        for (gy, yy) in g.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(*gy == 0.0, *yy == 0.0);
        }
    }

    #[test]
    fn zero_p_passes_through_in_train() {
        let mut d = Dropout::new("d", 0.0, 4).unwrap();
        let x = Tensor::from_fn(&[8], |i| i as f32);
        assert_eq!(d.forward(&x, Phase::Train).unwrap(), x);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Dropout::new("d", 1.0, 0).is_err());
        assert!(Dropout::new("d", -0.1, 0).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new("d", 0.3, 5).unwrap();
        assert!(d.backward(&Tensor::zeros(&[1])).is_err());
    }
}
