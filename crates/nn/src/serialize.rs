//! Model state serialization: capture and restore every parameter and
//! every layer's extra state (batch-norm running statistics) by name.
//!
//! The format is a plain name→tensor map, serde-serializable, so trained
//! models survive process boundaries and a searched quantization can be
//! re-applied later (see the `deploy_arrangement` example).

use crate::{Layer, NnError, Result, Sequential};
use cbq_resilience::{ByteReader, ByteWriter};
use cbq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serializable snapshot of a network's learnable and running state.
///
/// # Example
///
/// ```
/// use cbq_nn::{models, state_dict, load_state_dict, Layer, Phase};
/// use cbq_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut a = models::mlp(&[4, 8, 2], &mut rng)?;
/// let mut b = models::mlp(&[4, 8, 2], &mut rng)?; // different init
/// let snapshot = state_dict(&mut a);
/// load_state_dict(&mut b, &snapshot)?;
/// let x = Tensor::randn(&[1, 4], 1.0, &mut rng);
/// assert_eq!(a.forward(&x, Phase::Eval)?, b.forward(&x, Phase::Eval)?);
/// # Ok::<(), cbq_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDict {
    /// Parameter values by fully-qualified name.
    pub params: BTreeMap<String, Tensor>,
    /// Per-layer extra state (running statistics) by layer name.
    pub extra: BTreeMap<String, Vec<f32>>,
}

impl StateDict {
    /// Number of parameter tensors captured.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the snapshot holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Encodes the snapshot with the checkpoint codec. Floats are stored
    /// as raw IEEE-754 bits, so decode reproduces them bit-for-bit, and
    /// `BTreeMap` iteration makes the byte stream deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.params.len());
        for (name, tensor) in &self.params {
            w.put_str(name);
            w.put_usize_slice(tensor.shape());
            w.put_f32_slice(tensor.as_slice());
        }
        w.put_usize(self.extra.len());
        for (name, state) in &self.extra {
            w.put_str(name);
            w.put_f32_slice(state);
        }
        w.into_bytes()
    }

    /// Decodes a snapshot written by [`StateDict::to_bytes`].
    ///
    /// The whole payload is validated before anything is returned, so a
    /// truncated or corrupted input can never yield a partially loaded
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] describing the first decode
    /// failure (truncation, shape/data mismatch, or trailing garbage).
    pub fn from_bytes(bytes: &[u8]) -> Result<StateDict> {
        let bad =
            |e: &dyn std::fmt::Display| NnError::InvalidConfig(format!("state dict decode: {e}"));
        let mut r = ByteReader::new(bytes);
        let mut dict = StateDict::default();
        let n_params = r.get_usize().map_err(|e| bad(&e))?;
        for _ in 0..n_params {
            let name = r.get_string().map_err(|e| bad(&e))?;
            let shape = r.get_usize_vec().map_err(|e| bad(&e))?;
            let data = r.get_f32_vec().map_err(|e| bad(&e))?;
            let tensor = Tensor::from_vec(data, &shape).map_err(|e| {
                NnError::InvalidConfig(format!("state dict decode: tensor {name}: {e}"))
            })?;
            dict.params.insert(name, tensor);
        }
        let n_extra = r.get_usize().map_err(|e| bad(&e))?;
        for _ in 0..n_extra {
            let name = r.get_string().map_err(|e| bad(&e))?;
            let state = r.get_f32_vec().map_err(|e| bad(&e))?;
            dict.extra.insert(name, state);
        }
        if !r.is_exhausted() {
            return Err(NnError::InvalidConfig(format!(
                "state dict decode: {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(dict)
    }
}

/// Captures a snapshot of every parameter and every layer's extra state.
pub fn state_dict(net: &mut Sequential) -> StateDict {
    let mut dict = StateDict::default();
    net.visit_params(&mut |p| {
        dict.params.insert(p.name.clone(), p.value.clone());
    });
    net.visit_layers_mut(&mut |l| {
        if let Some(state) = l.extra_state() {
            dict.extra.insert(l.name().to_string(), state);
        }
    });
    dict
}

/// Restores a snapshot into `net`, matching by name.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when a parameter is missing from
/// the snapshot or its shape disagrees; the network may be partially
/// updated in that case, so reload a known-good snapshot on failure.
pub fn load_state_dict(net: &mut Sequential, dict: &StateDict) -> Result<()> {
    let mut error: Option<NnError> = None;
    net.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        match dict.params.get(&p.name) {
            None => {
                error = Some(NnError::InvalidConfig(format!(
                    "parameter {} missing from state dict",
                    p.name
                )));
            }
            Some(value) if value.shape() != p.value.shape() => {
                error = Some(NnError::InvalidConfig(format!(
                    "parameter {} has shape {:?}, snapshot holds {:?}",
                    p.name,
                    p.value.shape(),
                    value.shape()
                )));
            }
            Some(value) => {
                p.value = value.clone();
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    net.visit_layers_mut(&mut |l| {
        if let Some(state) = dict.extra.get(l.name()) {
            l.set_extra_state(state);
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{models, Phase, Trainer, TrainerConfig};
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_reproduces_outputs_including_bn_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = SyntheticImages::generate(
            &SyntheticSpec {
                height: 8,
                width: 8,
                ..SyntheticSpec::tiny(2)
            },
            &mut rng,
        )
        .unwrap();
        let rcfg = models::ResNetConfig {
            in_channels: 1,
            base_width: 4,
            expand: 1,
            blocks_per_stage: 1,
            num_classes: 2,
        };
        let mut a = models::resnet20(&rcfg, &mut rng).unwrap();
        // train a little so BN running stats are non-trivial
        let tc = TrainerConfig {
            batch_size: 8,
            ..TrainerConfig::quick(2, 0.05)
        };
        Trainer::new(tc)
            .fit(&mut a, data.train(), &mut rng)
            .unwrap();
        let snapshot = state_dict(&mut a);
        assert!(!snapshot.is_empty());
        assert!(snapshot.extra.keys().any(|k| k.contains("bn")));

        let mut b = models::resnet20(&rcfg, &mut rng).unwrap();
        load_state_dict(&mut b, &snapshot).unwrap();
        let x = data.test().batches(4).next().unwrap().images;
        let ya = a.forward(&x, Phase::Eval).unwrap();
        let yb = b.forward(&x, Phase::Eval).unwrap();
        assert!(ya.sub(&yb).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = models::mlp(&[4, 6, 2], &mut rng).unwrap();
        let dict = state_dict(&mut net);
        let json = serde_json::to_string(&dict).unwrap();
        let back: StateDict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dict);
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = models::mlp(&[4, 6, 2], &mut rng).unwrap();
        let mut dict = state_dict(&mut net);
        dict.extra.insert("bn0".into(), vec![0.5, -1.25, 3.0]);
        let bytes = dict.to_bytes();
        let back = StateDict::from_bytes(&bytes).unwrap();
        assert_eq!(back, dict);
        // deterministic encoding: same dict, same bytes
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncated_bytes_error_and_never_load_partial_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = models::mlp(&[4, 6, 2], &mut rng).unwrap();
        let dict = state_dict(&mut net);
        let bytes = dict.to_bytes();
        for cut in 0..bytes.len() {
            match StateDict::from_bytes(&bytes[..cut]) {
                Err(NnError::InvalidConfig(_)) => {}
                Ok(_) => panic!("truncation at {cut} silently produced a state dict"),
                Err(e) => panic!("unexpected error kind at {cut}: {e}"),
            }
        }
    }

    #[test]
    fn corrupted_lengths_and_trailing_bytes_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = models::mlp(&[4, 2], &mut rng).unwrap();
        let dict = state_dict(&mut net);
        let bytes = dict.to_bytes();
        // absurd parameter count in the header
        let mut bad = bytes.clone();
        bad[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(StateDict::from_bytes(&bad).is_err());
        // trailing garbage after a valid payload
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(StateDict::from_bytes(&extra).is_err());
        assert!(StateDict::from_bytes(&[]).is_err());
    }

    #[test]
    fn missing_and_mismatched_params_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = models::mlp(&[4, 6, 2], &mut rng).unwrap();
        let mut big = models::mlp(&[4, 8, 2], &mut rng).unwrap();
        let dict = state_dict(&mut small);
        assert!(load_state_dict(&mut big, &dict).is_err());
        let empty = StateDict::default();
        assert!(load_state_dict(&mut small, &empty).is_err());
    }
}
