//! Classification losses: softmax cross-entropy and the knowledge
//! distillation loss of the paper's refining phase (Eq. 10).

use crate::{NnError, Result};
use cbq_tensor::Tensor;

/// Row-wise softmax of a `[B, C]` logits tensor.
///
/// # Errors
///
/// Returns a rank error for non-rank-2 input.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    logits.shape_obj().ensure_rank(2)?;
    let (b, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[b, c]);
    let src = logits.as_slice();
    let dst = out.as_mut_slice();
    for r in 0..b {
        let row = &src[r * c..(r + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            dst[r * c + j] = e;
            z += e;
        }
        for v in &mut dst[r * c..(r + 1) * c] {
            *v /= z;
        }
    }
    Ok(out)
}

/// One-hot encodes labels into a `[B, C]` tensor.
///
/// # Errors
///
/// Returns [`NnError::LabelOutOfRange`] for a label `>= num_classes`.
pub fn one_hot(labels: &[usize], num_classes: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros(&[labels.len(), num_classes]);
    for (i, &l) in labels.iter().enumerate() {
        if l >= num_classes {
            return Err(NnError::LabelOutOfRange {
                label: l,
                num_classes,
            });
        }
        out.as_mut_slice()[i * num_classes + l] = 1.0;
    }
    Ok(out)
}

/// Mean softmax cross-entropy and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad = (softmax(logits) - onehot) / B`.
///
/// # Errors
///
/// Returns a batch-size mismatch or label error for inconsistent inputs.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    logits.shape_obj().ensure_rank(2)?;
    let (b, c) = (logits.shape()[0], logits.shape()[1]);
    if b != labels.len() {
        return Err(NnError::BatchMismatch {
            lhs: b,
            rhs: labels.len(),
        });
    }
    if b == 0 {
        return Ok((0.0, Tensor::zeros(&[0, c])));
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let g = grad.as_mut_slice();
    for (i, &l) in labels.iter().enumerate() {
        if l >= c {
            return Err(NnError::LabelOutOfRange {
                label: l,
                num_classes: c,
            });
        }
        let p = probs.as_slice()[i * c + l].max(1e-12);
        loss -= (p as f64).ln();
        g[i * c + l] -= 1.0;
    }
    let scale = 1.0 / b as f32;
    for v in g.iter_mut() {
        *v *= scale;
    }
    Ok(((loss / b as f64) as f32, grad))
}

/// Classification accuracy of logits against labels, in `[0, 1]`.
///
/// # Errors
///
/// Returns a batch-size mismatch for inconsistent inputs.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::BatchMismatch {
            lhs: preds.len(),
            rhs: labels.len(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

/// The knowledge-distillation loss of the paper's refining phase
/// (Eq. 10): `L = alpha * L_ce + (1 - alpha) * KL(teacher ‖ student)`.
///
/// The paper's formula as printed, `Σ Y log(Y_fp / Y)`, is the *negative*
/// KL divergence; minimizing it would push the student away from the
/// teacher, so — like every KD implementation — we use the standard
/// direction `KL(teacher ‖ student) = Σ T log(T / S)` (noted in
/// DESIGN.md).
///
/// Returns `(loss, grad)` where the gradient with respect to the student
/// logits is `[alpha * (S - onehot) + (1 - alpha) * (S - T)] / B`.
///
/// # Errors
///
/// Returns shape/batch errors for inconsistent operands or an
/// [`NnError::InvalidConfig`] for `alpha` outside `[0, 1]`.
pub fn kd_loss(
    student_logits: &Tensor,
    teacher_probs: &Tensor,
    labels: &[usize],
    alpha: f32,
) -> Result<(f32, Tensor)> {
    let parts = kd_loss_parts(student_logits, teacher_probs, labels, alpha)?;
    Ok((parts.loss, parts.grad))
}

/// The KD loss with its two terms broken out, for telemetry and loss-curve
/// diagnostics.
#[derive(Debug, Clone)]
pub struct KdLossParts {
    /// The (already `alpha`-weighted) cross-entropy term, batch-averaged.
    pub ce: f32,
    /// The (already `(1 - alpha)`-weighted) `KL(teacher ‖ student)` term,
    /// batch-averaged.
    pub kl: f32,
    /// Total loss, `ce + kl`.
    pub loss: f32,
    /// Gradient with respect to the student logits.
    pub grad: Tensor,
}

/// [`kd_loss`] with the cross-entropy and KL terms reported separately.
///
/// # Errors
///
/// Same as [`kd_loss`].
pub fn kd_loss_parts(
    student_logits: &Tensor,
    teacher_probs: &Tensor,
    labels: &[usize],
    alpha: f32,
) -> Result<KdLossParts> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(NnError::InvalidConfig(format!(
            "alpha {alpha} outside [0, 1]"
        )));
    }
    student_logits
        .shape_obj()
        .ensure_same(teacher_probs.shape_obj())?;
    let (b, c) = (student_logits.shape()[0], student_logits.shape()[1]);
    if b != labels.len() {
        return Err(NnError::BatchMismatch {
            lhs: b,
            rhs: labels.len(),
        });
    }
    if b == 0 {
        return Ok(KdLossParts {
            ce: 0.0,
            kl: 0.0,
            loss: 0.0,
            grad: Tensor::zeros(&[0, c]),
        });
    }
    let s = softmax_rows(student_logits)?;
    let mut ce = 0.0f64;
    let mut kl = 0.0f64;
    let mut grad = Tensor::zeros(&[b, c]);
    let g = grad.as_mut_slice();
    let sp = s.as_slice();
    let tp = teacher_probs.as_slice();
    for (i, &l) in labels.iter().enumerate() {
        if l >= c {
            return Err(NnError::LabelOutOfRange {
                label: l,
                num_classes: c,
            });
        }
        // cross-entropy term
        let p = sp[i * c + l].max(1e-12);
        ce -= alpha as f64 * (p as f64).ln();
        // KL(T || S) term
        for j in 0..c {
            let t = tp[i * c + j];
            if t > 1e-12 {
                kl += (1.0 - alpha) as f64
                    * t as f64
                    * ((t as f64).ln() - (sp[i * c + j].max(1e-12) as f64).ln());
            }
            g[i * c + j] = alpha * sp[i * c + j] + (1.0 - alpha) * (sp[i * c + j] - t);
        }
        g[i * c + l] -= alpha;
    }
    let scale = 1.0 / b as f32;
    for v in g.iter_mut() {
        *v *= scale;
    }
    let ce = (ce / b as f64) as f32;
    let kl = (kl / b as f64) as f32;
    Ok(KdLossParts {
        ce,
        kl,
        loss: ce + kl,
        grad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Tensor::randn(&[5, 7], 3.0, &mut rng);
        let p = softmax_rows(&logits).unwrap();
        for r in 0..5 {
            let s: f32 = p.row(r).unwrap().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).unwrap().as_slice().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let p = softmax_rows(&a).unwrap();
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        let b = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let q = softmax_rows(&b).unwrap();
        for (x, y) in p.as_slice().iter().zip(q.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn one_hot_encodes() {
        let t = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(t.as_slice(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[4, 8]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (8.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [1usize, 3, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..12 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fd = (cross_entropy(&lp, &labels).unwrap().0
                - cross_entropy(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!((fd - grad.as_slice()[idx]).abs() < 1e-3, "logit[{idx}]");
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let logits = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let (_, grad) = cross_entropy(&logits, &[0, 4]).unwrap();
        for r in 0..2 {
            assert!(grad.row(r).unwrap().sum().abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn kd_loss_zero_when_student_equals_teacher_and_alpha_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0], &[2, 2]).unwrap();
        let teacher = softmax_rows(&logits).unwrap();
        let (loss, grad) = kd_loss(&logits, &teacher, &[0, 1], 0.0).unwrap();
        assert!(loss.abs() < 1e-5);
        assert!(grad.max_abs() < 1e-6);
    }

    #[test]
    fn kd_loss_reduces_to_ce_at_alpha_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let teacher = softmax_rows(&Tensor::randn(&[3, 4], 1.0, &mut rng)).unwrap();
        let labels = [0usize, 2, 3];
        let (kd, kd_grad) = kd_loss(&logits, &teacher, &labels, 1.0).unwrap();
        let (ce, ce_grad) = cross_entropy(&logits, &labels).unwrap();
        assert!((kd - ce).abs() < 1e-5);
        for (a, b) in kd_grad.as_slice().iter().zip(ce_grad.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn kd_grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let logits = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let teacher = softmax_rows(&Tensor::randn(&[2, 3], 1.0, &mut rng)).unwrap();
        let labels = [2usize, 0];
        let alpha = 0.3;
        let (_, grad) = kd_loss(&logits, &teacher, &labels, alpha).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fd = (kd_loss(&lp, &teacher, &labels, alpha).unwrap().0
                - kd_loss(&lm, &teacher, &labels, alpha).unwrap().0)
                / (2.0 * eps);
            assert!((fd - grad.as_slice()[idx]).abs() < 1e-3, "logit[{idx}]");
        }
    }

    #[test]
    fn kd_rejects_bad_alpha_and_shapes() {
        let l = Tensor::zeros(&[1, 2]);
        let t = Tensor::zeros(&[1, 2]);
        assert!(kd_loss(&l, &t, &[0], 1.5).is_err());
        assert!(kd_loss(&l, &Tensor::zeros(&[1, 3]), &[0], 0.5).is_err());
        assert!(kd_loss(&l, &t, &[0, 1], 0.5).is_err());
    }
}
