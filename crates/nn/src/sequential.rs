use crate::{Layer, LayerKind, Param, Phase, Result, WeightTransform};
use cbq_tensor::{Scratch, Tensor};

/// An ordered stack of layers, itself a [`Layer`], so residual blocks and
/// whole networks compose.
///
/// # Example
///
/// ```
/// use cbq_nn::{Layer, Sequential, Phase};
/// use cbq_nn::layers::{Linear, Relu};
/// use cbq_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new("net");
/// net.push(Linear::new("fc1", 4, 8, true, &mut rng)?);
/// net.push(Relu::new("relu1"));
/// net.push(Linear::new("fc2", 8, 2, true, &mut rng)?);
/// let y = net.forward(&Tensor::zeros(&[1, 4]), Phase::Eval)?;
/// assert_eq!(y.shape(), &[1, 2]);
/// # Ok::<(), cbq_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Clears every parameter gradient in the network.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Renders a layer table with kinds, output channels and parameter
    /// counts — the `print(model)` of this stack.
    pub fn summary(&mut self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let params = self.param_count();
        let _ = writeln!(out, "{} (total params: {params})", self.name);
        let mut rows: Vec<(String, String, Option<usize>)> = Vec::new();
        self.visit_layers_mut(&mut |l| {
            rows.push((
                l.name().to_string(),
                format!("{:?}", l.kind()),
                l.out_channels(),
            ));
        });
        for (name, kind, out_ch) in rows {
            let ch = out_ch.map(|c| c.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(out, "  {name:<24} {kind:<12} out {ch}");
        }
        out
    }

    /// Runs a full forward + backward pass: `forward(x)` then backward from
    /// `grad_out`. Convenience for scoring and training loops.
    ///
    /// # Errors
    ///
    /// Propagates any layer error.
    pub fn forward_backward(
        &mut self,
        x: &Tensor,
        phase: Phase,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor)> {
        let out = self.forward(x, phase)?;
        let grad_in = self.backward(grad_out)?;
        Ok((out, grad_in))
    }
}

impl Layer for Sequential {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, phase)?;
        }
        Ok(cur)
    }

    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        // Ownership of the activation buffer flows layer to layer; each
        // layer recycles its input into `scratch` (or passes it through),
        // so a warm arena serves the whole pass with zero fresh allocations.
        let mut cur = x;
        for layer in &mut self.layers {
            cur = layer.forward_scratch(cur, phase, scratch)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        for layer in &mut self.layers {
            layer.visit_layers_mut(f);
        }
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Container
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn set_weight_transform(&mut self, _transform: Option<Box<dyn WeightTransform>>) {
        // Containers do not own weights; install transforms on leaves via
        // visit_layers_mut.
    }

    fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_layer(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new("net");
        net.push(Linear::new("fc1", 3, 5, true, rng).unwrap());
        net.push(Relu::new("relu1"));
        net.push(Linear::new("fc2", 5, 2, true, rng).unwrap());
        net
    }

    #[test]
    fn forward_composes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = two_layer(&mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
    }

    #[test]
    fn backward_matches_finite_difference_end_to_end() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = two_layer(&mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        net.forward(&x, Phase::Train).unwrap();
        let gy = Tensor::ones(&[2, 2]);
        let gx = net.backward(&gy).unwrap();
        let eps = 1e-2f32;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (net.forward(&xp, Phase::Train).unwrap().sum()
                - net.forward(&xm, Phase::Train).unwrap().sum())
                / (2.0 * eps);
            assert!((fd - gx.as_slice()[idx]).abs() < 2e-2, "x[{idx}]");
        }
    }

    #[test]
    fn infer_forward_scratch_matches_eval_and_allocates_nothing_warm() {
        use crate::layers::{BatchNorm2d, Conv2d, Flatten, MaxPool2dLayer};
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new("cnn");
        net.push(Conv2d::new("c1", 2, 4, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new("bn1", 4).unwrap());
        net.push(Relu::new("r1"));
        net.push(MaxPool2dLayer::new("mp1", 2, 2));
        net.push(Flatten::new("fl"));
        net.push(Linear::new("fc", 4 * 4 * 4, 3, true, &mut rng).unwrap());
        let x = Tensor::randn(&[3, 2, 8, 8], 1.0, &mut rng);
        let eval = net.forward(&x, Phase::Eval).unwrap();

        let mut net2 = net.clone();
        net2.clear_cache();
        let mut scratch = cbq_tensor::Scratch::new();
        // Warmup pass populates the arena; the second pass must hit the
        // pool for every buffer.
        let warm = net2
            .forward_scratch(x.clone(), Phase::Infer, &mut scratch)
            .unwrap();
        scratch.recycle_f32(warm.into_vec());
        let before = scratch.fresh_allocs();
        let infer = net2
            .forward_scratch(x.clone(), Phase::Infer, &mut scratch)
            .unwrap();
        assert_eq!(
            scratch.fresh_allocs(),
            before,
            "steady-state probe pass must not miss the scratch pool"
        );
        assert_eq!(eval.shape(), infer.shape());
        for (a, b) in eval.as_slice().iter().zip(infer.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn visit_layers_flattens_in_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = two_layer(&mut rng);
        let mut names = Vec::new();
        net.visit_layers_mut(&mut |l| names.push(l.name().to_string()));
        assert_eq!(names, vec!["fc1", "relu1", "fc2"]);
    }

    #[test]
    fn zero_grad_and_param_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = two_layer(&mut rng);
        // 3*5+5 + 5*2+2 = 32
        assert_eq!(net.param_count(), 32);
        let x = Tensor::randn(&[1, 3], 1.0, &mut rng);
        net.forward(&x, Phase::Train).unwrap();
        net.backward(&Tensor::ones(&[1, 2])).unwrap();
        let mut any_nonzero = false;
        net.visit_params(&mut |p| any_nonzero |= p.grad.max_abs() > 0.0);
        assert!(any_nonzero);
        net.zero_grad();
        net.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }

    #[test]
    fn summary_lists_layers_and_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = two_layer(&mut rng);
        let s = net.summary();
        assert!(s.contains("total params: 32"));
        assert!(s.contains("fc1"));
        assert!(s.contains("Relu"));
        assert!(s.contains("out 2"));
    }

    #[test]
    fn nested_sequentials_flatten() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut inner = Sequential::new("inner");
        inner.push(Linear::new("fc_a", 2, 2, true, &mut rng).unwrap());
        let mut outer = Sequential::new("outer");
        outer.push(Linear::new("fc0", 2, 2, true, &mut rng).unwrap());
        outer.push(inner);
        let mut names = Vec::new();
        outer.visit_layers_mut(&mut |l| names.push(l.name().to_string()));
        assert_eq!(names, vec!["fc0", "fc_a"]);
    }
}
