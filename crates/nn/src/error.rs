use cbq_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by network construction, forward or backward passes.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// Layer that was asked to run backward.
        layer: String,
    },
    /// A model-builder argument is out of range.
    InvalidConfig(String),
    /// A label was outside `0..num_classes`.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes.
        num_classes: usize,
    },
    /// Batch sizes of two paired inputs (e.g. logits vs labels) disagree.
    BatchMismatch {
        /// Size implied by the first operand.
        lhs: usize,
        /// Size implied by the second operand.
        rhs: usize,
    },
    /// A numeric guard found NaN/Inf and the active policy chose to
    /// abort. The message carries the diagnosis (what, where, counts).
    NonFinite(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid model config: {msg}"),
            NnError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            NnError::BatchMismatch { lhs, rhs } => {
                write!(f, "batch size mismatch: {lhs} vs {rhs}")
            }
            NnError::NonFinite(msg) => write!(f, "non-finite values: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::Empty);
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let e = NnError::BackwardBeforeForward {
            layer: "conv1".into(),
        };
        assert!(e.to_string().contains("conv1"));
        assert!(Error::source(&e).is_none());
    }
}
