use crate::{Param, Result};
use cbq_tensor::{Scratch, Tensor};
use std::fmt::Debug;

/// Whether a forward pass is part of training or inference.
///
/// Training mode uses batch statistics in batch-norm and caches everything
/// a backward pass needs; eval mode uses running statistics but still
/// caches, so backward after an eval-mode forward works (the
/// importance-scoring pass of the paper runs exactly that way). Infer mode
/// is forward-only: running statistics, **no** caching — the accuracy-probe
/// phase of the threshold search runs thousands of these and never reads a
/// cache, so skipping the clones is pure savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Training forward: batch statistics, full caching.
    Train,
    /// Evaluation forward: running statistics, caches kept so a backward
    /// pass (importance scoring) can follow.
    Eval,
    /// Forward-only inference: running statistics, no caching. A backward
    /// pass after an Infer forward fails with `BackwardBeforeForward`.
    Infer,
}

/// Coarse classification of a layer, used by the quantization pipeline to
/// find weight-bearing units and activation taps without downcasting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// Fully-connected layer.
    Linear,
    /// Batch normalization.
    BatchNorm,
    /// Rectified linear activation.
    Relu,
    /// Pooling (max/avg/global).
    Pool,
    /// Shape adapter (flatten).
    Reshape,
    /// Container of other layers.
    Container,
    /// Anything else (activation quantizers from `cbq-quant`, …).
    Other,
}

/// A stateful activation transformation hosted by [`Relu`] layers — the
/// hook activation fake-quantization plugs into.
///
/// `apply` returns the transformed activations plus a straight-through
/// mask: the backward pass multiplies the upstream gradient by the mask
/// elementwise (1 where the gradient passes, 0 where the input was
/// clipped).
///
/// [`Relu`]: crate::layers::Relu
pub trait ActivationQuantizer: Debug + Send {
    /// Transforms post-ReLU activations; returns `(output, ste_mask)`.
    fn apply(&mut self, x: &Tensor) -> (Tensor, Tensor);

    /// In-place, forward-only variant of [`ActivationQuantizer::apply`]
    /// used by the zero-allocation probe path: transforms `data` without
    /// producing an STE mask. Must compute the same output values as
    /// `apply`. The default routes through `apply` via a temporary tensor;
    /// quantizers on the probe hot path override it with a true in-place
    /// loop.
    fn apply_infer(&mut self, data: &mut [f32]) {
        let tmp = Tensor::from_vec(data.to_vec(), &[data.len()])
            .expect("flat shape always matches its own data");
        let (out, _mask) = self.apply(&tmp);
        data.copy_from_slice(out.as_slice());
    }

    /// Sets the quantization bit-width; `None` disables (identity).
    fn set_bits(&mut self, bits: Option<u8>);

    /// The active bit-width, if any.
    fn bits(&self) -> Option<u8>;

    /// Enters/leaves calibration mode (recording the clip bound).
    fn set_calibrating(&mut self, on: bool);

    /// The recorded clip bound `b`.
    fn clip(&self) -> f32;

    /// Overrides the clip bound (restoring calibration from a checkpoint).
    /// The default is a no-op for quantizers without a stored bound.
    fn set_clip(&mut self, _clip: f32) {}

    /// Deep-copies the quantizer behind the trait object, enabling
    /// [`Clone`] for boxed quantizers (and therefore for whole networks —
    /// the parallel scoring/probe paths work on per-worker model clones).
    fn clone_box(&self) -> Box<dyn ActivationQuantizer>;
}

impl Clone for Box<dyn ActivationQuantizer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A transformation applied to a layer's weights at forward time.
///
/// This is the hook fake quantization plugs into: the layer keeps its
/// full-precision shadow weights, the transform produces the effective
/// (quantized) weights used in both the forward pass *and* the
/// input-gradient computation, and weight gradients are applied to the
/// shadow weights untouched — which is precisely the straight-through
/// estimator the paper's refining phase uses.
pub trait WeightTransform: Debug + Send {
    /// Produces the effective weight tensor from the shadow weights.
    fn apply(&self, weight: &Tensor) -> Tensor;

    /// Writes the effective weights into `out` (same length as `weight`)
    /// without allocating a fresh tensor. Must produce the same values as
    /// [`WeightTransform::apply`]. The default copies `apply`'s result;
    /// transforms on the probe hot path override it.
    fn apply_into(&self, weight: &Tensor, out: &mut [f32]) {
        out.copy_from_slice(self.apply(weight).as_slice());
    }

    /// Deep-copies the transform behind the trait object (see
    /// [`ActivationQuantizer::clone_box`]).
    fn clone_box(&self) -> Box<dyn WeightTransform>;
}

impl Clone for Box<dyn WeightTransform> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A differentiable network layer with manual forward/backward.
///
/// Implementations cache whatever their backward pass needs during
/// `forward`. `backward` consumes those caches and returns the gradient
/// with respect to the layer input, accumulating parameter gradients into
/// the layer's [`Param`]s.
pub trait Layer: Debug + Send {
    /// Runs the layer on `x`, caching intermediates for `backward`.
    ///
    /// # Errors
    ///
    /// Returns an [`NnError`](crate::NnError) when `x` has an incompatible
    /// shape.
    fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor>;

    /// Scratch-threaded forward taking *ownership* of the input, so layers
    /// can recycle the input buffer (or pass it through untouched) instead
    /// of cloning. The default delegates to [`Layer::forward`]; layers on
    /// the probe hot path override it with a [`Phase::Infer`] fast path
    /// that draws every temporary from `scratch` and recycles the input
    /// via [`Scratch::recycle_f32`]. Must compute exactly the same values
    /// as `forward` for the same phase.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::forward`].
    fn forward_scratch(
        &mut self,
        x: Tensor,
        phase: Phase,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let _ = scratch;
        self.forward(&x, phase)
    }

    /// Propagates `grad_out` (gradient w.r.t. this layer's output) back to
    /// the layer input, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`](crate::NnError) when no
    /// forward pass has been cached, or a shape error when `grad_out` does
    /// not match the cached output.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visits every learnable parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every *leaf* layer in execution order. Leaves call
    /// `f(self)`; containers recurse without visiting themselves.
    fn visit_layers_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer));

    /// The layer's kind, used for structural queries.
    fn kind(&self) -> LayerKind;

    /// Diagnostic name, e.g. `"conv2"`.
    fn name(&self) -> &str;

    /// Output of the most recent forward pass, if the layer caches it.
    ///
    /// ReLU layers always cache; weight-bearing layers cache too so they
    /// can serve as their own importance tap when no ReLU follows them.
    fn cached_output(&self) -> Option<&Tensor> {
        None
    }

    /// Upstream gradient received by the most recent backward pass, if
    /// cached. Together with [`Layer::cached_output`] this yields the
    /// Taylor importance score `|a · ∂Φ/∂a|` of paper Eq. 5.
    fn cached_grad_out(&self) -> Option<&Tensor> {
        None
    }

    /// Number of output channels (conv) or output features (linear) for
    /// weight-bearing layers; `None` otherwise.
    fn out_channels(&self) -> Option<usize> {
        None
    }

    /// Whether this layer participates in quantization. The paper excludes
    /// the first and the output layer; model builders clear the flag there.
    fn quantizable(&self) -> bool {
        false
    }

    /// Total number of weight elements (excluding bias) for weight-bearing
    /// layers; `None` otherwise. Used for average-bit-width accounting.
    fn weight_len(&self) -> Option<usize> {
        None
    }

    /// Per-output-channel maximum absolute weight, for weight-bearing
    /// layers; `None` otherwise. Drives magnitude-based scoring baselines.
    fn weight_channel_max_abs(&self) -> Option<Vec<f32>> {
        None
    }

    /// Installs (or clears) the weight transform on a weight-bearing
    /// layer. Default: no-op for layers without weights.
    fn set_weight_transform(&mut self, _transform: Option<Box<dyn WeightTransform>>) {}

    /// Installs (or clears) an activation quantizer. Default: no-op for
    /// layers other than [`Relu`](crate::layers::Relu).
    fn set_activation_quantizer(&mut self, _quantizer: Option<Box<dyn ActivationQuantizer>>) {}

    /// Mutable access to the installed activation quantizer, if any.
    fn activation_quantizer_mut(&mut self) -> Option<&mut (dyn ActivationQuantizer + 'static)> {
        None
    }

    /// Drops cached activations to free memory between phases.
    fn clear_cache(&mut self) {}

    /// Non-parameter state that must survive serialization (batch-norm
    /// running statistics). `None` for stateless layers.
    fn extra_state(&self) -> Option<Vec<f32>> {
        None
    }

    /// Restores state captured by [`Layer::extra_state`]. Layers without
    /// extra state ignore the call.
    fn set_extra_state(&mut self, _state: &[f32]) {}

    /// Deep-copies the layer behind the trait object. This is what makes
    /// [`Sequential`](crate::Sequential) cloneable, which the data-parallel
    /// paths rely on: each worker scores/probes on its own clone, so the
    /// shared model is never mutated concurrently.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_kind_are_comparable() {
        assert_ne!(Phase::Train, Phase::Eval);
        assert_eq!(LayerKind::Conv2d, LayerKind::Conv2d);
        assert_ne!(LayerKind::Conv2d, LayerKind::Linear);
    }
}
