//! The paper's model zoo: MLP, VGG-small and ResNet-20 with a width
//! expansion factor.
//!
//! All builders follow the paper's quantization protocol: the first
//! weight-bearing layer and the output layer are marked
//! non-quantizable; everything in between is fair game for the bit-width
//! search.

use crate::layers::{
    BasicBlock, BatchNorm2d, Conv2d, Flatten, GlobalAvgPoolLayer, Linear, MaxPool2dLayer, Relu,
};
use crate::{NnError, Result, Sequential};
use rand::Rng;

/// Geometry of VGG-small, scaled for CPU training. The defaults pair with
/// [`SyntheticSpec::cifar10_like`]'s 3×12×12 images.
///
/// [`SyntheticSpec::cifar10_like`]: https://docs.rs/cbq-data
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VggConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Width of the first conv pair; the second pair doubles it.
    pub base_width: usize,
    /// Width of the first fully-connected layer; fc6/fc7 halve it twice.
    pub fc_dim: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl VggConfig {
    /// Default geometry for the synthetic CIFAR-10-like set.
    pub fn for_input(in_channels: usize, height: usize, width: usize, num_classes: usize) -> Self {
        VggConfig {
            in_channels,
            height,
            width,
            base_width: 16,
            fc_dim: 128,
            num_classes,
        }
    }
}

/// Geometry of ResNet-20 with the paper's expansion factor (x1 / x5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Base width of the first stage before expansion (16 in the paper;
    /// smaller here for CPU budgets).
    pub base_width: usize,
    /// The paper's expand factor: x1 or x5.
    pub expand: usize,
    /// Residual blocks per stage (3 for ResNet-20).
    pub blocks_per_stage: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl ResNetConfig {
    /// ResNet-20-x`expand` on `in_channels` input with `num_classes`
    /// outputs, base width 8 (CPU-scaled from the paper's 16).
    pub fn resnet20(in_channels: usize, expand: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels,
            base_width: 8,
            expand,
            blocks_per_stage: 3,
            num_classes,
        }
    }
}

/// Builds a multi-layer perceptron with ReLU between layers.
///
/// `sizes` lists the layer widths including input and output, e.g.
/// `&[784, 128, 64, 10]`. The first and last linear layers are excluded
/// from quantization per the paper's protocol.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for fewer than two sizes or a zero
/// width.
pub fn mlp(sizes: &[usize], rng: &mut impl Rng) -> Result<Sequential> {
    if sizes.len() < 2 {
        return Err(NnError::InvalidConfig(
            "mlp needs at least input and output sizes".into(),
        ));
    }
    let mut net = Sequential::new("mlp");
    // Accept [N, C, H, W] image batches as well as flat [N, F] features.
    net.push(Flatten::new("flatten0"));
    let last = sizes.len() - 2;
    for (i, pair) in sizes.windows(2).enumerate() {
        let layer = Linear::new(format!("fc{}", i + 1), pair[0], pair[1], true, rng)?;
        let layer = if i == 0 || i == last {
            layer.without_quantization()
        } else {
            layer
        };
        net.push(layer);
        if i != last {
            net.push(Relu::new(format!("relu{}", i + 1)));
        }
    }
    Ok(net)
}

/// Builds VGG-small: four 3×3 conv layers (two width tiers with max-pool
/// between), then three fully-connected layers and the classifier head.
///
/// Layer numbering follows the paper's Figure 6: conv1–conv4 are layers
/// 1–4, fc5–fc7 are layers 5–7, and fc8 is the unquantized output layer.
///
/// # Example
///
/// ```
/// use cbq_nn::{models, Layer, Phase};
/// use cbq_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), cbq_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let cfg = models::VggConfig::for_input(3, 12, 12, 10);
/// let mut net = models::vgg_small(&cfg, &mut rng)?;
/// let logits = net.forward(&Tensor::zeros(&[1, 3, 12, 12]), Phase::Eval)?;
/// assert_eq!(logits.shape(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the spatial size does not
/// survive two 2× poolings or any width is zero.
pub fn vgg_small(config: &VggConfig, rng: &mut impl Rng) -> Result<Sequential> {
    let VggConfig {
        in_channels,
        height,
        width,
        base_width,
        fc_dim,
        num_classes,
    } = *config;
    if base_width == 0 || fc_dim < 4 || num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "vgg widths must be positive (fc_dim >= 4)".into(),
        ));
    }
    if height % 4 != 0 || width % 4 != 0 || height < 4 || width < 4 {
        return Err(NnError::InvalidConfig(format!(
            "vgg-small needs input divisible by 4, got {height}x{width}"
        )));
    }
    let w2 = base_width * 2;
    let (fh, fw) = (height / 4, width / 4);
    let mut net = Sequential::new("vgg_small");
    net.push(
        Conv2d::new("conv1", in_channels, base_width, 3, 1, 1, false, rng)?.without_quantization(),
    );
    net.push(BatchNorm2d::new("bn1", base_width)?);
    net.push(Relu::new("relu1"));
    net.push(Conv2d::new(
        "conv2", base_width, base_width, 3, 1, 1, false, rng,
    )?);
    net.push(BatchNorm2d::new("bn2", base_width)?);
    net.push(Relu::new("relu2"));
    net.push(MaxPool2dLayer::new("pool2", 2, 2));
    net.push(Conv2d::new("conv3", base_width, w2, 3, 1, 1, false, rng)?);
    net.push(BatchNorm2d::new("bn3", w2)?);
    net.push(Relu::new("relu3"));
    net.push(Conv2d::new("conv4", w2, w2, 3, 1, 1, false, rng)?);
    net.push(BatchNorm2d::new("bn4", w2)?);
    net.push(Relu::new("relu4"));
    net.push(MaxPool2dLayer::new("pool4", 2, 2));
    net.push(Flatten::new("flatten"));
    net.push(Linear::new("fc5", w2 * fh * fw, fc_dim, true, rng)?);
    net.push(Relu::new("relu5"));
    net.push(Linear::new("fc6", fc_dim, fc_dim / 2, true, rng)?);
    net.push(Relu::new("relu6"));
    net.push(Linear::new("fc7", fc_dim / 2, fc_dim / 4, true, rng)?);
    net.push(Relu::new("relu7"));
    net.push(Linear::new("fc8", fc_dim / 4, num_classes, true, rng)?.without_quantization());
    Ok(net)
}

/// Builds ResNet-20 (3 stages × `blocks_per_stage` basic blocks) with the
/// paper's width expansion factor.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero-valued fields.
pub fn resnet20(config: &ResNetConfig, rng: &mut impl Rng) -> Result<Sequential> {
    let ResNetConfig {
        in_channels,
        base_width,
        expand,
        blocks_per_stage,
        num_classes,
    } = *config;
    if base_width == 0 || expand == 0 || blocks_per_stage == 0 || num_classes == 0 {
        return Err(NnError::InvalidConfig(
            "resnet fields must be positive".into(),
        ));
    }
    let w1 = base_width * expand;
    let mut net = Sequential::new(format!("resnet20_x{expand}"));
    net.push(Conv2d::new("conv1", in_channels, w1, 3, 1, 1, false, rng)?.without_quantization());
    net.push(BatchNorm2d::new("bn1", w1)?);
    net.push(Relu::new("relu1"));
    let widths = [w1, w1 * 2, w1 * 4];
    let mut in_w = w1;
    for (s, &w) in widths.iter().enumerate() {
        for b in 0..blocks_per_stage {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            net.push(BasicBlock::new(
                format!("stage{}.block{}", s + 1, b + 1),
                in_w,
                w,
                stride,
                rng,
            )?);
            in_w = w;
        }
    }
    net.push(GlobalAvgPoolLayer::new("gap"));
    net.push(Linear::new("fc", in_w, num_classes, true, rng)?.without_quantization());
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, LayerKind, Phase};
    use cbq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes_and_quant_flags() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(&[6, 8, 4, 3], &mut rng).unwrap();
        let y = net.forward(&Tensor::zeros(&[2, 6]), Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        let mut flags = Vec::new();
        net.visit_layers_mut(&mut |l| {
            if l.kind() == LayerKind::Linear {
                flags.push((l.name().to_string(), l.quantizable()));
            }
        });
        assert_eq!(
            flags,
            vec![
                ("fc1".into(), false),
                ("fc2".into(), true),
                ("fc3".into(), false)
            ]
        );
    }

    #[test]
    fn mlp_rejects_too_few_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(mlp(&[5], &mut rng).is_err());
    }

    #[test]
    fn vgg_small_forward_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = VggConfig::for_input(3, 12, 12, 10);
        let mut net = vgg_small(&cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn vgg_small_quant_units_are_layers_2_to_7() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = VggConfig::for_input(3, 12, 12, 10);
        let mut net = vgg_small(&cfg, &mut rng).unwrap();
        let mut units = Vec::new();
        net.visit_layers_mut(&mut |l| {
            if l.quantizable() {
                units.push(l.name().to_string());
            }
        });
        assert_eq!(units, vec!["conv2", "conv3", "conv4", "fc5", "fc6", "fc7"]);
    }

    #[test]
    fn vgg_rejects_bad_geometry() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = VggConfig::for_input(3, 10, 12, 10);
        assert!(vgg_small(&cfg, &mut rng).is_err());
    }

    #[test]
    fn resnet20_forward_shape_and_depth() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ResNetConfig::resnet20(3, 1, 10);
        let mut net = resnet20(&cfg, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // 20 weight layers: conv1 + 9 blocks * 2 convs + fc = 20 (plus
        // 2 downsample convs).
        let mut convs = 0;
        let mut linears = 0;
        net.visit_layers_mut(&mut |l| match l.kind() {
            LayerKind::Conv2d => convs += 1,
            LayerKind::Linear => linears += 1,
            _ => {}
        });
        assert_eq!(convs, 1 + 9 * 2 + 2);
        assert_eq!(linears, 1);
    }

    #[test]
    fn resnet20_expand_multiplies_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut n1 = resnet20(&ResNetConfig::resnet20(3, 1, 10), &mut rng).unwrap();
        let mut n5 = resnet20(&ResNetConfig::resnet20(3, 5, 10), &mut rng).unwrap();
        let p1 = n1.param_count();
        let p5 = n5.param_count();
        assert!(p5 > p1 * 15, "x5 should be ~25x larger: {p1} vs {p5}");
    }

    #[test]
    fn resnet_first_and_output_not_quantizable() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = resnet20(&ResNetConfig::resnet20(3, 1, 10), &mut rng).unwrap();
        let mut first_last = Vec::new();
        net.visit_layers_mut(&mut |l| {
            if l.name() == "conv1" || l.name() == "fc" {
                first_last.push(l.quantizable());
            }
        });
        assert_eq!(first_last, vec![false, false]);
    }

    #[test]
    fn resnet_trains_one_step_without_error() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = resnet20(&ResNetConfig::resnet20(1, 1, 4), &mut rng).unwrap();
        let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, Phase::Train).unwrap();
        let (_, grad) = crate::losses::cross_entropy(&y, &[0, 1]).unwrap();
        net.backward(&grad).unwrap();
        let mut opt = crate::Sgd::new(crate::SgdConfig::resnet(0.1));
        opt.step(&mut net).unwrap();
    }
}
