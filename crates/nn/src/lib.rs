#![warn(missing_docs)]

//! Minimal neural-network training stack for the CBQ reproduction.
//!
//! The class-based quantization algorithm needs four capabilities from its
//! substrate, and this crate provides exactly those:
//!
//! 1. **Forward inference** through CNN/MLP classifiers ([`Sequential`],
//!    the layer zoo in [`layers`]).
//! 2. **Backward passes that expose per-activation gradients**, so the
//!    Taylor importance score `|a · ∂Φ/∂a|` (paper Eq. 5) can be read off
//!    the ReLU taps ([`Layer::cached_output`] / [`Layer::cached_grad_out`]).
//! 3. **A weight-transform hook** on every weight-bearing layer
//!    ([`WeightTransform`]), which the `cbq-quant` crate uses for fake
//!    quantization; gradients flow straight through to the full-precision
//!    shadow weights, which *is* the straight-through estimator of §III-D.
//! 4. **SGD training with momentum / weight decay / step LR** ([`Sgd`],
//!    [`Trainer`]) for the pre-training and refining phases.
//!
//! Everything is manual, layer-wise backprop — no tape autograd — so every
//! gradient is unit-tested against finite differences.
//!
//! # Example
//!
//! ```
//! use cbq_nn::{models, losses, Layer, Phase};
//! use cbq_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = models::mlp(&[4, 8, 3], &mut rng)?;
//! let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
//! let logits = net.forward(&x, Phase::Eval)?;
//! assert_eq!(logits.shape(), &[2, 3]);
//! let probs = losses::softmax_rows(&logits)?;
//! assert!((probs.row(0)?.sum() - 1.0).abs() < 1e-5);
//! # Ok::<(), cbq_nn::NnError>(())
//! ```

mod adam;
mod error;
mod layer;
pub mod layers;
pub mod losses;
pub mod models;
mod optim;
mod param;
mod sequential;
mod serialize;
mod trainer;

pub use adam::{Adam, AdamConfig, CosineLr};
pub use error::NnError;
pub use layer::{ActivationQuantizer, Layer, LayerKind, Phase, WeightTransform};
pub use optim::{Sgd, SgdConfig, StepLr};
pub use param::Param;
pub use sequential::Sequential;
pub use serialize::{load_state_dict, state_dict, StateDict};
pub use trainer::{
    evaluate, evaluate_per_class, evaluate_with_scratch, infer_logits_scratch, non_finite_step,
    poison_first_gradient, ClassAccuracy, EpochStats, Trainer, TrainerConfig,
};

/// Result alias for fallible network operations.
pub type Result<T> = std::result::Result<T, NnError>;
