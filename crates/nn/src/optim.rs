use crate::{Layer, NnError, Result};

/// Hyperparameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate (mutable during training via [`Sgd::set_lr`]).
    pub lr: f32,
    /// Momentum coefficient (0.9 in the paper's training recipe).
    pub momentum: f32,
    /// L2 weight decay, applied only to parameters flagged
    /// [`weight_decay`](crate::Param::weight_decay).
    pub weight_decay: f32,
}

impl SgdConfig {
    /// The paper's ResNet recipe: momentum 0.9, weight decay 1e-4.
    pub fn resnet(lr: f32) -> Self {
        SgdConfig {
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }

    /// The paper's VGG-small recipe: momentum 0.9, weight decay 5e-4.
    pub fn vgg(lr: f32) -> Self {
        SgdConfig {
            lr,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// Stochastic gradient descent with momentum and decoupled per-parameter
/// weight-decay opt-in.
///
/// Velocity buffers are kept positionally, keyed by the network's stable
/// [`Layer::visit_params`] order, so the same optimizer must always be
/// stepped against the same network.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocities: Vec<cbq_tensor::Tensor>,
}

impl Sgd {
    /// Creates an optimizer with empty state; velocities are allocated on
    /// the first [`Sgd::step`].
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            velocities: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Updates the learning rate (used by [`StepLr`]).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// The velocity buffers, in [`Layer::visit_params`] order (empty
    /// before the first step). Exposed so a checkpoint can capture the
    /// full optimizer state for bit-exact resume.
    pub fn velocities(&self) -> &[cbq_tensor::Tensor] {
        &self.velocities
    }

    /// Restores velocity buffers captured by [`Sgd::velocities`]. The
    /// next [`Sgd::step`] validates the count against the network.
    pub fn set_velocities(&mut self, velocities: Vec<cbq_tensor::Tensor>) {
        self.velocities = velocities;
    }

    /// Applies one update step to every parameter of `net` using the
    /// gradients accumulated by the latest backward pass(es).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the network's parameter
    /// count changed since the first step (the positional state would be
    /// misaligned).
    pub fn step(&mut self, net: &mut dyn Layer) -> Result<()> {
        let momentum = self.config.momentum;
        let lr = self.config.lr;
        let wd = self.config.weight_decay;
        let velocities = &mut self.velocities;
        let mut idx = 0usize;
        let mut first_pass = velocities.is_empty();
        net.visit_params(&mut |p| {
            if first_pass {
                velocities.push(cbq_tensor::Tensor::zeros(p.value.shape()));
            }
            if idx >= velocities.len() {
                // Signal the mismatch by growing past the recorded count;
                // checked after the walk.
                idx += 1;
                return;
            }
            let v = &mut velocities[idx];
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            let vs = v.as_mut_slice();
            let decay = if p.weight_decay { wd } else { 0.0 };
            for i in 0..w.len() {
                let grad = g[i] + decay * w[i];
                vs[i] = momentum * vs[i] + grad;
                w[i] -= lr * vs[i];
            }
            idx += 1;
        });
        first_pass = false;
        let _ = first_pass;
        if idx != self.velocities.len() {
            return Err(NnError::InvalidConfig(format!(
                "optimizer state holds {} parameters but the network has {idx}",
                self.velocities.len()
            )));
        }
        Ok(())
    }
}

/// Step learning-rate schedule: divide the base LR by `gamma` at each
/// milestone epoch (the paper divides by 10 at epochs 100/150/300).
#[derive(Debug, Clone, PartialEq)]
pub struct StepLr {
    base_lr: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule. `gamma` is the *division* factor (10 in the
    /// paper), applied once per passed milestone.
    pub fn new(base_lr: f32, milestones: Vec<usize>, gamma: f32) -> Self {
        StepLr {
            base_lr,
            milestones,
            gamma,
        }
    }

    /// Learning rate in effect at `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr / self.gamma.powi(passed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::{Phase, Sequential};
    use cbq_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgd_descends_a_quadratic() {
        // minimize ||W x - y||^2 via our layer machinery: single Linear,
        // loss grad = 2(Wx - y).
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 2, 1, false, &mut rng).unwrap());
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let target = 3.0f32;
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            net.zero_grad();
            let y = net.forward(&x, Phase::Train).unwrap();
            let err = y.as_slice()[0] - target;
            let gy = Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap();
            net.backward(&gy).unwrap();
            opt.step(&mut net).unwrap();
            last = err * err;
        }
        assert!(last < 1e-4, "did not converge: {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = |momentum: f32, rng: &mut StdRng| -> f32 {
            let mut net = Sequential::new("n");
            net.push(Linear::new("fc", 1, 1, false, rng).unwrap());
            let mut opt = Sgd::new(SgdConfig {
                lr: 0.01,
                momentum,
                weight_decay: 0.0,
            });
            let x = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
            let mut err = 0.0;
            for _ in 0..50 {
                net.zero_grad();
                let y = net.forward(&x, Phase::Train).unwrap();
                err = y.as_slice()[0] - 5.0;
                let gy = Tensor::from_vec(vec![2.0 * err], &[1, 1]).unwrap();
                net.backward(&gy).unwrap();
                opt.step(&mut net).unwrap();
            }
            err.abs()
        };
        let plain = run(0.0, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let fast = run(0.9, &mut rng2);
        assert!(fast < plain, "momentum {fast} vs plain {plain}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 1, 1, false, &mut rng).unwrap());
        let mut w0 = 0.0;
        net.visit_params(&mut |p| w0 = p.value.as_slice()[0]);
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        // zero gradient step: only decay acts
        net.zero_grad();
        opt.step(&mut net).unwrap();
        net.visit_params(&mut |p| {
            let w1 = p.value.as_slice()[0];
            assert!((w1 - w0 * (1.0 - 0.05)).abs() < 1e-6);
        });
    }

    #[test]
    fn step_lr_schedule() {
        let s = StepLr::new(0.1, vec![100, 150, 300], 10.0);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(99), 0.1);
        assert!((s.lr_at(100) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(200) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(300) - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn mismatched_network_detected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net1 = Sequential::new("a");
        net1.push(Linear::new("fc", 2, 2, true, &mut rng).unwrap());
        let mut net2 = Sequential::new("b");
        net2.push(Linear::new("fc", 2, 2, true, &mut rng).unwrap());
        net2.push(Linear::new("fc2", 2, 2, true, &mut rng).unwrap());
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.step(&mut net1).unwrap();
        assert!(opt.step(&mut net2).is_err());
    }

    #[test]
    fn presets() {
        assert_eq!(SgdConfig::resnet(0.1).weight_decay, 1e-4);
        assert_eq!(SgdConfig::vgg(0.02).weight_decay, 5e-4);
    }
}
