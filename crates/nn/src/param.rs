use cbq_tensor::Tensor;

/// One learnable parameter: its value, accumulated gradient, and training
/// metadata.
///
/// Optimizers walk parameters through [`Layer::visit_params`] in a stable
/// order, so per-parameter optimizer state (momentum buffers) can be kept
/// positionally.
///
/// [`Layer::visit_params`]: crate::Layer::visit_params
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass(es).
    pub grad: Tensor,
    /// Whether weight decay applies (disabled for biases and batch-norm
    /// affine parameters, matching common CIFAR training practice).
    pub weight_decay: bool,
    /// Human-readable name, e.g. `"conv2.weight"`.
    pub name: String,
}

impl Param {
    /// Creates a parameter with a zeroed gradient buffer.
    pub fn new(value: Tensor, weight_decay: bool, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            weight_decay,
            name: name.into(),
        }
    }

    /// Clears the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]), true, "w");
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]), false, "b");
        p.grad = Tensor::ones(&[2]);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }
}
