use crate::{losses, Layer, NnError, Phase, Result, Sequential, Sgd, SgdConfig, StepLr};
use cbq_data::{Batch, Subset};
use cbq_resilience::{scan_finite_f32, FaultPlan, GuardAction, GuardPolicy, GuardState};
use cbq_telemetry::{Level, Telemetry};
use cbq_tensor::parallel::{fixed_order_reduce, parallel_slots, Parallelism};
use cbq_tensor::{Scratch, Tensor};
use rand::Rng;
use std::sync::Arc;

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Minibatch size (100 in the paper).
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Epochs at which the LR is divided by `lr_gamma` (100/150/300 in the
    /// paper).
    pub lr_milestones: Vec<usize>,
    /// LR division factor at each milestone (10 in the paper).
    pub lr_gamma: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Print one line per epoch to stderr when set.
    pub verbose: bool,
    /// Reaction when a loss or gradient turns NaN/Inf mid-training.
    pub guard: GuardPolicy,
    /// Number of gradient shards each minibatch is split into. `1` (the
    /// default) runs the exact legacy single-pass path; larger values
    /// forward/backward the shards on per-shard model clones — potentially
    /// concurrently, see [`Trainer::with_parallelism`] — and merge the
    /// shard gradients in fixed shard order, so for a given `grad_shards`
    /// the trained weights are bit-identical at any worker count.
    pub grad_shards: usize,
}

impl TrainerConfig {
    /// A short CPU-scale recipe mirroring the paper's hyperparameters at
    /// reduced epoch count: SGD(momentum 0.9), batch 100, step LR.
    pub fn quick(epochs: usize, lr: f32) -> Self {
        TrainerConfig {
            epochs,
            batch_size: 100,
            lr,
            lr_milestones: vec![epochs / 2, epochs * 3 / 4],
            lr_gamma: 10.0,
            momentum: 0.9,
            weight_decay: 1e-4,
            verbose: false,
            guard: GuardPolicy::Abort,
            grad_shards: 1,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean cross-entropy over the epoch's batches.
    pub loss: f32,
    /// Training accuracy over the epoch's batches, in `[0, 1]`.
    pub train_accuracy: f32,
}

/// Cross-entropy trainer used for the pre-training phase (the refining
/// phase lives in `cbq-core`, where the KD loss applies).
///
/// # Example
///
/// ```no_run
/// use cbq_nn::{evaluate, models, Trainer, TrainerConfig};
/// use cbq_data::{SyntheticImages, SyntheticSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng)?;
/// let mut net = models::mlp(&[data.feature_len(), 16, 3], &mut rng)?;
/// let stats = Trainer::new(TrainerConfig::quick(10, 0.05))
///     .fit(&mut net, data.train(), &mut rng)?;
/// println!("final loss {:.4}", stats.last().unwrap().loss);
/// println!("test accuracy {:.1}%", 100.0 * evaluate(&mut net, data.test(), 64)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    telemetry: Telemetry,
    fault: Arc<FaultPlan>,
    parallelism: Parallelism,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer {
            config,
            telemetry: Telemetry::disabled(),
            fault: Arc::new(FaultPlan::none()),
            parallelism: Parallelism::auto(),
        }
    }

    /// Sets the worker budget used when
    /// [`grad_shards`](TrainerConfig::grad_shards) splits minibatches. The
    /// budget changes only wall-clock time: shard-to-clone pairing and the
    /// gradient merge order are fixed by shard index, so trained weights
    /// are bit-identical at any setting.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a fault-injection plan (chaos testing): armed
    /// `poison-grad` steps overwrite one gradient value with NaN right
    /// after the backward pass, exercising the numeric guards.
    #[must_use]
    pub fn with_fault_plan(mut self, fault: Arc<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Attaches a telemetry handle; [`Trainer::fit`] then emits a `train`
    /// span, per-epoch `train.epoch` events and forward/backward counters
    /// to it instead of the `CBQ_LOG`-driven stderr fallback.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Trains `net` on `train` with shuffled minibatches, returning the
    /// per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates any layer or loss error.
    pub fn fit(
        &self,
        net: &mut Sequential,
        train: &Subset,
        rng: &mut impl Rng,
    ) -> Result<Vec<EpochStats>> {
        let schedule = StepLr::new(
            self.config.lr,
            self.config.lr_milestones.clone(),
            self.config.lr_gamma,
        );
        let mut opt = Sgd::new(SgdConfig {
            lr: self.config.lr,
            momentum: self.config.momentum,
            weight_decay: self.config.weight_decay,
        });
        // An explicitly attached handle wins; otherwise fall back to the
        // CBQ_LOG-driven stderr logger so `verbose` keeps printing.
        let tel = if self.telemetry.is_enabled() {
            self.telemetry.clone()
        } else {
            Telemetry::from_env()
        };
        let span = tel.span("train");
        let mut guard = GuardState::new(self.config.guard);
        let mut stats = Vec::with_capacity(self.config.epochs);
        let shards = self.config.grad_shards.max(1);
        // Slot-persistent clones for sharded gradient accumulation: clone
        // `s` always processes shard `s`, so each clone's internal history
        // (dropout RNG stream, batch-norm statistics) is a function of the
        // shard index alone — never of the worker budget.
        let mut shard_nets: Vec<Sequential> = if shards > 1 {
            (0..shards).map(|_| net.clone()).collect()
        } else {
            Vec::new()
        };
        for epoch in 0..self.config.epochs {
            opt.set_lr(schedule.lr_at(epoch) * guard.lr_scale());
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut batches = 0usize;
            let mut passes = 0u64;
            for batch in train.batches_shuffled(self.config.batch_size, rng) {
                let (loss, acc) = if shards > 1 {
                    let (loss, acc, active) =
                        sharded_step(net, &mut shard_nets, &batch, self.parallelism.threads())?;
                    passes += active as u64;
                    (loss, acc)
                } else {
                    net.zero_grad();
                    let logits = net.forward(&batch.images, Phase::Train)?;
                    let (loss, grad) = losses::cross_entropy(&logits, &batch.labels)?;
                    let acc = losses::accuracy(&logits, &batch.labels)?;
                    net.backward(&grad)?;
                    passes += 1;
                    (loss, acc)
                };
                if self.fault.poison_this_step() {
                    poison_first_gradient(net);
                }
                if let Some(diagnosis) = non_finite_step(net, loss) {
                    tel.event(
                        Level::Warn,
                        "train.guard_trip",
                        &[
                            ("epoch", epoch.into()),
                            ("trips", guard.trips().into()),
                            ("diagnosis", diagnosis.as_str().into()),
                        ],
                    );
                    match guard.on_trip() {
                        GuardAction::Abort => {
                            return Err(NnError::NonFinite(format!(
                                "epoch {epoch}: {diagnosis} (guard policy: abort)"
                            )));
                        }
                        GuardAction::SkipStep => continue,
                        GuardAction::SkipStepWithLrScale(scale) => {
                            opt.set_lr(schedule.lr_at(epoch) * scale);
                            continue;
                        }
                    }
                }
                opt.step(net)?;
                loss_sum += loss as f64;
                acc_sum += acc as f64;
                batches += 1;
            }
            tel.counter_add("train.forward_passes", passes);
            tel.counter_add("train.backward_passes", passes);
            let epoch_stats = EpochStats {
                epoch,
                loss: (loss_sum / batches.max(1) as f64) as f32,
                train_accuracy: (acc_sum / batches.max(1) as f64) as f32,
            };
            let level = if self.config.verbose {
                Level::Info
            } else {
                Level::Debug
            };
            tel.event(
                level,
                "train.epoch",
                &[
                    ("epoch", epoch.into()),
                    ("loss", epoch_stats.loss.into()),
                    ("train_accuracy", epoch_stats.train_accuracy.into()),
                    ("lr", opt.lr().into()),
                ],
            );
            stats.push(epoch_stats);
        }
        drop(span);
        Ok(stats)
    }
}

/// Per-shard output of one sharded training step.
struct ShardResult {
    /// Flattened parameter gradients (stable `visit_params` order), each
    /// pre-scaled by the shard's batch-fraction weight.
    grads: Vec<f32>,
    loss: f32,
    acc: f32,
    weight: f32,
    /// Post-forward extra state (batch-norm running statistics) per leaf.
    extra: Vec<Option<Vec<f32>>>,
}

/// One sharded training step: splits `batch` into `shard_nets.len()`
/// contiguous gradient shards, forwards/backwards shard `s` on clone `s`
/// (slot-persistent — see [`parallel_slots`]), merges the weighted shard
/// gradients into `net`'s parameter grads in fixed shard order via
/// [`fixed_order_reduce`], and copies the first shard's batch-norm
/// statistics back to `net`. Returns the shard-weighted `(loss, accuracy,
/// active_shards)`. Everything downstream of the worker budget is fixed
/// by shard index, so results are bit-identical at any thread count.
fn sharded_step(
    net: &mut Sequential,
    shard_nets: &mut [Sequential],
    batch: &Batch,
    threads: usize,
) -> Result<(f32, f32, usize)> {
    let b = batch.len();
    let shards = shard_nets.len();
    if b == 0 || shards == 0 {
        return Ok((0.0, 0.0, 0));
    }
    // Broadcast the main net's current parameters and batch-norm state to
    // the clones (their own histories keep only RNG streams between steps).
    let mut param_values: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |p| param_values.push(p.value.as_slice().to_vec()));
    let mut extra: Vec<Option<Vec<f32>>> = Vec::new();
    net.visit_layers_mut(&mut |l| extra.push(l.extra_state()));
    let dims = batch.images.shape().to_vec();
    let row_len: usize = dims[1..].iter().product();
    let spans: Vec<(usize, usize)> = (0..shards)
        .map(|s| (s * b / shards, (s + 1) * b / shards))
        .collect();
    let images = batch.images.as_slice();
    let results = parallel_slots(
        shard_nets,
        threads,
        |slot: usize, worker: &mut Sequential| -> Result<Option<ShardResult>> {
            let (start, end) = spans[slot];
            if start == end {
                return Ok(None);
            }
            let m = end - start;
            let mut i = 0usize;
            worker.visit_params(&mut |p| {
                p.value.as_mut_slice().copy_from_slice(&param_values[i]);
                i += 1;
            });
            let mut j = 0usize;
            worker.visit_layers_mut(&mut |l| {
                if let Some(state) = &extra[j] {
                    l.set_extra_state(state);
                }
                j += 1;
            });
            worker.zero_grad();
            let mut shard_dims = dims.clone();
            shard_dims[0] = m;
            let shard_images =
                Tensor::from_vec(images[start * row_len..end * row_len].to_vec(), &shard_dims)?;
            let shard_labels = &batch.labels[start..end];
            let logits = worker.forward(&shard_images, Phase::Train)?;
            let (loss, grad) = losses::cross_entropy(&logits, shard_labels)?;
            let acc = losses::accuracy(&logits, shard_labels)?;
            worker.backward(&grad)?;
            // Scale here so the fixed-order merge is a plain sum reproducing
            // the full-batch mean gradient: sum_s (m_s / b) * grad_s.
            let weight = m as f32 / b as f32;
            let mut grads = Vec::new();
            worker.visit_params(&mut |p| {
                grads.extend(p.grad.as_slice().iter().map(|g| g * weight));
            });
            let mut extra_after = Vec::new();
            worker.visit_layers_mut(&mut |l| extra_after.push(l.extra_state()));
            Ok(Some(ShardResult {
                grads,
                loss,
                acc,
                weight,
                extra: extra_after,
            }))
        },
    );
    let mut steps: Vec<ShardResult> = Vec::new();
    for r in results {
        if let Some(step) = r? {
            steps.push(step);
        }
    }
    let Some(first) = steps.first() else {
        return Ok((0.0, 0.0, 0));
    };
    let mut merged = vec![0.0f32; first.grads.len()];
    let parts: Vec<&[f32]> = steps.iter().map(|s| s.grads.as_slice()).collect();
    fixed_order_reduce(&parts, &mut merged);
    net.zero_grad();
    let mut off = 0usize;
    net.visit_params(&mut |p| {
        let g = p.grad.as_mut_slice();
        g.copy_from_slice(&merged[off..off + g.len()]);
        off += g.len();
    });
    // The first shard's batch-norm statistics become the main net's —
    // shard 0's slot pairing is fixed, so this choice is deterministic.
    let mut j = 0usize;
    net.visit_layers_mut(&mut |l| {
        if let Some(state) = &first.extra[j] {
            l.set_extra_state(state);
        }
        j += 1;
    });
    let mut loss = 0.0f32;
    let mut acc = 0.0f32;
    for s in &steps {
        loss += s.weight * s.loss;
        acc += s.weight * s.acc;
    }
    Ok((loss, acc, steps.len()))
}

/// Overwrites one gradient value of the first parameter with NaN — the
/// deterministic poisoning used by [`FaultPlan::poison_gradient_at_step`].
/// Public so every training loop (pretraining here, refining in
/// `cbq-core`) injects the exact same fault.
pub fn poison_first_gradient(net: &mut Sequential) {
    let mut done = false;
    net.visit_params(&mut |p| {
        if done {
            return;
        }
        if let Some(g) = p.grad.as_mut_slice().first_mut() {
            *g = f32::NAN;
            done = true;
        }
    });
}

/// Scans the step's loss and every parameter gradient for NaN/Inf,
/// returning a diagnosis naming the first offender. Shared by every
/// training loop that honours a [`GuardPolicy`].
pub fn non_finite_step(net: &mut Sequential, loss: f32) -> Option<String> {
    if !loss.is_finite() {
        return Some(format!("loss is {loss}"));
    }
    let mut diagnosis = None;
    net.visit_params(&mut |p| {
        if diagnosis.is_some() {
            return;
        }
        let rep = scan_finite_f32(p.grad.as_slice());
        if !rep.is_finite() {
            diagnosis = Some(format!(
                "gradient of {}: {} NaN + {} Inf of {} values (first at index {})",
                p.name,
                rep.nan,
                rep.inf,
                rep.total,
                rep.first_bad.unwrap_or(0)
            ));
        }
    });
    diagnosis
}

/// Evaluates classification accuracy of `net` on `subset` with the
/// forward-only inference path ([`Phase::Infer`]).
///
/// Convenience wrapper over [`evaluate_with_scratch`] with a throwaway
/// arena; callers on the probe hot path (the threshold search) keep a
/// per-worker [`Scratch`] alive across calls so steady-state evaluations
/// allocate nothing.
///
/// # Errors
///
/// Propagates any layer error.
pub fn evaluate(net: &mut Sequential, subset: &Subset, batch_size: usize) -> Result<f32> {
    let mut scratch = Scratch::new();
    evaluate_with_scratch(net, subset, batch_size, &mut scratch)
}

/// Evaluates classification accuracy of `net` on `subset`, drawing every
/// per-batch buffer from `scratch`.
///
/// Forwards run at [`Phase::Infer`] through [`Layer::forward_scratch`]:
/// no layer caches are written, the input copy and all layer temporaries
/// come from the arena, and the logits buffer is recycled back into it —
/// after the first (warming) batch the loop's f32 traffic is entirely
/// pool hits. Batching is by contiguous index range, and predictions use
/// the same first-maximum-wins rule as [`Tensor::argmax_rows`], so the
/// returned accuracy is identical to the historical eval-mode path.
///
/// # Errors
///
/// Propagates any layer error.
pub fn evaluate_with_scratch(
    net: &mut Sequential,
    subset: &Subset,
    batch_size: usize,
    scratch: &mut Scratch,
) -> Result<f32> {
    let bs = batch_size.max(1);
    let n = subset.len();
    let images = subset.images().as_slice();
    let labels = subset.labels();
    let dims = subset.images().shape().to_vec();
    let row_len: usize = dims[1..].iter().product();
    let mut shape = dims;
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + bs).min(n);
        let m = end - start;
        let buf = scratch.take_f32_copy(&images[start * row_len..end * row_len]);
        shape[0] = m;
        let x = Tensor::from_vec(buf, &shape)?;
        let logits = net.forward_scratch(x, Phase::Infer, scratch)?;
        logits.shape_obj().ensure_rank(2)?;
        let cols = logits.shape()[1];
        if cols == 0 {
            return Err(NnError::Tensor(cbq_tensor::TensorError::Empty));
        }
        let ls = logits.as_slice();
        for r in 0..m {
            let row = &ls[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            if best == labels[start + r] {
                correct += 1;
            }
        }
        scratch.recycle_f32(logits.into_vec());
        start = end;
    }
    Ok(if n == 0 {
        0.0
    } else {
        correct as f32 / n as f32
    })
}

/// Runs one forward-only inference over a staged batch and returns the
/// `[m, classes]` logits — the request-level entry point used by the
/// serving runtime.
///
/// `batch` is `m` samples flattened back to back (`m * row_len` values)
/// and `sample_shape` the per-sample dims (e.g. `[3, 12, 12]` or `[f]`).
/// The input copy and all layer temporaries come from `scratch`; the
/// returned logits own a pooled buffer that callers should recycle
/// (`Tensor::into_vec` + [`Scratch::recycle_f32`]) to keep warm serving
/// loops allocation-free. Runs at [`Phase::Infer`], so a call is
/// bit-identical to the corresponding [`evaluate_with_scratch`] batch.
///
/// # Errors
///
/// Returns a shape error when `batch` is not a whole number of samples,
/// and propagates any layer error.
pub fn infer_logits_scratch(
    net: &mut Sequential,
    batch: &[f32],
    sample_shape: &[usize],
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let row_len: usize = sample_shape.iter().product();
    if row_len == 0 || !batch.len().is_multiple_of(row_len) {
        return Err(NnError::Tensor(cbq_tensor::TensorError::ShapeMismatch {
            lhs: vec![row_len.max(1)],
            rhs: vec![batch.len()],
        }));
    }
    let m = batch.len() / row_len;
    let mut shape = Vec::with_capacity(sample_shape.len() + 1);
    shape.push(m);
    shape.extend_from_slice(sample_shape);
    let x = Tensor::from_vec(scratch.take_f32_copy(batch), &shape)?;
    let logits = net.forward_scratch(x, Phase::Infer, scratch)?;
    logits.shape_obj().ensure_rank(2)?;
    Ok(logits)
}

/// Per-class accuracy report from [`evaluate_per_class`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAccuracy {
    /// Correct predictions per class.
    pub correct: Vec<usize>,
    /// Samples seen per class.
    pub total: Vec<usize>,
}

impl ClassAccuracy {
    /// Accuracy of one class in `[0, 1]` (0 for unseen classes).
    pub fn class_accuracy(&self, class: usize) -> f32 {
        match (self.correct.get(class), self.total.get(class)) {
            (Some(&c), Some(&t)) if t > 0 => c as f32 / t as f32,
            _ => 0.0,
        }
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn overall(&self) -> f32 {
        let total: usize = self.total.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.correct.iter().sum::<usize>() as f32 / total as f32
    }
}

/// Evaluates accuracy per class — useful for spotting classes sacrificed
/// by an aggressive bit arrangement.
///
/// # Errors
///
/// Propagates any layer error.
pub fn evaluate_per_class(
    net: &mut Sequential,
    subset: &Subset,
    num_classes: usize,
    batch_size: usize,
) -> Result<ClassAccuracy> {
    let mut acc = ClassAccuracy {
        correct: vec![0; num_classes],
        total: vec![0; num_classes],
    };
    for batch in subset.batches(batch_size.max(1)) {
        let logits = net.forward(&batch.images, Phase::Infer)?;
        let preds = logits.argmax_rows()?;
        for (&p, &l) in preds.iter().zip(&batch.labels) {
            if l < num_classes {
                acc.total[l] += 1;
                if p == l {
                    acc.correct[l] += 1;
                }
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_learns_tiny_synthetic_dataset() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        // flatten images into [N, F] by reshaping the subset tensors
        let f = data.feature_len();
        let train = Subset::new(
            data.train()
                .images()
                .reshape(&[data.train().len(), f])
                .unwrap(),
            data.train().labels().to_vec(),
        )
        .unwrap();
        let test = Subset::new(
            data.test()
                .images()
                .reshape(&[data.test().len(), f])
                .unwrap(),
            data.test().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 24, 3], &mut rng).unwrap();
        let config = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(15, 0.05)
        };
        let stats = Trainer::new(config)
            .fit(&mut net, &train, &mut rng)
            .unwrap();
        assert_eq!(stats.len(), 15);
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss,
            "loss did not decrease"
        );
        let acc = evaluate(&mut net, &test, 64).unwrap();
        assert!(acc > 0.8, "test accuracy only {acc}");
    }

    #[test]
    fn evaluate_with_scratch_matches_eval_mode_and_goes_alloc_free() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let test = Subset::new(
            data.test()
                .images()
                .reshape(&[data.test().len(), f])
                .unwrap(),
            data.test().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 16, 3], &mut rng).unwrap();
        // legacy-style eval-mode accuracy, computed by hand
        let mut legacy_correct = 0usize;
        for batch in test.batches(8) {
            let logits = net.forward(&batch.images, Phase::Eval).unwrap();
            let preds = logits.argmax_rows().unwrap();
            legacy_correct += preds
                .iter()
                .zip(&batch.labels)
                .filter(|(p, l)| p == l)
                .count();
        }
        let legacy = legacy_correct as f32 / test.len() as f32;
        let mut scratch = Scratch::new();
        let warm = evaluate_with_scratch(&mut net, &test, 8, &mut scratch).unwrap();
        assert_eq!(warm, legacy);
        let before = scratch.fresh_allocs();
        let again = evaluate_with_scratch(&mut net, &test, 8, &mut scratch).unwrap();
        assert_eq!(again, legacy);
        assert_eq!(
            scratch.fresh_allocs(),
            before,
            "warm evaluation must draw every buffer from the pool"
        );
    }

    #[test]
    fn evaluate_on_empty_subset_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = models::mlp(&[4, 2], &mut rng).unwrap();
        let empty = Subset::new(cbq_tensor::Tensor::zeros(&[0, 4]), vec![]).unwrap();
        assert_eq!(evaluate(&mut net, &empty, 8).unwrap(), 0.0);
    }

    #[test]
    fn quick_config_milestones() {
        let c = TrainerConfig::quick(100, 0.1);
        assert_eq!(c.lr_milestones, vec![50, 75]);
        assert_eq!(c.batch_size, 100);
    }

    #[test]
    fn guard_abort_stops_on_poisoned_gradient() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let mut net = models::mlp(&[data.feature_len(), 8, 2], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(2, 0.05)
        };
        let plan = Arc::new(FaultPlan::none().poison_gradient_at_step(1));
        let err = Trainer::new(tc)
            .with_fault_plan(plan)
            .fit(&mut net, data.train(), &mut rng)
            .unwrap_err();
        match err {
            NnError::NonFinite(msg) => {
                assert!(msg.contains("NaN"), "diagnosis missing NaN count: {msg}");
                assert!(msg.contains("gradient of"), "diagnosis missing site: {msg}");
            }
            other => panic!("expected NonFinite, got {other}"),
        }
    }

    #[test]
    fn guard_skip_batch_survives_poisoned_gradient() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let mut net = models::mlp(&[data.feature_len(), 8, 2], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            guard: GuardPolicy::SkipBatch,
            ..TrainerConfig::quick(4, 0.05)
        };
        let plan = Arc::new(FaultPlan::none().poison_gradient_at_step(0));
        let stats = Trainer::new(tc)
            .with_fault_plan(plan)
            .fit(&mut net, data.train(), &mut rng)
            .unwrap();
        assert_eq!(stats.len(), 4);
        // the poisoned NaN never entered the weights
        net.visit_params(&mut |p| {
            assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
        });
    }

    #[test]
    fn guard_halve_lr_survives_within_budget() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let mut net = models::mlp(&[data.feature_len(), 8, 2], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            guard: GuardPolicy::HalveLr { max_halvings: 2 },
            ..TrainerConfig::quick(3, 0.05)
        };
        let plan = Arc::new(FaultPlan::none().poison_gradient_at_step(2));
        let stats = Trainer::new(tc)
            .with_fault_plan(plan)
            .fit(&mut net, data.train(), &mut rng)
            .unwrap();
        assert_eq!(stats.len(), 3);
        net.visit_params(&mut |p| {
            assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
        });
    }

    #[test]
    fn per_class_accuracy_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let mut net = models::mlp(&[data.feature_len(), 16, 3], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(8, 0.05)
        };
        Trainer::new(tc)
            .fit(&mut net, data.train(), &mut rng)
            .unwrap();
        let report = evaluate_per_class(&mut net, data.test(), 3, 32).unwrap();
        assert_eq!(report.total.iter().sum::<usize>(), data.test().len());
        let overall = evaluate(&mut net, data.test(), 32).unwrap();
        assert!((report.overall() - overall).abs() < 1e-6);
        for c in 0..3 {
            assert_eq!(report.total[c], data.spec().test_per_class);
            assert!(report.class_accuracy(c) <= 1.0);
        }
        assert_eq!(report.class_accuracy(99), 0.0);
    }
}
