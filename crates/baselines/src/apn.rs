//! APN-style baseline: model-level uniform quantization.
//!
//! Any-Precision DNNs train one network executable at several uniform
//! bit-widths, using knowledge distillation; evaluated at a single width
//! (as the paper's Figure 4 does, "neural networks of APN were set to
//! individual bit-width"), the system reduces to *uniform quantization of
//! every filter at that width plus KD fine-tuning* — which is what this
//! module implements, sharing the refining recipe with CQ so the
//! comparison isolates the bit-allocation policy.

use cbq_core::{refine, teacher_probs, CqError, RefineConfig, Result};
use cbq_data::SyntheticImages;
use cbq_nn::{evaluate, Layer, Phase, Sequential, Trainer, TrainerConfig};
use cbq_quant::{
    install_act_quant, install_uniform, model_size_bits, set_act_bits, set_act_calibration,
    BitArrangement, BitWidth, SizeReport,
};
use rand::Rng;

/// Configuration for an APN-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct ApnConfig {
    /// Uniform weight bit-width for every quantizable filter.
    pub weight_bits: u8,
    /// Activation bit-width (0 disables activation quantization).
    pub act_bits: u8,
    /// Optional pre-training recipe; `None` assumes a trained model.
    pub pretrain: Option<TrainerConfig>,
    /// KD refining recipe (shared shape with CQ's for a fair comparison).
    pub refine: RefineConfig,
    /// Batch size for evaluations.
    pub eval_batch: usize,
    /// Samples used to calibrate activation clip bounds.
    pub calibration_samples: usize,
}

impl ApnConfig {
    /// A `weight/activation`-bit APN setting with CPU-scale defaults.
    pub fn new(weight_bits: u8, act_bits: u8) -> Self {
        ApnConfig {
            weight_bits,
            act_bits,
            pretrain: Some(TrainerConfig::quick(15, 0.05)),
            refine: RefineConfig::quick(10, 0.01),
            eval_batch: 200,
            calibration_samples: 200,
        }
    }
}

/// Results of an APN-style run.
#[derive(Debug, Clone)]
pub struct ApnReport {
    /// Test accuracy of the full-precision model.
    pub fp_accuracy: f32,
    /// Test accuracy after uniform quantization, before refining.
    pub pre_refine_accuracy: f32,
    /// Test accuracy after KD refining.
    pub final_accuracy: f32,
    /// The uniform arrangement that was installed.
    pub arrangement: BitArrangement,
    /// Storage accounting.
    pub size: SizeReport,
}

/// Runs the APN-style baseline: uniform weight quantization at
/// `weight_bits`, activation quantization at `act_bits`, KD refining.
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] for invalid bit-widths or
/// propagates training/evaluation errors.
pub fn run_apn(
    mut model: Sequential,
    data: &SyntheticImages,
    config: &ApnConfig,
    rng: &mut impl Rng,
) -> Result<ApnReport> {
    let wbits = BitWidth::new(config.weight_bits).map_err(CqError::Quant)?;
    if config.eval_batch == 0 || config.calibration_samples == 0 {
        return Err(CqError::InvalidConfig(
            "eval_batch and calibration_samples must be positive".into(),
        ));
    }
    if let Some(tc) = &config.pretrain {
        Trainer::new(tc.clone()).fit(&mut model, data.train(), rng)?;
    }
    let fp_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    let teacher = teacher_probs(&mut model, data.train(), config.eval_batch)?;

    install_act_quant(&mut model);
    set_act_calibration(&mut model, true);
    let calib = data.val().head(config.calibration_samples)?;
    for batch in calib.batches(config.eval_batch) {
        model.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut model, false);
    if config.act_bits > 0 {
        let abits = BitWidth::new(config.act_bits).map_err(CqError::Quant)?;
        set_act_bits(&mut model, Some(abits));
    }

    let arrangement = install_uniform(&mut model, wbits);
    let pre_refine_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    refine(&mut model, data.train(), &teacher, &config.refine, rng)?;
    let final_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    let quantized = arrangement.total_weights();
    let total = model.param_count();
    let size = model_size_bits(&arrangement, total.saturating_sub(quantized));
    Ok(ApnReport {
        fp_accuracy,
        pre_refine_accuracy,
        final_accuracy,
        arrangement,
        size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::SyntheticSpec;
    use cbq_nn::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config(weight_bits: u8, act_bits: u8) -> ApnConfig {
        let mut c = ApnConfig::new(weight_bits, act_bits);
        c.pretrain = Some(TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(10, 0.05)
        });
        c.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(6, 0.02)
        };
        c
    }

    #[test]
    fn apn_end_to_end() {
        let mut rng = StdRng::seed_from_u64(31);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 20, 10, 3], &mut rng).unwrap();
        let report = run_apn(model, &data, &quick_config(4, 4), &mut rng).unwrap();
        assert!(report.fp_accuracy > 0.8);
        assert!((report.arrangement.average_bits() - 4.0).abs() < 1e-6);
        assert!(
            report.final_accuracy > 0.6,
            "4-bit APN too weak: {}",
            report.final_accuracy
        );
        assert!(report.size.compression_ratio() > 1.0);
    }

    #[test]
    fn lower_bits_hurt_more_before_refining() {
        let mut rng = StdRng::seed_from_u64(32);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let m8 = models::mlp(&[data.feature_len(), 20, 10, 3], &mut rng).unwrap();
        let mut rng_b = StdRng::seed_from_u64(32);
        let data_b = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng_b).unwrap();
        let m1 = models::mlp(&[data_b.feature_len(), 20, 10, 3], &mut rng_b).unwrap();
        let mut cfg8 = quick_config(8, 0);
        cfg8.refine.epochs = 0;
        let mut cfg1 = quick_config(1, 0);
        cfg1.refine.epochs = 0;
        let r8 = run_apn(m8, &data, &cfg8, &mut rng).unwrap();
        let r1 = run_apn(m1, &data_b, &cfg1, &mut rng_b).unwrap();
        assert!(
            r8.pre_refine_accuracy >= r1.pre_refine_accuracy - 0.05,
            "8-bit {} should hold up better than 1-bit {}",
            r8.pre_refine_accuracy,
            r1.pre_refine_accuracy
        );
    }

    #[test]
    fn invalid_bits_rejected() {
        let mut rng = StdRng::seed_from_u64(33);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 8, 2], &mut rng).unwrap();
        let mut cfg = quick_config(9, 0);
        cfg.pretrain = None;
        assert!(run_apn(model, &data, &cfg, &mut rng).is_err());
    }
}
