//! WrapNet-style baseline: uniform quantization with a low-bit-width
//! integer accumulator.
//!
//! WrapNet (Ni et al., ICLR 2021) executes quantized inference on
//! accumulators narrower than the worst-case sum, letting overflowing
//! partial sums **wrap around** and training the network (with a cyclic
//! activation) to tolerate it. The authors' testbed is unavailable, so we
//! simulate the salient mechanism: after each ReLU/quantization stage,
//! values beyond the accumulator's representable range `[-L, L)` wrap
//! modularly, where `L` scales with the headroom between the accumulator
//! width and the activation width:
//!
//! ```text
//! L = 2^(acc_bits - act_bits) * calibrated_activation_max
//! ```
//!
//! Fewer accumulator bits (or more activation bits) shrink `L`, making
//! overflow — and the accuracy penalty the paper's Figure 5 shows — more
//! frequent. Training runs with the wrap in the loop, as WrapNet does, so
//! the network adapts as far as the mechanism allows.

use cbq_core::{refine, teacher_probs, CqError, RefineConfig, Result};
use cbq_data::SyntheticImages;
use cbq_nn::{
    evaluate, ActivationQuantizer, Layer, LayerKind, Phase, Sequential, Trainer, TrainerConfig,
};
use cbq_quant::{
    install_uniform, model_size_bits, BitArrangement, BitWidth, SizeReport, UniformQuantizer,
};
use cbq_tensor::Tensor;
use rand::Rng;

/// Activation quantizer with accumulator-wraparound simulation.
///
/// In calibration mode it records the activation maximum like the plain
/// [`ActQuant`](cbq_quant::ActQuant); when active it first wraps values
/// into the accumulator range `[-L, L)` and then applies the uniform
/// `[0, b]` activation quantizer. The straight-through mask passes
/// gradients only where no wrap occurred and the value lay inside the
/// clip range.
#[derive(Debug, Clone)]
pub struct WrapActQuant {
    bits: Option<BitWidth>,
    acc_bits: u8,
    calibrating: bool,
    observed_max: f32,
}

impl WrapActQuant {
    /// Creates a disabled wrap quantizer with the given accumulator
    /// width.
    pub fn new(acc_bits: u8) -> Self {
        WrapActQuant {
            bits: None,
            acc_bits,
            calibrating: false,
            observed_max: 0.0,
        }
    }

    /// The simulated accumulator range bound `L` for the current
    /// calibration and activation width.
    pub fn wrap_bound(&self) -> f32 {
        let act_bits = self.bits.map(BitWidth::bits).unwrap_or(0);
        let headroom = self.acc_bits.saturating_sub(act_bits) as i32;
        self.observed_max.max(f32::MIN_POSITIVE) * 2f32.powi(headroom)
    }

    fn wrap(x: f32, l: f32) -> f32 {
        if l <= 0.0 {
            return x;
        }
        let two_l = 2.0 * l;
        let mut v = (x + l) % two_l;
        if v < 0.0 {
            v += two_l;
        }
        v - l
    }
}

impl ActivationQuantizer for WrapActQuant {
    fn clone_box(&self) -> Box<dyn ActivationQuantizer> {
        Box::new(self.clone())
    }

    fn apply(&mut self, x: &Tensor) -> (Tensor, Tensor) {
        if self.calibrating {
            let batch_max = x.as_slice().iter().fold(0.0f32, |m, &v| m.max(v));
            self.observed_max = self.observed_max.max(batch_max);
            return (x.clone(), Tensor::ones(x.shape()));
        }
        let Some(bits) = self.bits else {
            return (x.clone(), Tensor::ones(x.shape()));
        };
        let l = self.wrap_bound();
        let q = UniformQuantizer::activation(self.observed_max, bits);
        let hi = q.hi();
        let mut out = Tensor::zeros(x.shape());
        let mut mask = Tensor::zeros(x.shape());
        let src = x.as_slice();
        {
            let o = out.as_mut_slice();
            let m = mask.as_mut_slice();
            for i in 0..src.len() {
                let wrapped = Self::wrap(src[i], l);
                o[i] = q.quantize(wrapped);
                let no_wrap = (wrapped - src[i]).abs() < 1e-6;
                m[i] = if no_wrap && (0.0..=hi).contains(&src[i]) {
                    1.0
                } else {
                    0.0
                };
            }
        }
        (out, mask)
    }

    fn set_bits(&mut self, bits: Option<u8>) {
        self.bits = bits.and_then(|b| BitWidth::new(b).ok());
    }

    fn bits(&self) -> Option<u8> {
        self.bits.map(BitWidth::bits)
    }

    fn set_calibrating(&mut self, on: bool) {
        if on {
            self.observed_max = 0.0;
        }
        self.calibrating = on;
    }

    fn clip(&self) -> f32 {
        self.observed_max
    }
}

/// Configuration for a WrapNet-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapNetConfig {
    /// Uniform weight bit-width.
    pub weight_bits: u8,
    /// Activation bit-width.
    pub act_bits: u8,
    /// Simulated accumulator width (WrapNet's headline setting is 8).
    pub acc_bits: u8,
    /// Optional pre-training recipe.
    pub pretrain: Option<TrainerConfig>,
    /// KD refining recipe (wrap active in the loop).
    pub refine: RefineConfig,
    /// Batch size for evaluations.
    pub eval_batch: usize,
    /// Samples used to calibrate activation clip bounds.
    pub calibration_samples: usize,
}

impl WrapNetConfig {
    /// A `weight/activation`-bit WrapNet setting with an 8-bit
    /// accumulator and CPU-scale defaults.
    pub fn new(weight_bits: u8, act_bits: u8) -> Self {
        WrapNetConfig {
            weight_bits,
            act_bits,
            acc_bits: 8,
            pretrain: Some(TrainerConfig::quick(15, 0.05)),
            refine: RefineConfig::quick(10, 0.01),
            eval_batch: 200,
            calibration_samples: 200,
        }
    }
}

/// Results of a WrapNet-style run.
#[derive(Debug, Clone)]
pub struct WrapNetReport {
    /// Test accuracy of the full-precision model.
    pub fp_accuracy: f32,
    /// Test accuracy after quantization + wrap, before refining.
    pub pre_refine_accuracy: f32,
    /// Test accuracy after KD refining with the wrap in the loop.
    pub final_accuracy: f32,
    /// The uniform arrangement installed.
    pub arrangement: BitArrangement,
    /// Storage accounting.
    pub size: SizeReport,
}

/// Installs [`WrapActQuant`] on every ReLU. Returns the number installed.
fn install_wrap_quant(net: &mut dyn Layer, acc_bits: u8) -> usize {
    let mut count = 0;
    net.visit_layers_mut(&mut |l| {
        if l.kind() == LayerKind::Relu {
            l.set_activation_quantizer(Some(Box::new(WrapActQuant::new(acc_bits))));
            count += 1;
        }
    });
    count
}

/// Runs the WrapNet-style baseline.
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] for invalid widths or propagates
/// training/evaluation errors.
pub fn run_wrapnet(
    mut model: Sequential,
    data: &SyntheticImages,
    config: &WrapNetConfig,
    rng: &mut impl Rng,
) -> Result<WrapNetReport> {
    let wbits = BitWidth::new(config.weight_bits).map_err(CqError::Quant)?;
    if config.act_bits == 0 || config.act_bits > 8 {
        return Err(CqError::InvalidConfig(
            "wrapnet needs act_bits in 1..=8".into(),
        ));
    }
    if config.acc_bits == 0 {
        return Err(CqError::InvalidConfig("acc_bits must be positive".into()));
    }
    if let Some(tc) = &config.pretrain {
        Trainer::new(tc.clone()).fit(&mut model, data.train(), rng)?;
    }
    let fp_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    let teacher = teacher_probs(&mut model, data.train(), config.eval_batch)?;

    install_wrap_quant(&mut model, config.acc_bits);
    cbq_quant::set_act_calibration(&mut model, true);
    let calib = data.val().head(config.calibration_samples)?;
    for batch in calib.batches(config.eval_batch.max(1)) {
        model.forward(&batch.images, Phase::Eval)?;
    }
    cbq_quant::set_act_calibration(&mut model, false);
    cbq_quant::set_act_bits(
        &mut model,
        Some(BitWidth::new(config.act_bits).map_err(CqError::Quant)?),
    );

    let arrangement = install_uniform(&mut model, wbits);
    let pre_refine_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    refine(&mut model, data.train(), &teacher, &config.refine, rng)?;
    let final_accuracy = evaluate(&mut model, data.test(), config.eval_batch)?;
    let quantized = arrangement.total_weights();
    let total = model.param_count();
    let size = model_size_bits(&arrangement, total.saturating_sub(quantized));
    Ok(WrapNetReport {
        fp_accuracy,
        pre_refine_accuracy,
        final_accuracy,
        arrangement,
        size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::SyntheticSpec;
    use cbq_nn::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wrap_function_is_modular() {
        assert_eq!(WrapActQuant::wrap(0.5, 1.0), 0.5);
        assert!((WrapActQuant::wrap(1.5, 1.0) - (-0.5)).abs() < 1e-6);
        assert!((WrapActQuant::wrap(-1.5, 1.0) - 0.5).abs() < 1e-6);
        assert_eq!(WrapActQuant::wrap(3.0, 0.0), 3.0);
    }

    #[test]
    fn wrap_bound_scales_with_headroom() {
        let mut q = WrapActQuant::new(8);
        q.observed_max = 2.0;
        q.set_bits(Some(3));
        // 2^(8-3) * 2.0 = 64
        assert!((q.wrap_bound() - 64.0).abs() < 1e-4);
        q.set_bits(Some(7));
        // 2^(8-7) * 2.0 = 4
        assert!((q.wrap_bound() - 4.0).abs() < 1e-4);
    }

    #[test]
    fn values_within_range_pass_wrapped_quantizer() {
        let mut q = WrapActQuant::new(8);
        q.observed_max = 4.0;
        q.set_bits(Some(8));
        let x = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let (y, mask) = q.apply(&x);
        assert!((y.as_slice()[0] - 1.0).abs() < 0.05);
        assert!((y.as_slice()[1] - 3.0).abs() < 0.05);
        assert_eq!(mask.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn overflow_wraps_and_blocks_gradient() {
        let mut q = WrapActQuant::new(4);
        q.observed_max = 1.0;
        q.set_bits(Some(4));
        // headroom 0: L = 1.0, so x = 1.5 wraps to -0.5 -> clips to 0
        let x = Tensor::from_vec(vec![1.5], &[1]).unwrap();
        let (y, mask) = q.apply(&x);
        assert_eq!(y.as_slice()[0], 0.0);
        assert_eq!(mask.as_slice()[0], 0.0);
    }

    #[test]
    fn wrapnet_end_to_end_and_narrow_accumulator_hurts() {
        let mut rng = StdRng::seed_from_u64(41);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let make = |rng: &mut StdRng| models::mlp(&[data.feature_len(), 20, 10, 3], rng).unwrap();
        let mut cfg = WrapNetConfig::new(4, 4);
        cfg.pretrain = Some(TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(10, 0.05)
        });
        cfg.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(4, 0.02)
        };
        let wide = run_wrapnet(make(&mut rng), &data, &cfg, &mut rng).unwrap();
        assert!(wide.fp_accuracy > 0.8);
        assert!(wide.final_accuracy > 0.5, "8-bit accumulator run too weak");
        let mut narrow_cfg = cfg.clone();
        narrow_cfg.acc_bits = 4; // zero headroom over 4-bit activations
        narrow_cfg.refine.epochs = 0;
        let mut cfg_nr = cfg.clone();
        cfg_nr.refine.epochs = 0;
        let mut rng2 = StdRng::seed_from_u64(41);
        let data2 = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng2).unwrap();
        let wide_nr = run_wrapnet(make(&mut rng2), &data2, &cfg_nr, &mut rng2).unwrap();
        let mut rng3 = StdRng::seed_from_u64(41);
        let data3 = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng3).unwrap();
        let narrow = run_wrapnet(make(&mut rng3), &data3, &narrow_cfg, &mut rng3).unwrap();
        assert!(
            narrow.pre_refine_accuracy <= wide_nr.pre_refine_accuracy + 0.05,
            "narrow accumulator {} should not beat wide {}",
            narrow.pre_refine_accuracy,
            wide_nr.pre_refine_accuracy
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 8, 2], &mut rng).unwrap();
        let mut cfg = WrapNetConfig::new(2, 0);
        cfg.pretrain = None;
        assert!(run_wrapnet(model, &data, &cfg, &mut rng).is_err());
    }
}
