#![warn(missing_docs)]

//! Comparison baselines for the CBQ reproduction.
//!
//! The paper's Figure 4 compares CQ against **APN** (Any-Precision
//! Networks, Yu et al., AAAI 2021) and Figure 5 against **WrapNet**
//! (Ni et al., ICLR 2021). Neither system's exact code is reproducible
//! here (GPU training stacks), so this crate implements the *property*
//! each comparison isolates:
//!
//! - [`apn`] — model-level **uniform** quantization: every filter of every
//!   quantizable layer gets the same integer bit-width, trained with the
//!   same KD refining CQ uses. What Figure 4 measures is precisely
//!   uniform-vs-class-based bit allocation under equal training.
//! - [`wrapnet`] — uniform quantization plus a **low-bit-width integer
//!   accumulator** simulation: pre-activation sums wrap around at the
//!   accumulator's range (the overflow behaviour WrapNet's cyclic
//!   activation embraces). What Figure 5 measures is CQ's robustness
//!   advantage at matched weight/activation budgets.
//!
//! A third comparator, [`loss_aware`], implements the greedy
//! accuracy-sensitivity allocation of the paper's related work (\[8\]-style)
//! — per-layer granularity, `O(layers)` probes per step — as the
//! contrast to CQ's one-backward-pass scoring.

pub mod apn;
pub mod loss_aware;
pub mod wrapnet;

pub use apn::{run_apn, ApnConfig, ApnReport};
pub use loss_aware::{allocate_loss_aware, LossAwareConfig, LossAwareOutcome};
pub use wrapnet::{run_wrapnet, WrapActQuant, WrapNetConfig, WrapNetReport};
