//! Loss-aware greedy bit allocation, the family of methods the paper's
//! related work (\[8\], DA2-style) draws from: instead of class-based
//! scores, measure each layer's *accuracy sensitivity* to quantization
//! directly and spend the bit budget greedily where it hurts least.
//!
//! Algorithm: start with every quantizable layer at `max_bits`; at each
//! step, probe the validation accuracy of lowering every layer by one
//! bit; take the cheapest move (smallest accuracy drop per weight saved);
//! repeat until the average bit-width reaches the target. This needs
//! `O(layers)` probes per step — the per-iteration cost the paper's
//! one-backward-pass scoring avoids — so it doubles as a runtime
//! comparison point for the importance bench.

use cbq_core::{CqError, Result};
use cbq_data::Subset;
use cbq_nn::{evaluate, Sequential};
use cbq_quant::{install_arrangement, quant_units, BitArrangement, BitWidth, UnitArrangement};
use serde::{Deserialize, Serialize};

/// Configuration for the greedy loss-aware allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossAwareConfig {
    /// Target average bit-width over the quantized weights.
    pub target_avg_bits: f32,
    /// Starting (maximum) bit-width.
    pub max_bits: u8,
    /// Validation samples per probe.
    pub probe_samples: usize,
    /// Batch size for probes.
    pub batch_size: usize,
}

impl LossAwareConfig {
    /// Defaults matching [`SearchConfig::new`](cbq_core::SearchConfig::new).
    pub fn new(target_avg_bits: f32) -> Self {
        LossAwareConfig {
            target_avg_bits,
            max_bits: 4,
            probe_samples: 200,
            batch_size: 100,
        }
    }
}

/// Outcome of the greedy allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossAwareOutcome {
    /// Final per-layer arrangement (installed on the network).
    pub arrangement: BitArrangement,
    /// Average bit-width achieved.
    pub final_avg_bits: f32,
    /// Probe accuracy of the final arrangement.
    pub final_probe_accuracy: f32,
    /// Number of accuracy probes spent (the method's cost driver).
    pub probes: usize,
}

/// Runs greedy loss-aware per-layer bit allocation on a trained network.
///
/// On return the final arrangement is installed; refine with
/// [`cbq_core::refine()`] for a fair comparison against CQ.
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] for invalid settings or an empty
/// quantizable-unit set; propagates evaluation errors.
pub fn allocate_loss_aware(
    net: &mut Sequential,
    val: &Subset,
    config: &LossAwareConfig,
) -> Result<LossAwareOutcome> {
    if config.max_bits == 0 || config.max_bits > 8 {
        return Err(CqError::InvalidConfig("max_bits must be in 1..=8".into()));
    }
    if config.target_avg_bits < 0.0 || config.target_avg_bits > config.max_bits as f32 {
        return Err(CqError::InvalidConfig(
            "target outside [0, max_bits]".into(),
        ));
    }
    let units = quant_units(net);
    if units.is_empty() {
        return Err(CqError::InvalidConfig(
            "network has no quantizable units".into(),
        ));
    }
    let probe_set = val.head(config.probe_samples)?;
    let start = BitWidth::new(config.max_bits).map_err(CqError::Quant)?;
    // One shared bit level per layer (classic loss-aware granularity).
    let mut levels: Vec<BitWidth> = vec![start; units.len()];
    let build = |levels: &[BitWidth]| -> BitArrangement {
        let mut arr = BitArrangement::new();
        for (info, &b) in units.iter().zip(levels) {
            arr.push(UnitArrangement::uniform(
                info.name.clone(),
                info.out_channels,
                info.weights_per_filter(),
                b,
            ));
        }
        arr
    };
    let mut probes = 0usize;
    let mut arrangement = build(&levels);
    while arrangement.average_bits() > config.target_avg_bits {
        // Probe lowering each layer by one bit; pick the gentlest drop,
        // normalized by the weights it saves.
        let mut best: Option<(usize, f32)> = None;
        for i in 0..levels.len() {
            if levels[i].is_pruned() {
                continue;
            }
            let mut trial = levels.clone();
            trial[i] = trial[i].lower();
            let arr = build(&trial);
            install_arrangement(net, &arr).map_err(CqError::Quant)?;
            let acc = evaluate(net, &probe_set, config.batch_size)?;
            probes += 1;
            let saved = units[i].weight_len as f32;
            let cost = -acc / saved; // lower cost = higher acc per saved weight
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((i, cost));
            }
        }
        let Some((i, _)) = best else { break };
        levels[i] = levels[i].lower();
        arrangement = build(&levels);
    }
    install_arrangement(net, &arrangement).map_err(CqError::Quant)?;
    let final_probe_accuracy = evaluate(net, &probe_set, config.batch_size)?;
    Ok(LossAwareOutcome {
        final_avg_bits: arrangement.average_bits(),
        final_probe_accuracy,
        arrangement,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use cbq_nn::{models, Trainer, TrainerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained(seed: u64) -> (Sequential, SyntheticImages) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(8, 0.05)
        };
        Trainer::new(tc)
            .fit(&mut net, data.train(), &mut rng)
            .unwrap();
        (net, data)
    }

    #[test]
    fn allocation_meets_target() {
        let (mut net, data) = trained(50);
        let mut cfg = LossAwareConfig::new(2.0);
        cfg.probe_samples = 24;
        let out = allocate_loss_aware(&mut net, data.val(), &cfg).unwrap();
        assert!(
            out.final_avg_bits <= 2.0 + 1e-4,
            "avg {}",
            out.final_avg_bits
        );
        assert!(out.probes > 0);
        // per-layer granularity: uniform bits within each unit
        for unit in out.arrangement.units() {
            let first = unit.bits[0];
            assert!(unit.bits.iter().all(|&b| b == first));
        }
    }

    #[test]
    fn target_at_max_bits_needs_no_moves() {
        let (mut net, data) = trained(51);
        let mut cfg = LossAwareConfig::new(4.0);
        cfg.probe_samples = 24;
        let out = allocate_loss_aware(&mut net, data.val(), &cfg).unwrap();
        assert_eq!(out.probes, 0);
        assert!((out.final_avg_bits - 4.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (mut net, data) = trained(52);
        assert!(allocate_loss_aware(
            &mut net,
            data.val(),
            &LossAwareConfig {
                max_bits: 0,
                ..LossAwareConfig::new(2.0)
            }
        )
        .is_err());
        assert!(allocate_loss_aware(&mut net, data.val(), &LossAwareConfig::new(9.0)).is_err());
    }
}
