use crate::{BitArrangement, BitWidth, QuantError, Result, UniformQuantizer, UnitArrangement};
use cbq_nn::{Layer, WeightTransform};
use cbq_tensor::Tensor;

/// Structural description of one quantizable layer discovered by
/// [`quant_units`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantUnitInfo {
    /// Layer name.
    pub name: String,
    /// Filters (conv output channels / FC output neurons).
    pub out_channels: usize,
    /// Total scalar weights in the layer.
    pub weight_len: usize,
}

impl QuantUnitInfo {
    /// Scalar weights per filter.
    pub fn weights_per_filter(&self) -> usize {
        self.weight_len / self.out_channels.max(1)
    }
}

/// Lists the network's quantizable weight-bearing layers in execution
/// order — the paper's "filters and neurons" universe (first and output
/// layers are already excluded by the model builders).
pub fn quant_units(net: &mut dyn Layer) -> Vec<QuantUnitInfo> {
    let mut units = Vec::new();
    net.visit_layers_mut(&mut |l| {
        if l.quantizable() {
            if let (Some(out), Some(len)) = (l.out_channels(), l.weight_len()) {
                units.push(QuantUnitInfo {
                    name: l.name().to_string(),
                    out_channels: out,
                    weight_len: len,
                });
            }
        }
    });
    units
}

/// Where the symmetric clip bound `b` of the weight quantizer comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Layer-wide `max|w|`, the paper's choice (§II-A: "the upper bound b
    /// is the maximum absolute value of weights in the layer").
    #[default]
    PerLayer,
    /// Per-filter `max|w|` — a finer scale that trades hardware
    /// simplicity (one scale per layer) for lower quantization error on
    /// small-magnitude filters. Available for ablations.
    PerFilter,
}

/// Fake-quantizes a weight tensor filter-by-filter.
///
/// The symmetric clip bound is recomputed from the current shadow weights
/// on every application so QAT tracks the weights as they move; its
/// granularity is set by [`BoundMode`] (the paper uses
/// [`BoundMode::PerLayer`]). Filters at 0 bits are zeroed (pruned).
#[derive(Debug, Clone)]
pub struct PerFilterQuantizer {
    bits: Vec<BitWidth>,
    bound_mode: BoundMode,
}

impl PerFilterQuantizer {
    /// Creates a transform assigning `bits[k]` to filter `k`, with the
    /// paper's layer-wide bound.
    pub fn new(bits: Vec<BitWidth>) -> Self {
        PerFilterQuantizer {
            bits,
            bound_mode: BoundMode::PerLayer,
        }
    }

    /// Selects the bound granularity. Returns `self` for chaining.
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// The per-filter widths.
    pub fn bits(&self) -> &[BitWidth] {
        &self.bits
    }

    /// The bound granularity in use.
    pub fn bound_mode(&self) -> BoundMode {
        self.bound_mode
    }
}

impl WeightTransform for PerFilterQuantizer {
    fn clone_box(&self) -> Box<dyn WeightTransform> {
        Box::new(self.clone())
    }

    fn apply(&self, weight: &Tensor) -> Tensor {
        let filters = self.bits.len();
        if filters == 0 || weight.is_empty() {
            return weight.clone();
        }
        let per_filter = weight.len() / filters;
        let layer_bound = weight.max_abs();
        let mut out = weight.clone();
        Self::quantize_into(self, out.as_mut_slice(), per_filter, layer_bound);
        out
    }

    fn apply_into(&self, weight: &Tensor, out: &mut [f32]) {
        out.copy_from_slice(weight.as_slice());
        let filters = self.bits.len();
        if filters == 0 || weight.is_empty() {
            return;
        }
        let per_filter = weight.len() / filters;
        let layer_bound = weight.max_abs();
        Self::quantize_into(self, out, per_filter, layer_bound);
    }
}

impl PerFilterQuantizer {
    /// Shared quantization kernel of `apply`/`apply_into`: fake-quantizes
    /// the weights already present in `data`, chunked per filter.
    fn quantize_into(&self, data: &mut [f32], per_filter: usize, layer_bound: f32) {
        for (k, &bits) in self.bits.iter().enumerate() {
            let chunk = &mut data[k * per_filter..(k + 1) * per_filter];
            let bound = match self.bound_mode {
                BoundMode::PerLayer => layer_bound,
                BoundMode::PerFilter => chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs())),
            };
            let q = UniformQuantizer::symmetric(bound, bits);
            q.quantize_slice(chunk);
        }
    }
}

/// Installs a per-filter arrangement onto the network's quantizable
/// layers, replacing any existing weight transforms.
///
/// # Example
///
/// ```
/// use cbq_quant::{install_uniform, install_arrangement, BitWidth};
/// use cbq_nn::{models, Layer, Phase};
/// use cbq_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = models::mlp(&[4, 8, 6, 2], &mut rng)?;
/// // start uniform, then tweak one unit and re-install
/// let mut arrangement = install_uniform(&mut net, BitWidth::new(4)?);
/// arrangement.units_mut()[0].bits[0] = BitWidth::ZERO; // prune one neuron
/// install_arrangement(&mut net, &arrangement)?;
/// let y = net.forward(&Tensor::zeros(&[1, 4]), Phase::Eval)?;
/// assert_eq!(y.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`QuantError::ArrangementMismatch`] when a quantizable layer
/// has no unit in the arrangement or the filter counts disagree.
pub fn install_arrangement(net: &mut dyn Layer, arrangement: &BitArrangement) -> Result<()> {
    // Validate first so a failed install leaves the network untouched.
    let units = quant_units(net);
    for info in &units {
        let unit = arrangement.unit(&info.name).ok_or_else(|| {
            QuantError::ArrangementMismatch(format!("layer {} missing from arrangement", info.name))
        })?;
        if unit.filters() != info.out_channels {
            return Err(QuantError::ArrangementMismatch(format!(
                "layer {} has {} filters but the arrangement lists {}",
                info.name,
                info.out_channels,
                unit.filters()
            )));
        }
    }
    net.visit_layers_mut(&mut |l| {
        if l.quantizable() && l.out_channels().is_some() {
            if let Some(unit) = arrangement.unit(l.name()) {
                l.set_weight_transform(Some(Box::new(PerFilterQuantizer::new(unit.bits.clone()))));
            }
        }
    });
    Ok(())
}

/// Builds a uniform arrangement (every filter at `bits`) for the network,
/// installs it, and returns it — the APN-style model-level setting.
pub fn install_uniform(net: &mut dyn Layer, bits: BitWidth) -> BitArrangement {
    let mut arrangement = BitArrangement::new();
    for info in quant_units(net) {
        arrangement.push(UnitArrangement::uniform(
            info.name.clone(),
            info.out_channels,
            info.weights_per_filter(),
            bits,
        ));
    }
    // A uniform arrangement built from the same walk always matches.
    install_arrangement(net, &arrangement).expect("uniform arrangement matches by construction");
    arrangement
}

/// Removes every weight transform, restoring full-precision forward
/// passes.
pub fn clear_weight_transforms(net: &mut dyn Layer) {
    net.visit_layers_mut(&mut |l| {
        if l.out_channels().is_some() {
            l.set_weight_transform(None);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_nn::layers::{Conv2d, Linear, Relu};
    use cbq_nn::{Phase, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    fn small_net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new("n");
        net.push(
            Conv2d::new("conv1", 1, 2, 3, 1, 1, false, rng)
                .unwrap()
                .without_quantization(),
        );
        net.push(Relu::new("r1"));
        net.push(Conv2d::new("conv2", 2, 3, 3, 1, 1, false, rng).unwrap());
        net.push(Relu::new("r2"));
        net
    }

    #[test]
    fn quant_units_skips_excluded_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = small_net(&mut rng);
        let units = quant_units(&mut net);
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].name, "conv2");
        assert_eq!(units[0].out_channels, 3);
        assert_eq!(units[0].weight_len, 3 * 2 * 9);
        assert_eq!(units[0].weights_per_filter(), 18);
    }

    #[test]
    fn per_filter_quantizer_prunes_zero_bit_filters() {
        let w = Tensor::from_vec(vec![0.5, -0.8, 0.1, 0.9], &[2, 2]).unwrap();
        let t = PerFilterQuantizer::new(vec![BitWidth::ZERO, bw(8)]);
        let q = t.apply(&w);
        assert_eq!(&q.as_slice()[..2], &[0.0, 0.0]);
        // 8-bit over [-0.9, 0.9]: near-identity
        assert!((q.as_slice()[2] - 0.1).abs() < 0.01);
        assert!((q.as_slice()[3] - 0.9).abs() < 0.01);
    }

    #[test]
    fn per_filter_quantizer_uses_layer_wide_bound() {
        // Filter 0 has small weights but must share filter 1's range.
        let w = Tensor::from_vec(vec![0.1, 0.1, 1.0, -1.0], &[2, 2]).unwrap();
        let t = PerFilterQuantizer::new(vec![bw(1), bw(1)]);
        let q = t.apply(&w);
        // 1 bit over [-1, 1]: levels ±1. 0.1 rounds to +1.
        assert_eq!(q.as_slice(), &[1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn apply_into_matches_apply_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(17);
        let w = Tensor::randn(&[3, 8], 0.5, &mut rng);
        for mode in [BoundMode::PerLayer, BoundMode::PerFilter] {
            let t =
                PerFilterQuantizer::new(vec![bw(1), bw(3), BitWidth::ZERO]).with_bound_mode(mode);
            let via_apply = t.apply(&w);
            let mut via_into = vec![0.0f32; w.len()];
            t.apply_into(&w, &mut via_into);
            for (a, b) in via_apply.as_slice().iter().zip(&via_into) {
                assert_eq!(a.to_bits(), b.to_bits(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn per_filter_bound_mode_tracks_each_filter() {
        let w = Tensor::from_vec(vec![0.1, -0.1, 1.0, -1.0], &[2, 2]).unwrap();
        let t = PerFilterQuantizer::new(vec![bw(1), bw(1)]).with_bound_mode(BoundMode::PerFilter);
        assert_eq!(t.bound_mode(), BoundMode::PerFilter);
        let q = t.apply(&w);
        // filter 0 quantizes over [-0.1, 0.1]: levels ±0.1
        assert!((q.as_slice()[0] - 0.1).abs() < 1e-6);
        assert!((q.as_slice()[1] + 0.1).abs() < 1e-6);
        assert_eq!(&q.as_slice()[2..], &[1.0, -1.0]);
    }

    #[test]
    fn per_filter_bound_reduces_error_on_small_filters() {
        let mut rng = StdRng::seed_from_u64(9);
        // filter 0 tiny, filter 1 large
        let mut w = Tensor::randn(&[2, 16], 0.02, &mut rng);
        for v in &mut w.as_mut_slice()[16..] {
            *v *= 50.0;
        }
        let layer = PerFilterQuantizer::new(vec![bw(3), bw(3)]).apply(&w);
        let filt = PerFilterQuantizer::new(vec![bw(3), bw(3)])
            .with_bound_mode(BoundMode::PerFilter)
            .apply(&w);
        let err = |q: &Tensor| {
            q.sub(&w).unwrap().as_slice()[..16]
                .iter()
                .map(|e| e * e)
                .sum::<f32>()
        };
        assert!(
            err(&filt) < err(&layer),
            "per-filter bound should fit the small filter better"
        );
    }

    #[test]
    fn install_and_clear_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y_fp = net.forward(&x, Phase::Eval).unwrap();
        let arr = install_uniform(&mut net, bw(1));
        assert!((arr.average_bits() - 1.0).abs() < 1e-6);
        let y_q = net.forward(&x, Phase::Eval).unwrap();
        assert!(
            y_fp.sub(&y_q).unwrap().max_abs() > 1e-4,
            "1-bit quantization should change the output"
        );
        clear_weight_transforms(&mut net);
        let y_back = net.forward(&x, Phase::Eval).unwrap();
        assert!(y_fp.sub(&y_back).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn install_rejects_mismatched_arrangement() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = small_net(&mut rng);
        // wrong filter count
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform("conv2", 5, 18, bw(2)));
        assert!(matches!(
            install_arrangement(&mut net, &arr),
            Err(QuantError::ArrangementMismatch(_))
        ));
        // missing unit
        let arr2 = BitArrangement::new();
        assert!(install_arrangement(&mut net, &arr2).is_err());
    }

    #[test]
    fn linear_units_work_too() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc1", 4, 6, true, &mut rng).unwrap());
        let units = quant_units(&mut net);
        assert_eq!(units[0].weights_per_filter(), 4);
        let arr = install_uniform(&mut net, bw(2));
        assert_eq!(arr.units()[0].filters(), 6);
    }

    #[test]
    fn eight_bit_is_near_identity_for_training() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = small_net(&mut rng);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, &mut rng);
        let y_fp = net.forward(&x, Phase::Eval).unwrap();
        install_uniform(&mut net, bw(8));
        let y_q = net.forward(&x, Phase::Eval).unwrap();
        assert!(y_fp.sub(&y_q).unwrap().max_abs() < 0.05);
    }
}
