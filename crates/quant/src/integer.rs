//! Reference integer inference engine.
//!
//! Fake quantization (the training path) computes in f32 on quantized
//! *values*. Deployment hardware computes on quantized *codes* with
//! integer multiply-accumulate. This module implements the code-domain
//! execution and proves the two agree — the property that makes the
//! whole fake-quant training story meaningful on real accelerators.
//!
//! Encodings (derived from the Eq. 1–3 quantizer):
//!
//! - **Weights**, `b` bits, symmetric over `[-B, B]`, `N = 2^b` levels at
//!   `x_q = (2B/(N-1))·k − B`: stored as the odd-spaced integer code
//!   `v = 2k − (N−1) ∈ [−(N−1), N−1]` with scale `s_w = B/(N−1)`, so
//!   `x_q = s_w · v` exactly.
//! - **Activations**, `a` bits over `[0, C]`, `M = 2^a` levels: stored as
//!   the level index `j ∈ [0, M−1]` with scale `s_a = C/(M−1)`.
//!
//! A dot product is then `Σ w·x = s_w·s_a · Σ v·j` with the inner sum in
//! exact integer arithmetic. An optional accumulator width wraps the
//! running sum into `[−2^(n−1), 2^(n−1))` after every addition — the
//! overflow behaviour the WrapNet baseline simulates at training time.

use crate::{BitWidth, QuantError, Result};
use cbq_tensor::{Scratch, Tensor};

/// A batch of integer-coded activations.
#[derive(Debug, Clone, PartialEq)]
pub struct IntActivations {
    codes: Vec<i32>,
    scale: f32,
    batch: usize,
    features: usize,
}

impl IntActivations {
    /// Quantizes a `[batch, features]` activation tensor to integer codes
    /// over `[0, clip]` at `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] for a non-positive clip or
    /// [`QuantError::BitWidthOutOfRange`] for 0 bits (activations cannot
    /// be pruned wholesale).
    pub fn quantize(x: &Tensor, clip: f32, bits: BitWidth) -> Result<Self> {
        Self::quantize_into_codes(x, clip, bits, Vec::new())
    }

    /// Like [`IntActivations::quantize`], but draws the code buffer from
    /// `scratch` so warm probe loops skip the allocation. Pair with
    /// [`IntActivations::recycle`] to return the buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntActivations::quantize`].
    pub fn quantize_with_scratch(
        x: &Tensor,
        clip: f32,
        bits: BitWidth,
        scratch: &mut Scratch,
    ) -> Result<Self> {
        let codes = scratch.take_i32(x.len());
        Self::quantize_into_codes(x, clip, bits, codes)
    }

    fn quantize_into_codes(
        x: &Tensor,
        clip: f32,
        bits: BitWidth,
        mut codes: Vec<i32>,
    ) -> Result<Self> {
        if bits.is_pruned() {
            return Err(QuantError::BitWidthOutOfRange { bits: 0 });
        }
        if !(clip.is_finite() && clip > 0.0) {
            return Err(QuantError::InvalidRange { lo: 0.0, hi: clip });
        }
        x.shape_obj().ensure_rank(2)?;
        let m = bits.levels() as f32;
        let scale = clip / (m - 1.0);
        codes.clear();
        codes.extend(x.as_slice().iter().map(|&v| {
            let clamped = v.clamp(0.0, clip);
            (clamped / scale).round() as i32
        }));
        Ok(IntActivations {
            codes,
            scale,
            batch: x.shape()[0],
            features: x.shape()[1],
        })
    }

    /// Returns the code buffer to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut Scratch) {
        scratch.recycle_i32(self.codes);
    }

    /// The quantization scale `s_a`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Decodes back to f32 values (the fake-quant representation).
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
            &[self.batch, self.features],
        )
        .expect("codes length matches recorded dims")
    }

    /// Number of samples.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Features per sample.
    pub fn features(&self) -> usize {
        self.features
    }

    /// The raw level codes, row-major `[batch, features]` — the packed
    /// engine reads these to build per-sample activation bitplanes.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }
}

/// Encodes odd symmetric weight codes `v = 2k − (N−1)` at `bits` into the
/// unsigned level indices `k ∈ [0, N−1]` that the bitplane/nibble layouts
/// store. The inverse is [`levels_to_codes`].
///
/// # Errors
///
/// [`QuantError::BitWidthOutOfRange`] for pruned widths and
/// [`QuantError::CorruptCodes`] when a code is out of range or has the
/// wrong parity for the bitwidth (odd codes require `v ≡ N−1 (mod 2)`).
pub fn codes_to_levels(codes: &[i32], bits: BitWidth) -> Result<Vec<i32>> {
    if bits.is_pruned() {
        return Err(QuantError::BitWidthOutOfRange { bits: 0 });
    }
    let n_minus_1 = bits.levels() as i32 - 1;
    codes
        .iter()
        .map(|&v| {
            let k = v + n_minus_1;
            if k < 0 || k > 2 * n_minus_1 || k % 2 != 0 {
                return Err(QuantError::CorruptCodes(format!(
                    "weight code {v} is not a valid {}-bit odd code",
                    bits.bits()
                )));
            }
            Ok(k / 2)
        })
        .collect()
}

/// Decodes unsigned level indices back to odd symmetric codes — the
/// inverse of [`codes_to_levels`].
///
/// # Errors
///
/// [`QuantError::BitWidthOutOfRange`] for pruned widths and
/// [`QuantError::CorruptCodes`] for levels outside `[0, N−1]`.
pub fn levels_to_codes(levels: &[i32], bits: BitWidth) -> Result<Vec<i32>> {
    if bits.is_pruned() {
        return Err(QuantError::BitWidthOutOfRange { bits: 0 });
    }
    let n_minus_1 = bits.levels() as i32 - 1;
    levels
        .iter()
        .map(|&k| {
            if k < 0 || k > n_minus_1 {
                return Err(QuantError::CorruptCodes(format!(
                    "level {k} outside [0, {n_minus_1}]"
                )));
            }
            Ok(2 * k - n_minus_1)
        })
        .collect()
}

/// A linear layer compiled to integer codes, one bit-width per output
/// neuron (filter).
///
/// # Example
///
/// ```
/// use cbq_quant::{BitWidth, IntActivations, IntegerLinear};
/// use cbq_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.25], &[2, 2])?;
/// let lin = IntegerLinear::quantize(&w, &[BitWidth::new(4)?; 2], None)?;
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?;
/// let codes = IntActivations::quantize(&x, 2.0, BitWidth::new(8)?)?;
/// let y = lin.forward(&codes)?; // integer MACs, f32 rescale
/// assert_eq!(y.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntegerLinear {
    codes: Vec<i32>, // [out, in]
    filter_scales: Vec<f32>,
    out_features: usize,
    in_features: usize,
    bias: Option<Vec<f32>>,
}

impl IntegerLinear {
    /// Compiles an `[out, in]` weight tensor to integer codes with the
    /// given per-filter bit-widths. The symmetric bound `B` is the
    /// layer-wide `max|w|`, matching [`PerFilterQuantizer`].
    ///
    /// [`PerFilterQuantizer`]: crate::PerFilterQuantizer
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ArrangementMismatch`] when `bits` does not
    /// have one entry per output row.
    pub fn quantize(weight: &Tensor, bits: &[BitWidth], bias: Option<&Tensor>) -> Result<Self> {
        weight.shape_obj().ensure_rank(2)?;
        let (out, inf) = (weight.shape()[0], weight.shape()[1]);
        if bits.len() != out {
            return Err(QuantError::ArrangementMismatch(format!(
                "{} filters but {} bit entries",
                out,
                bits.len()
            )));
        }
        let bound = weight.max_abs().max(f32::MIN_POSITIVE);
        let mut codes = vec![0i32; out * inf];
        let mut filter_scales = vec![0.0f32; out];
        let w = weight.as_slice();
        for (k, &b) in bits.iter().enumerate() {
            if b.is_pruned() {
                filter_scales[k] = 0.0;
                continue;
            }
            let n = b.levels() as f32;
            let scale = bound / (n - 1.0);
            filter_scales[k] = scale;
            for i in 0..inf {
                // level index in 0..N, then odd-spaced code 2k-(N-1)
                let x = w[k * inf + i].clamp(-bound, bound);
                let level = ((n - 1.0) * (x + bound) / (2.0 * bound)).round() as i32;
                codes[k * inf + i] = 2 * level - (b.levels() as i32 - 1);
            }
        }
        Ok(IntegerLinear {
            codes,
            filter_scales,
            out_features: out,
            in_features: inf,
            bias: bias.map(|b| b.as_slice().to_vec()),
        })
    }

    /// The dequantized weights — must equal the fake-quant
    /// [`PerFilterQuantizer`](crate::PerFilterQuantizer) output.
    pub fn dequantized_weights(&self) -> Tensor {
        let mut out = vec![0.0f32; self.codes.len()];
        for k in 0..self.out_features {
            let s = self.filter_scales[k];
            for i in 0..self.in_features {
                out[k * self.in_features + i] = self.codes[k * self.in_features + i] as f32 * s;
            }
        }
        Tensor::from_vec(out, &[self.out_features, self.in_features])
            .expect("codes length matches dims")
    }

    /// Integer forward pass: exact i64 accumulation of code products,
    /// rescaled to f32 and bias-added. Equals the fake-quant matmul up to
    /// f32 rounding.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the activation width disagrees.
    pub fn forward(&self, x: &IntActivations) -> Result<Tensor> {
        self.forward_with_accumulator(x, None)
    }

    /// Integer forward pass with an optional accumulator width: the
    /// running sum wraps into the signed `acc_bits` range after every
    /// addition, reproducing narrow-accumulator hardware (WrapNet's
    /// regime).
    ///
    /// # Errors
    ///
    /// Returns a shape error when the activation width disagrees, or
    /// [`QuantError::BitWidthOutOfRange`] for `acc_bits == 0`.
    pub fn forward_with_accumulator(
        &self,
        x: &IntActivations,
        acc_bits: Option<u8>,
    ) -> Result<Tensor> {
        let mut out = vec![0.0f32; x.batch * self.out_features];
        self.forward_into(x, acc_bits, &mut out)?;
        Ok(Tensor::from_vec(out, &[x.batch, self.out_features])?)
    }

    /// Scratch-arena forward: the output buffer comes from `scratch`;
    /// recycle the returned tensor's storage (`Tensor::into_vec` +
    /// [`Scratch::recycle_f32`]) to keep warm probe loops allocation-free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntegerLinear::forward_with_accumulator`].
    pub fn forward_with_scratch(
        &self,
        x: &IntActivations,
        acc_bits: Option<u8>,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let mut out = scratch.take_f32(x.batch * self.out_features);
        self.forward_into(x, acc_bits, &mut out)?;
        Ok(Tensor::from_vec(out, &[x.batch, self.out_features])?)
    }

    fn forward_into(
        &self,
        x: &IntActivations,
        acc_bits: Option<u8>,
        out: &mut [f32],
    ) -> Result<()> {
        if x.features != self.in_features {
            return Err(QuantError::ArrangementMismatch(format!(
                "activation features {} vs layer input {}",
                x.features, self.in_features
            )));
        }
        let wrap = match acc_bits {
            None => None,
            Some(0) => return Err(QuantError::BitWidthOutOfRange { bits: 0 }),
            Some(n) => Some(1i64 << (n - 1)),
        };
        for b in 0..x.batch {
            let arow = &x.codes[b * self.in_features..(b + 1) * self.in_features];
            for k in 0..self.out_features {
                let wrow = &self.codes[k * self.in_features..(k + 1) * self.in_features];
                let mut acc: i64 = 0;
                match wrap {
                    None => {
                        for i in 0..self.in_features {
                            acc += wrow[i] as i64 * arow[i] as i64;
                        }
                    }
                    Some(l) => {
                        for i in 0..self.in_features {
                            acc += wrow[i] as i64 * arow[i] as i64;
                            // wrap into [-L, L)
                            acc = (acc + l).rem_euclid(2 * l) - l;
                        }
                    }
                }
                let mut y = acc as f32 * self.filter_scales[k] * x.scale;
                if let Some(bias) = &self.bias {
                    y += bias[k];
                }
                out[b * self.out_features + k] = y;
            }
        }
        Ok(())
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The wide weight codes, row-major `[out, in]`.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Per-filter rescale factors (0.0 for pruned filters).
    pub fn filter_scales(&self) -> &[f32] {
        &self.filter_scales
    }

    /// The bias vector, if present.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// Reassembles a layer from raw parts — the packed engine's unpack
    /// path uses this to rebuild the wide reference for round-trip tests.
    pub(crate) fn from_parts(
        codes: Vec<i32>,
        filter_scales: Vec<f32>,
        out_features: usize,
        in_features: usize,
        bias: Option<Vec<f32>>,
    ) -> IntegerLinear {
        debug_assert_eq!(codes.len(), out_features * in_features);
        debug_assert_eq!(filter_scales.len(), out_features);
        IntegerLinear {
            codes,
            filter_scales,
            out_features,
            in_features,
            bias,
        }
    }
}

/// A conv layer compiled to integer codes, one bit-width per output
/// channel. Uses direct (nested-loop) integer convolution — a reference
/// implementation for validating the fake-quant path, not a fast kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegerConv2d {
    codes: Vec<i32>, // [out, in, k, k]
    filter_scales: Vec<f32>,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    bias: Option<Vec<f32>>,
}

impl IntegerConv2d {
    /// Compiles an `[O, C, K, K]` weight tensor to integer codes.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ArrangementMismatch`] when `bits` does not
    /// have one entry per output channel.
    pub fn quantize(
        weight: &Tensor,
        bits: &[BitWidth],
        bias: Option<&Tensor>,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        weight.shape_obj().ensure_rank(4)?;
        let (o, c, k, k2) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if k != k2 {
            return Err(QuantError::ArrangementMismatch("non-square kernel".into()));
        }
        if bits.len() != o {
            return Err(QuantError::ArrangementMismatch(format!(
                "{o} channels but {} bit entries",
                bits.len()
            )));
        }
        let flat = weight.reshape(&[o, c * k * k])?;
        let lin = IntegerLinear::quantize(&flat, bits, None)?;
        Ok(IntegerConv2d {
            codes: lin.codes,
            filter_scales: lin.filter_scales,
            out_channels: o,
            in_channels: c,
            kernel: k,
            stride,
            padding,
            bias: bias.map(|b| b.as_slice().to_vec()),
        })
    }

    /// Integer convolution over a `[N, C, H, W]` activation batch encoded
    /// at `(codes, scale)` — pass data through
    /// [`IntActivations::quantize`] on the flattened per-image tensor and
    /// keep the same scale.
    ///
    /// For simplicity the input here is an f32 tensor of *codes* (exact
    /// small integers) plus the shared activation scale.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors for inconsistent operands.
    pub fn forward_codes(&self, codes: &Tensor, act_scale: f32) -> Result<Tensor> {
        let (n, oh, ow) = self.out_geometry(codes)?;
        let mut out = vec![0.0f32; n * self.out_channels * oh * ow];
        self.forward_codes_into(codes, act_scale, &mut out)?;
        Ok(Tensor::from_vec(out, &[n, self.out_channels, oh, ow])?)
    }

    /// Scratch-arena variant of [`IntegerConv2d::forward_codes`]: the
    /// output buffer comes from `scratch`; recycle the returned tensor's
    /// storage to keep warm loops allocation-free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntegerConv2d::forward_codes`].
    pub fn forward_codes_with_scratch(
        &self,
        codes: &Tensor,
        act_scale: f32,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let (n, oh, ow) = self.out_geometry(codes)?;
        let mut out = scratch.take_f32(n * self.out_channels * oh * ow);
        self.forward_codes_into(codes, act_scale, &mut out)?;
        Ok(Tensor::from_vec(out, &[n, self.out_channels, oh, ow])?)
    }

    fn out_geometry(&self, codes: &Tensor) -> Result<(usize, usize, usize)> {
        codes.shape_obj().ensure_rank(4)?;
        let (n, c, h, w) = (
            codes.shape()[0],
            codes.shape()[1],
            codes.shape()[2],
            codes.shape()[3],
        );
        if c != self.in_channels {
            return Err(QuantError::ArrangementMismatch(format!(
                "input channels {c} vs layer {}",
                self.in_channels
            )));
        }
        let spec = cbq_tensor::ConvSpec::new(self.stride, self.padding);
        let oh = spec.out_extent(h, self.kernel)?;
        let ow = spec.out_extent(w, self.kernel)?;
        Ok((n, oh, ow))
    }

    fn forward_codes_into(&self, codes: &Tensor, act_scale: f32, out: &mut [f32]) -> Result<()> {
        let (n, _oh, _ow) = self.out_geometry(codes)?;
        let (c, h, w) = (codes.shape()[1], codes.shape()[2], codes.shape()[3]);
        let k = self.kernel;
        let spec = cbq_tensor::ConvSpec::new(self.stride, self.padding);
        let oh = spec.out_extent(h, k)?;
        let ow = spec.out_extent(w, k)?;
        let src = codes.as_slice();
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let wbase = oc * self.in_channels * k * k;
                for yi in 0..oh {
                    for xi in 0..ow {
                        let mut acc: i64 = 0;
                        for ci in 0..self.in_channels {
                            for ki in 0..k {
                                let ii = (yi * self.stride + ki) as isize - self.padding as isize;
                                if ii < 0 || ii >= h as isize {
                                    continue;
                                }
                                for kj in 0..k {
                                    let jj =
                                        (xi * self.stride + kj) as isize - self.padding as isize;
                                    if jj < 0 || jj >= w as isize {
                                        continue;
                                    }
                                    let a = src[((ni * c + ci) * h + ii as usize) * w + jj as usize]
                                        as i64;
                                    let wv = self.codes[wbase + (ci * k + ki) * k + kj] as i64;
                                    acc += a * wv;
                                }
                            }
                        }
                        let mut y = acc as f32 * self.filter_scales[oc] * act_scale;
                        if let Some(bias) = &self.bias {
                            y += bias[oc];
                        }
                        out[((ni * self.out_channels + oc) * oh + yi) * ow + xi] = y;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PerFilterQuantizer, UniformQuantizer};
    use cbq_nn::WeightTransform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    #[test]
    fn activation_codes_round_trip() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 4.0, -1.0, 9.0], &[2, 3]).unwrap();
        let ia = IntActivations::quantize(&x, 4.0, bw(2)).unwrap();
        // levels 0, 4/3, 8/3, 4; codes 0..3
        let d = ia.dequantize();
        let q = UniformQuantizer::activation(4.0, bw(2));
        for (a, b) in d.as_slice().iter().zip(x.as_slice()) {
            assert!((a - q.quantize(*b)).abs() < 1e-5);
        }
        assert!(IntActivations::quantize(&x, 0.0, bw(2)).is_err());
        assert!(IntActivations::quantize(&x, 4.0, BitWidth::ZERO).is_err());
    }

    #[test]
    fn dequantized_weights_match_fake_quant() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Tensor::randn(&[5, 7], 0.3, &mut rng);
        let bits = vec![bw(1), bw(2), bw(3), bw(4), BitWidth::ZERO];
        let lin = IntegerLinear::quantize(&w, &bits, None).unwrap();
        let fake = PerFilterQuantizer::new(bits).apply(&w);
        let diff = lin.dequantized_weights().sub(&fake).unwrap().max_abs();
        assert!(
            diff < 1e-5,
            "integer codes disagree with fake quant by {diff}"
        );
    }

    #[test]
    fn integer_linear_matches_fake_quant_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Tensor::randn(&[6, 10], 0.4, &mut rng);
        let bias = Tensor::randn(&[6], 0.1, &mut rng);
        let bits = vec![bw(2), bw(3), bw(4), bw(8), bw(1), bw(2)];
        let lin = IntegerLinear::quantize(&w, &bits, Some(&bias)).unwrap();
        // activations: relu-like positive inputs, 3-bit over [0, 2]
        let x = Tensor::rand_uniform(&[4, 10], 0.0, 2.5, &mut rng);
        let ia = IntActivations::quantize(&x, 2.0, bw(3)).unwrap();
        let y_int = lin.forward(&ia).unwrap();
        // fake-quant reference
        let wq = PerFilterQuantizer::new(bits).apply(&w);
        let xq = ia.dequantize();
        let mut y_ref = xq.matmul_nt(&wq).unwrap();
        for (i, v) in y_ref.as_mut_slice().iter_mut().enumerate() {
            *v += bias.as_slice()[i % 6];
        }
        let diff = y_int.sub(&y_ref).unwrap().max_abs();
        assert!(
            diff < 1e-3,
            "integer path deviates from fake-quant by {diff}"
        );
    }

    #[test]
    fn pruned_filter_outputs_only_bias() {
        let w = Tensor::from_vec(vec![0.5, -0.5, 0.25, 0.75], &[2, 2]).unwrap();
        let bias = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let lin = IntegerLinear::quantize(&w, &[BitWidth::ZERO, bw(8)], Some(&bias)).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let ia = IntActivations::quantize(&x, 1.0, bw(8)).unwrap();
        let y = lin.forward(&ia).unwrap();
        assert!(
            (y.as_slice()[0] - 1.0).abs() < 1e-6,
            "pruned filter must pass only bias"
        );
    }

    #[test]
    fn narrow_accumulator_wraps_wide_does_not() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[3, 64], 0.5, &mut rng);
        let bits = vec![bw(8); 3];
        let lin = IntegerLinear::quantize(&w, &bits, None).unwrap();
        let x = Tensor::rand_uniform(&[2, 64], 0.0, 3.0, &mut rng);
        let ia = IntActivations::quantize(&x, 3.0, bw(7)).unwrap();
        let exact = lin.forward(&ia).unwrap();
        let wide = lin.forward_with_accumulator(&ia, Some(48)).unwrap();
        assert!(
            exact.sub(&wide).unwrap().max_abs() < 1e-6,
            "48-bit accumulator must be exact"
        );
        let narrow = lin.forward_with_accumulator(&ia, Some(8)).unwrap();
        assert!(
            exact.sub(&narrow).unwrap().max_abs() > 1e-3,
            "8-bit accumulator should overflow on 64-wide 8x7-bit products"
        );
        assert!(lin.forward_with_accumulator(&ia, Some(0)).is_err());
    }

    #[test]
    fn integer_conv_matches_fake_quant_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::randn(&[4, 2, 3, 3], 0.3, &mut rng);
        let bias = Tensor::randn(&[4], 0.1, &mut rng);
        let bits = vec![bw(2), bw(4), BitWidth::ZERO, bw(8)];
        let conv = IntegerConv2d::quantize(&w, &bits, Some(&bias), 1, 1).unwrap();
        // codes for a 2x2-channel 5x5 activation map at 3 bits over [0,2]
        let x = Tensor::rand_uniform(&[2, 2, 5, 5], 0.0, 2.2, &mut rng);
        let flat = x.reshape(&[2, 2 * 5 * 5]).unwrap();
        let ia = IntActivations::quantize(&flat, 2.0, bw(3)).unwrap();
        let codes = Tensor::from_vec(
            ia.dequantize()
                .as_slice()
                .iter()
                .map(|v| (v / ia.scale()).round())
                .collect(),
            &[2, 2, 5, 5],
        )
        .unwrap();
        let y_int = conv.forward_codes(&codes, ia.scale()).unwrap();
        // fake-quant reference
        let wq = PerFilterQuantizer::new(bits).apply(&w);
        let xq = ia.dequantize().reshape(&[2, 2, 5, 5]).unwrap();
        let y_ref =
            cbq_tensor::conv2d(&xq, &wq, Some(&bias), cbq_tensor::ConvSpec::new(1, 1)).unwrap();
        let diff = y_int.sub(&y_ref).unwrap().max_abs();
        assert!(
            diff < 1e-3,
            "integer conv deviates from fake-quant by {diff}"
        );
    }

    #[test]
    fn scratch_variants_match_and_reuse_buffers() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = Tensor::randn(&[5, 12], 0.4, &mut rng);
        let bits = vec![bw(3); 5];
        let lin = IntegerLinear::quantize(&w, &bits, None).unwrap();
        let x = Tensor::rand_uniform(&[3, 12], 0.0, 2.0, &mut rng);
        let plain = IntActivations::quantize(&x, 2.0, bw(4)).unwrap();
        let y_plain = lin.forward(&plain).unwrap();

        let mut scratch = Scratch::new();
        // warmup populates the pools
        let ia = IntActivations::quantize_with_scratch(&x, 2.0, bw(4), &mut scratch).unwrap();
        let y = lin.forward_with_scratch(&ia, None, &mut scratch).unwrap();
        for (a, b) in y_plain.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        ia.recycle(&mut scratch);
        scratch.recycle_f32(y.into_vec());
        // steady state: no pool misses
        let before = scratch.fresh_allocs();
        let ia = IntActivations::quantize_with_scratch(&x, 2.0, bw(4), &mut scratch).unwrap();
        let y = lin.forward_with_scratch(&ia, None, &mut scratch).unwrap();
        ia.recycle(&mut scratch);
        scratch.recycle_f32(y.into_vec());
        assert_eq!(scratch.fresh_allocs(), before);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let w = Tensor::zeros(&[2, 3]);
        assert!(IntegerLinear::quantize(&w, &[bw(2)], None).is_err());
        let lin = IntegerLinear::quantize(&w, &[bw(2), bw(2)], None).unwrap();
        let x = Tensor::ones(&[1, 4]);
        let ia = IntActivations::quantize(&x, 1.0, bw(2)).unwrap();
        assert!(lin.forward(&ia).is_err());
        let wc = Tensor::zeros(&[2, 1, 3, 2]);
        assert!(IntegerConv2d::quantize(&wc, &[bw(2), bw(2)], None, 1, 1).is_err());
    }
}
