//! Whole-network integer-code compilation: the deployment-side backend
//! behind `cbq-serve`'s `Backend::Integer`.
//!
//! [`IntegerNet::compile`] walks a trained, arrangement-installed
//! [`Sequential`] and lowers every layer into an integer execution stage:
//! quantizable linears become [`IntegerLinear`] units (integer MACs over
//! weight/activation codes, rescaled once per output), unquantized
//! linears stay in f32 through the packed GEMM kernels, and Relu
//! activation quantizers become code-domain quantization steps. The
//! supported topology is the MLP family (`Flatten` → `Linear`/`Relu`
//! chains); conv/BN nets are rejected with a typed error rather than
//! silently served through the wrong backend.
//!
//! Determinism: every stage is per-sample — integer MACs accumulate over
//! the input features of one sample, the f32 GEMM accumulates ascending-k
//! per output element, and quantization is elementwise — so a sample's
//! output is bit-identical no matter which micro-batch it rides in. That
//! property is what lets the serving runtime batch requests freely while
//! promising bit-exact parity with offline single-sample execution.

use crate::{BitArrangement, BitWidth, IntActivations, IntegerLinear, QuantError, Result};
use cbq_nn::{state_dict, Layer, LayerKind, Sequential};
use cbq_tensor::kernels::gemm_packed;
use cbq_tensor::{Scratch, Tensor};

/// One lowered execution stage of an [`IntegerNet`]. Crate-visible so the
/// packed engine (`crate::packed`) can re-lower compiled stages into the
/// bit-packed layout without re-walking the source network.
#[derive(Debug, Clone)]
pub(crate) enum Stage {
    /// Unquantized fully-connected layer, run in f32 via the packed GEMM.
    Linear {
        name: String,
        weight: Tensor,
        bias: Option<Tensor>,
    },
    /// Rectified linear activation, in place.
    Relu,
    /// Activation fake-quantization feeding an f32 consumer: clamp to
    /// `[0, clip]`, snap to the code grid, decode back to values.
    QuantValues { clip: f32, scale: f32 },
    /// Integer-code fully-connected layer. The incoming activations are
    /// quantized to codes over `[0, clip]` at `bits`, then multiplied
    /// against the layer's weight codes entirely in integer arithmetic.
    IntLinear {
        name: String,
        lin: IntegerLinear,
        clip: f32,
        bits: BitWidth,
    },
}

/// A whole network lowered to integer-code execution stages.
///
/// Cheap to clone (weights are shared per clone, codes are plain vecs),
/// so serving workers each keep a private instance next to a persistent
/// [`Scratch`] arena and run steady-state requests without allocating.
#[derive(Debug, Clone)]
pub struct IntegerNet {
    stages: Vec<Stage>,
    in_features: usize,
    out_features: usize,
    integer_layers: usize,
}

/// Intermediate leaf description gathered from the source network.
enum Leaf {
    Noop,
    Relu { quant: Option<(f32, u8)> },
    Linear { name: String, quantizable: bool },
}

impl IntegerNet {
    /// Lowers `net` (trained, with the bit arrangement's activation
    /// quantizers installed and calibrated) into integer stages.
    ///
    /// Every quantizable linear must have a unit in `arrangement` and be
    /// fed by an activation-quantized `Relu` — the integer engine consumes
    /// activation *codes*, so an unquantized input to a quantized layer
    /// has no integer representation.
    ///
    /// # Errors
    ///
    /// [`QuantError::ArrangementMismatch`] when the topology is not an
    /// MLP-style chain, a unit is missing or mis-sized, a quantized
    /// linear lacks a preceding activation quantizer, or layer widths do
    /// not chain.
    pub fn compile(net: &mut Sequential, arrangement: &BitArrangement) -> Result<IntegerNet> {
        let mut leaves: Vec<Leaf> = Vec::new();
        let mut unsupported: Option<String> = None;
        net.visit_layers_mut(&mut |l| match l.kind() {
            LayerKind::Reshape => leaves.push(Leaf::Noop),
            LayerKind::Relu => {
                let quant = l
                    .activation_quantizer_mut()
                    .and_then(|q| q.bits().map(|b| (q.clip(), b)));
                leaves.push(Leaf::Relu { quant });
            }
            LayerKind::Linear => leaves.push(Leaf::Linear {
                name: l.name().to_string(),
                quantizable: l.quantizable(),
            }),
            LayerKind::Container => {}
            other => {
                if unsupported.is_none() {
                    unsupported = Some(format!("{}: {:?}", l.name(), other));
                }
            }
        });
        if let Some(which) = unsupported {
            return Err(QuantError::ArrangementMismatch(format!(
                "integer backend supports Flatten/Linear/Relu topologies only, found {which}"
            )));
        }

        let dict = state_dict(net);
        let weight_of = |name: &str| -> Result<Tensor> {
            dict.params
                .get(&format!("{name}.weight"))
                .cloned()
                .ok_or_else(|| {
                    QuantError::ArrangementMismatch(format!("layer {name} has no weight tensor"))
                })
        };

        let mut stages = Vec::new();
        let mut pending: Option<(f32, u8)> = None;
        let mut cur_features: Option<usize> = None;
        let mut in_features = 0usize;
        let mut integer_layers = 0usize;
        for (i, leaf) in leaves.iter().enumerate() {
            match leaf {
                Leaf::Noop => {}
                Leaf::Relu { quant } => {
                    stages.push(Stage::Relu);
                    if let Some((clip, bits)) = *quant {
                        let bw = BitWidth::new(bits)?;
                        if bw.is_pruned() {
                            return Err(QuantError::BitWidthOutOfRange { bits: 0 });
                        }
                        if !(clip.is_finite() && clip > 0.0) {
                            return Err(QuantError::InvalidRange { lo: 0.0, hi: clip });
                        }
                        // Fold the quantization into the consumer when it is
                        // an integer linear (codes stay integer end to end);
                        // otherwise decode back to values for the f32 layer.
                        let next_is_int = leaves[i + 1..]
                            .iter()
                            .find(|l| !matches!(l, Leaf::Noop))
                            .is_some_and(|l| {
                                matches!(
                                    l,
                                    Leaf::Linear {
                                        quantizable: true,
                                        ..
                                    }
                                )
                            });
                        if next_is_int {
                            pending = Some((clip, bits));
                        } else {
                            let scale = clip / (bw.levels() as f32 - 1.0);
                            stages.push(Stage::QuantValues { clip, scale });
                        }
                    }
                }
                Leaf::Linear { name, quantizable } => {
                    let weight = weight_of(name)?;
                    if weight.rank() != 2 {
                        return Err(QuantError::ArrangementMismatch(format!(
                            "layer {name} weight must be rank-2"
                        )));
                    }
                    let (out_f, in_f) = (weight.shape()[0], weight.shape()[1]);
                    if let Some(prev) = cur_features {
                        if prev != in_f {
                            return Err(QuantError::ArrangementMismatch(format!(
                                "layer {name} expects {in_f} inputs but receives {prev}"
                            )));
                        }
                    } else {
                        in_features = in_f;
                    }
                    cur_features = Some(out_f);
                    let bias = dict.params.get(&format!("{name}.bias")).cloned();
                    if *quantizable {
                        let unit = arrangement.unit(name).ok_or_else(|| {
                            QuantError::ArrangementMismatch(format!(
                                "arrangement has no unit for quantizable layer {name}"
                            ))
                        })?;
                        let (clip, bits) = pending.take().ok_or_else(|| {
                            QuantError::ArrangementMismatch(format!(
                                "quantized layer {name} must follow an activation-quantized Relu"
                            ))
                        })?;
                        let lin = IntegerLinear::quantize(&weight, &unit.bits, bias.as_ref())?;
                        stages.push(Stage::IntLinear {
                            name: name.clone(),
                            lin,
                            clip,
                            bits: BitWidth::new(bits)?,
                        });
                        integer_layers += 1;
                    } else {
                        stages.push(Stage::Linear {
                            name: name.clone(),
                            weight,
                            bias,
                        });
                    }
                }
            }
        }
        let out_features = cur_features.ok_or_else(|| {
            QuantError::ArrangementMismatch("network has no linear layers".into())
        })?;
        Ok(IntegerNet {
            stages,
            in_features,
            out_features,
            integer_layers,
        })
    }

    /// Input width (features per sample after flattening).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width (number of classes).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// How many layers execute in the integer-code domain.
    pub fn integer_layers(&self) -> usize {
        self.integer_layers
    }

    /// Runs a `[m, in_features]` batch, drawing every temporary from
    /// `scratch`. The returned logits own a pooled buffer — recycle it
    /// (`Tensor::into_vec` + [`Scratch::recycle_f32`]) to keep warm loops
    /// allocation-free. Per-sample results are bit-identical regardless
    /// of batch composition.
    ///
    /// # Errors
    ///
    /// Shape mismatches or any integer-engine error.
    pub fn forward_scratch(&self, x: Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        x.shape_obj().ensure_rank(2)?;
        if x.shape()[1] != self.in_features {
            return Err(QuantError::ArrangementMismatch(format!(
                "input features {} vs network input {}",
                x.shape()[1],
                self.in_features
            )));
        }
        let mut cur = x;
        for stage in &self.stages {
            match stage {
                Stage::Relu => cur.map_inplace(|v| v.max(0.0)),
                Stage::QuantValues { clip, scale } => {
                    cur.map_inplace(|v| (v.clamp(0.0, *clip) / scale).round() * scale);
                }
                Stage::Linear { weight, bias, .. } => {
                    let m = cur.shape()[0];
                    let k = cur.shape()[1];
                    let n = weight.shape()[0];
                    let mut out = scratch.take_f32(m * n);
                    gemm_packed(
                        m,
                        n,
                        k,
                        cur.as_slice(),
                        k,
                        1,
                        weight.as_slice(),
                        1,
                        k,
                        &mut out,
                        scratch,
                    );
                    if let Some(b) = bias {
                        let bs = b.as_slice();
                        for r in 0..m {
                            let row = &mut out[r * n..(r + 1) * n];
                            for (o, &bv) in row.iter_mut().zip(bs) {
                                *o += bv;
                            }
                        }
                    }
                    scratch.recycle_f32(cur.into_vec());
                    cur = Tensor::from_vec(out, &[m, n])?;
                }
                Stage::IntLinear {
                    lin, clip, bits, ..
                } => {
                    let acts = IntActivations::quantize_with_scratch(&cur, *clip, *bits, scratch)?;
                    let y = lin.forward_with_scratch(&acts, None, scratch)?;
                    acts.recycle(scratch);
                    scratch.recycle_f32(cur.into_vec());
                    cur = y;
                }
            }
        }
        Ok(cur)
    }

    /// Convenience forward with a throwaway arena.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntegerNet::forward_scratch`].
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut scratch = Scratch::new();
        self.forward_scratch(x.clone(), &mut scratch)
    }

    /// The lowered stages in execution order, for the packed re-lowering.
    pub(crate) fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Names of the stages in execution order (diagnostics / tests).
    pub fn stage_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Relu => "relu".to_string(),
                Stage::QuantValues { .. } => "act-quant".to_string(),
                Stage::Linear { name, .. } => format!("fp:{name}"),
                Stage::IntLinear { name, .. } => format!("int:{name}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        install_act_quant, install_arrangement, set_act_bits, set_act_calibration, UnitArrangement,
    };
    use cbq_nn::{models, Phase};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_fixture(bits: u8) -> (Sequential, BitArrangement) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = models::mlp(&[6, 10, 8, 3], &mut rng).unwrap();
        // Calibrate activation clips on a few random batches.
        install_act_quant(&mut net);
        set_act_calibration(&mut net, true);
        for _ in 0..4 {
            let x = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng);
            net.forward(&x, Phase::Eval).unwrap();
        }
        set_act_calibration(&mut net, false);
        set_act_bits(&mut net, Some(BitWidth::new(bits).unwrap()));
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform(
            "fc2",
            8,
            10,
            BitWidth::new(bits).unwrap(),
        ));
        (net, arr)
    }

    #[test]
    fn compile_lowers_mlp_topology() {
        let (mut net, arr) = quantized_fixture(4);
        let int = IntegerNet::compile(&mut net, &arr).unwrap();
        assert_eq!(int.in_features(), 6);
        assert_eq!(int.out_features(), 3);
        assert_eq!(int.integer_layers(), 1);
        let names = int.stage_names();
        assert_eq!(
            names,
            vec!["fp:fc1", "relu", "int:fc2", "relu", "act-quant", "fp:fc3"]
        );
    }

    #[test]
    fn integer_forward_tracks_fake_quant_reference() {
        let (mut net, arr) = quantized_fixture(6);
        let int = IntegerNet::compile(&mut net, &arr).unwrap();
        // Reference: the fake-quant network (weight transform installed).
        install_arrangement(&mut net, &arr).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::rand_uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let reference = net.forward(&x, Phase::Eval).unwrap();
        let got = int.forward(&x).unwrap();
        for (a, b) in reference.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() < 2e-3, "fake-quant {a} vs integer {b}");
        }
    }

    #[test]
    fn batching_is_bit_invariant() {
        let (mut net, arr) = quantized_fixture(3);
        let int = IntegerNet::compile(&mut net, &arr).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&[6, 6], -1.0, 1.0, &mut rng);
        let batched = int.forward(&x).unwrap();
        for r in 0..6 {
            let single = int
                .forward(&x.row(r).unwrap().reshape(&[1, 6]).unwrap())
                .unwrap();
            for (a, b) in batched.as_slice()[r * 3..(r + 1) * 3]
                .iter()
                .zip(single.as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} differs under batching");
            }
        }
    }

    #[test]
    fn scratch_forward_is_bitwise_and_warm_loops_hit_the_pool() {
        let (mut net, arr) = quantized_fixture(5);
        let int = IntegerNet::compile(&mut net, &arr).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform(&[3, 6], -1.0, 1.0, &mut rng);
        let cold = int.forward(&x).unwrap();
        let mut scratch = Scratch::new();
        // Warm pass populates the pools.
        let y = int.forward_scratch(x.clone(), &mut scratch).unwrap();
        assert_eq!(y.as_slice(), cold.as_slice());
        scratch.recycle_f32(y.into_vec());
        let before = scratch.fresh_allocs();
        for _ in 0..8 {
            let input = scratch.take_f32_copy(x.as_slice());
            let x2 = Tensor::from_vec(input, &[3, 6]).unwrap();
            let y = int.forward_scratch(x2, &mut scratch).unwrap();
            assert_eq!(y.as_slice(), cold.as_slice());
            scratch.recycle_f32(y.into_vec());
        }
        assert_eq!(scratch.fresh_allocs(), before, "warm loop missed the pool");
    }

    #[test]
    fn missing_unit_and_conv_topologies_are_rejected() {
        let (mut net, _) = quantized_fixture(4);
        let empty = BitArrangement::new();
        assert!(matches!(
            IntegerNet::compile(&mut net, &empty),
            Err(QuantError::ArrangementMismatch(_))
        ));

        let mut rng = StdRng::seed_from_u64(1);
        let cfg = cbq_nn::models::VggConfig::for_input(3, 8, 8, 4);
        let mut vgg = cbq_nn::models::vgg_small(&cfg, &mut rng).unwrap();
        assert!(matches!(
            IntegerNet::compile(&mut vgg, &BitArrangement::new()),
            Err(QuantError::ArrangementMismatch(_))
        ));
    }

    #[test]
    fn quantized_layer_without_act_quant_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = models::mlp(&[6, 10, 8, 3], &mut rng).unwrap();
        // No activation quantizers installed at all.
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform(
            "fc2",
            8,
            10,
            BitWidth::new(4).unwrap(),
        ));
        let err = IntegerNet::compile(&mut net, &arr).unwrap_err();
        assert!(err.to_string().contains("activation-quantized"));
    }
}
