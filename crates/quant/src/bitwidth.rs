use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated quantization bit-width in `0..=8`.
///
/// `0` bits means the weights are pruned (quantized to zero) — the paper
/// treats pruning as the 0-bit end of the same spectrum. The upper limit
/// of 8 covers every setting in the paper's evaluation (≤ 7 bits).
///
/// # Example
///
/// ```
/// use cbq_quant::BitWidth;
///
/// let b = BitWidth::new(3)?;
/// assert_eq!(b.levels(), 8);
/// assert!(BitWidth::new(9).is_err());
/// assert!(BitWidth::ZERO.is_pruned());
/// # Ok::<(), cbq_quant::QuantError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(try_from = "u8", into = "u8")]
pub struct BitWidth(u8);

impl BitWidth {
    /// The pruned width: 0 bits.
    pub const ZERO: BitWidth = BitWidth(0);
    /// The maximum supported width: 8 bits.
    pub const MAX: BitWidth = BitWidth(8);

    /// Creates a bit-width.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BitWidthOutOfRange`] for `bits > 8`.
    pub fn new(bits: u8) -> Result<Self> {
        if bits > 8 {
            return Err(QuantError::BitWidthOutOfRange { bits });
        }
        Ok(BitWidth(bits))
    }

    /// The raw number of bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of representable levels, `2^bits` (1 for pruned weights —
    /// the single level is zero).
    pub fn levels(self) -> u32 {
        1u32 << self.0
    }

    /// Whether this width prunes the weights entirely.
    pub fn is_pruned(self) -> bool {
        self.0 == 0
    }

    /// The next lower width, saturating at zero.
    pub fn lower(self) -> BitWidth {
        BitWidth(self.0.saturating_sub(1))
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl TryFrom<u8> for BitWidth {
    type Error = QuantError;

    fn try_from(bits: u8) -> Result<Self> {
        BitWidth::new(bits)
    }
}

impl From<BitWidth> for u8 {
    fn from(b: BitWidth) -> u8 {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bounds() {
        for bits in 0..=8u8 {
            let b = BitWidth::new(bits).unwrap();
            assert_eq!(b.bits(), bits);
            assert_eq!(b.levels(), 1 << bits);
        }
        assert!(BitWidth::new(9).is_err());
    }

    #[test]
    fn ordering_and_lower() {
        assert!(BitWidth::new(2).unwrap() < BitWidth::new(3).unwrap());
        assert_eq!(BitWidth::new(1).unwrap().lower(), BitWidth::ZERO);
        assert_eq!(BitWidth::ZERO.lower(), BitWidth::ZERO);
    }

    #[test]
    fn display_and_serde() {
        let b = BitWidth::new(4).unwrap();
        assert_eq!(b.to_string(), "4-bit");
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(json, "4");
        let back: BitWidth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        let bad: std::result::Result<BitWidth, _> = serde_json::from_str("12");
        assert!(bad.is_err());
    }

    #[test]
    fn pruned_flag() {
        assert!(BitWidth::ZERO.is_pruned());
        assert!(!BitWidth::new(1).unwrap().is_pruned());
        assert_eq!(BitWidth::ZERO.levels(), 1);
    }
}
