use crate::{BitWidth, QuantError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-filter bit-widths for one quantizable layer ("unit").
///
/// `bits[k]` is the width assigned to filter `k` (conv output channel or
/// FC output neuron); `weights_per_filter` is how many scalar weights each
/// filter holds, used to weight the average-bit computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitArrangement {
    /// Layer name, matching [`Layer::name`](cbq_nn::Layer::name).
    pub name: String,
    /// Bit-width per filter/neuron.
    pub bits: Vec<BitWidth>,
    /// Scalar weights per filter (`in_c * k * k` for conv, `in` for FC).
    pub weights_per_filter: usize,
}

impl UnitArrangement {
    /// Creates a unit with every filter at `bits`.
    pub fn uniform(
        name: impl Into<String>,
        filters: usize,
        weights_per_filter: usize,
        bits: BitWidth,
    ) -> Self {
        UnitArrangement {
            name: name.into(),
            bits: vec![bits; filters],
            weights_per_filter,
        }
    }

    /// Number of filters in the unit.
    pub fn filters(&self) -> usize {
        self.bits.len()
    }

    /// Total scalar weights in the unit.
    pub fn weight_count(&self) -> usize {
        self.bits.len() * self.weights_per_filter
    }

    /// Total bits this unit occupies after quantization.
    pub fn total_bits(&self) -> u64 {
        self.bits
            .iter()
            .map(|b| b.bits() as u64 * self.weights_per_filter as u64)
            .sum()
    }

    /// Fraction of filters that are pruned (0-bit).
    pub fn pruned_fraction(&self) -> f32 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.bits.iter().filter(|b| b.is_pruned()).count() as f32 / self.bits.len() as f32
    }
}

/// Histogram of filters per bit-width across an arrangement (Figure 7's
/// raw data).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitHistogram {
    /// `counts[b]` = number of filters assigned `b` bits, for `b` in 0..=8.
    pub counts: [usize; 9],
}

impl BitHistogram {
    /// Total filters counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Percentage of filters at each bit-width, in order 0..=8.
    pub fn percentages(&self) -> [f32; 9] {
        let total = self.total().max(1) as f32;
        let mut out = [0.0f32; 9];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = 100.0 * c as f32 / total;
        }
        out
    }
}

/// A complete per-filter bit-width assignment for a network — the output
/// of the class-based search and the input to
/// [`install_arrangement`](crate::install_arrangement).
///
/// # Example
///
/// ```
/// use cbq_quant::{BitArrangement, BitWidth, UnitArrangement};
///
/// let mut arr = BitArrangement::new();
/// arr.push(UnitArrangement::uniform("conv2", 4, 9, BitWidth::new(2)?));
/// arr.push(UnitArrangement::uniform("fc5", 8, 16, BitWidth::new(4)?));
/// // conv2: 4*9 weights at 2 bits; fc5: 8*16 weights at 4 bits
/// let avg = arr.average_bits();
/// assert!((avg - (36.0 * 2.0 + 128.0 * 4.0) / 164.0).abs() < 1e-6);
/// # Ok::<(), cbq_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitArrangement {
    units: Vec<UnitArrangement>,
}

impl BitArrangement {
    /// Creates an empty arrangement.
    pub fn new() -> Self {
        BitArrangement { units: Vec::new() }
    }

    /// Appends a unit.
    pub fn push(&mut self, unit: UnitArrangement) {
        self.units.push(unit);
    }

    /// The units in network order.
    pub fn units(&self) -> &[UnitArrangement] {
        &self.units
    }

    /// Mutable access to the units (the search mutates bits in place).
    pub fn units_mut(&mut self) -> &mut [UnitArrangement] {
        &mut self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the arrangement holds no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Finds a unit by layer name.
    pub fn unit(&self, name: &str) -> Option<&UnitArrangement> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Total scalar weights covered by the arrangement.
    pub fn total_weights(&self) -> usize {
        self.units.iter().map(|u| u.weight_count()).sum()
    }

    /// The weight-count-weighted average bit-width — the paper's
    /// `Σ b_i / N` over all quantized weights (first/output layers are
    /// simply not part of the arrangement).
    pub fn average_bits(&self) -> f32 {
        let total = self.total_weights();
        if total == 0 {
            return 0.0;
        }
        let bits: u64 = self.units.iter().map(|u| u.total_bits()).sum();
        bits as f32 / total as f32
    }

    /// Histogram of filters per bit-width across all units.
    pub fn histogram(&self) -> BitHistogram {
        let mut h = BitHistogram::default();
        for u in &self.units {
            for b in &u.bits {
                h.counts[b.bits() as usize] += 1;
            }
        }
        h
    }

    /// Histogram for a single unit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ArrangementMismatch`] for an unknown name.
    pub fn unit_histogram(&self, name: &str) -> Result<BitHistogram> {
        let unit = self
            .unit(name)
            .ok_or_else(|| QuantError::ArrangementMismatch(format!("no unit named {name}")))?;
        let mut h = BitHistogram::default();
        for b in &unit.bits {
            h.counts[b.bits() as usize] += 1;
        }
        Ok(h)
    }

    /// Sets every filter of every unit to `bits`.
    pub fn set_uniform(&mut self, bits: BitWidth) {
        for u in &mut self.units {
            for b in &mut u.bits {
                *b = bits;
            }
        }
    }

    /// Writes the arrangement as pretty-printed JSON — the deployment
    /// artifact a hardware flow consumes.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ArrangementMismatch`] wrapping any I/O or
    /// serialization failure.
    pub fn to_json_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| QuantError::ArrangementMismatch(format!("serialize: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| QuantError::ArrangementMismatch(format!("write: {e}")))
    }

    /// Reads an arrangement previously written by
    /// [`BitArrangement::to_json_file`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ArrangementMismatch`] wrapping any I/O or
    /// parse failure.
    pub fn from_json_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| QuantError::ArrangementMismatch(format!("read: {e}")))?;
        serde_json::from_str(&text)
            .map_err(|e| QuantError::ArrangementMismatch(format!("parse: {e}")))
    }
}

impl fmt::Display for BitArrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BitArrangement (avg {:.3} bits over {} weights)",
            self.average_bits(),
            self.total_weights()
        )?;
        for u in &self.units {
            let h = {
                let mut h = BitHistogram::default();
                for b in &u.bits {
                    h.counts[b.bits() as usize] += 1;
                }
                h
            };
            write!(f, "  {:<12} {} filters:", u.name, u.filters())?;
            for (bits, &count) in h.counts.iter().enumerate() {
                if count > 0 {
                    write!(f, " {count}x{bits}b")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    fn sample() -> BitArrangement {
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform("conv2", 4, 9, bw(2)));
        arr.push(UnitArrangement::uniform("fc5", 2, 16, bw(4)));
        arr
    }

    #[test]
    fn average_is_weight_weighted() {
        let arr = sample();
        // 36 weights @2b + 32 weights @4b = 200 bits over 68 weights
        assert!((arr.average_bits() - 200.0 / 68.0).abs() < 1e-6);
        assert_eq!(arr.total_weights(), 68);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(BitArrangement::new().average_bits(), 0.0);
    }

    #[test]
    fn histogram_counts() {
        let mut arr = sample();
        arr.units_mut()[0].bits[0] = BitWidth::ZERO;
        let h = arr.histogram();
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[2], 3);
        assert_eq!(h.counts[4], 2);
        assert_eq!(h.total(), 6);
        let p = h.percentages();
        assert!((p[2] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn unit_lookup_and_histogram() {
        let arr = sample();
        assert!(arr.unit("conv2").is_some());
        assert!(arr.unit("nope").is_none());
        let h = arr.unit_histogram("fc5").unwrap();
        assert_eq!(h.counts[4], 2);
        assert!(arr.unit_histogram("nope").is_err());
    }

    #[test]
    fn pruned_fraction() {
        let mut u = UnitArrangement::uniform("u", 4, 3, bw(1));
        assert_eq!(u.pruned_fraction(), 0.0);
        u.bits[0] = BitWidth::ZERO;
        u.bits[1] = BitWidth::ZERO;
        assert!((u.pruned_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn set_uniform_overwrites() {
        let mut arr = sample();
        arr.set_uniform(bw(1));
        assert!(arr
            .units()
            .iter()
            .all(|u| u.bits.iter().all(|&b| b == bw(1))));
        assert!((arr.average_bits() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let arr = sample();
        let json = serde_json::to_string(&arr).unwrap();
        let back: BitArrangement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn display_mentions_units() {
        let s = sample().to_string();
        assert!(s.contains("conv2"));
        assert!(s.contains("4x2b"));
    }

    #[test]
    fn json_file_round_trip() {
        let arr = sample();
        let path = std::env::temp_dir().join("cbq_arrangement_test.json");
        arr.to_json_file(&path).unwrap();
        let back = BitArrangement::from_json_file(&path).unwrap();
        assert_eq!(back, arr);
        std::fs::remove_file(&path).ok();
        assert!(BitArrangement::from_json_file("/nonexistent/nope.json").is_err());
    }
}
