//! Packed low-bit integer execution: the same code-domain semantics as
//! [`IntegerLinear`]/[`IntegerNet`](crate::IntegerNet), but with 1–4-bit
//! weight rows stored at their natural density instead of in wide `i32`
//! containers.
//!
//! Storage per filter row, chosen by the filter's bit-width:
//!
//! - **0 bits (pruned)** — no storage; the row contributes bias only,
//!   exactly like the wide engine's all-zero code row.
//! - **1 bit** — a sign bitplane (bit set ⇔ code +1), executed by the
//!   XNOR/popcount kernel family
//!   ([`sign_plane_dot`](cbq_tensor::kernels::sign_plane_dot)) against
//!   per-sample activation bitplanes. 32x denser than `i32` codes.
//! - **2–4 bits** — level indices nibble-packed two per byte, executed by
//!   the i8/i16 MAC kernel
//!   ([`nibble_dot_i8`](cbq_tensor::kernels::nibble_dot_i8)). 8x denser.
//! - **5–8 bits** — wide `i32` codes verbatim; packing targets the
//!   low-bit regime the paper's arrangement search actually emits, and a
//!   high-precision filter keeps the plain scalar path.
//!
//! # Bit-identity argument
//!
//! The wide engine computes `Σ_i v_i·a_i` as an exact `i64` left-to-right
//! fold; every packed kernel computes the *same exact integer* (integer
//! addition is associative, so grouping by bitplane or by MAC block cannot
//! change the value), and the f32 rescale below is the verbatim expression
//! from `IntegerLinear::forward`. WrapNet accumulator wrapping is applied
//! as a single wrap of the exact sum, which equals the wide engine's
//! per-addition wrap — the modular-arithmetic identity pinned by
//! `prop_wrap_parity` in `crates/quant/tests/proptest_integer.rs`. Packed
//! logits are therefore byte-equal to wide logits, not merely close.
//!
//! # SIMD dispatch
//!
//! The kernels this module calls ([`sign_plane_dot`], [`nibble_dot_i8`],
//! [`gemm_packed`]) dispatch internally through
//! [`cbq_tensor::dispatch`] to the widest instruction set the host
//! supports (AVX-512, AVX2+FMA, NEON, or scalar). Because the integer
//! kernels compute exact associative sums, every ISA arm returns the same
//! bytes — the bit-identity argument above is ISA-independent, and the
//! differential tests in `crates/tensor/tests/proptest_packed.rs` pin it
//! per ISA. [`kernel_isa`] reports which arm this process resolved to so
//! serving and fleet stats can surface it.

use crate::integer::{codes_to_levels, levels_to_codes};
use crate::integer_net::Stage;
use crate::{
    BitArrangement, BitWidth, IntActivations, IntegerLinear, IntegerNet, QuantError, Result,
};
use cbq_nn::Sequential;
use cbq_resilience::{crc64, ByteReader, ByteWriter};
use cbq_tensor::kernels::{
    gemm_packed, nibble_dot_i8, pack_bitplanes, pack_nibbles, plane_words, scalar_code_dot,
    sign_plane_dot, unpack_bitplanes, unpack_nibbles,
};
use cbq_tensor::{Scratch, Tensor};

/// The instruction set the packed kernels dispatch to in this process
/// (`"avx512"`, `"avx2+fma"`, `"neon"`, or `"scalar"`), resolved once by
/// the tensor dispatch layer from host capabilities and `CBQ_FORCE_ISA`.
///
/// Surfaced here so registry, serving, and fleet stat paths can report
/// the execution ISA alongside packed-model checksums without reaching
/// into `cbq-tensor` internals.
pub fn kernel_isa() -> &'static str {
    cbq_tensor::dispatch::active_isa().name()
}

/// Packed storage for one filter row.
#[derive(Debug, Clone, PartialEq)]
enum PackedRow {
    /// 0-bit filter: codes are identically zero, contributes bias only.
    Pruned,
    /// 1-bit filter: ±1 codes as a sign plane (bit set ⇔ +1).
    Sign(Vec<u64>),
    /// 2–4-bit filter: level indices packed two per byte.
    Nibble {
        levels: Vec<u8>,
        /// `N − 1` for the row's `N = 2^bits` levels (3, 7, or 15).
        n_minus_1: u8,
    },
    /// 5–8-bit filter: wide codes, scalar MAC.
    Wide(Vec<i32>),
}

/// A linear layer in packed low-bit storage, bit-identical in output to
/// the [`IntegerLinear`] it was packed from.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedIntegerLinear {
    rows: Vec<PackedRow>,
    filter_scales: Vec<f32>,
    out_features: usize,
    in_features: usize,
    bias: Option<Vec<f32>>,
}

impl PackedIntegerLinear {
    /// Packs a compiled wide layer. `bits` must be the same per-filter
    /// widths the layer was quantized with — they select each row's
    /// storage class and are validated against the stored codes.
    ///
    /// # Errors
    ///
    /// [`QuantError::ArrangementMismatch`] on a bits/filter count
    /// mismatch; [`QuantError::CorruptCodes`] when a row's codes do not
    /// fit the declared width.
    pub fn from_integer(lin: &IntegerLinear, bits: &[BitWidth]) -> Result<Self> {
        let (out, inf) = (lin.out_features(), lin.in_features());
        if bits.len() != out {
            return Err(QuantError::ArrangementMismatch(format!(
                "{out} filters but {} bit entries",
                bits.len()
            )));
        }
        let codes = lin.codes();
        let mut rows = Vec::with_capacity(out);
        for (k, &b) in bits.iter().enumerate() {
            let row = &codes[k * inf..(k + 1) * inf];
            rows.push(match b.bits() {
                0 => {
                    if row.iter().any(|&v| v != 0) {
                        return Err(QuantError::CorruptCodes(format!(
                            "pruned filter {k} has nonzero codes"
                        )));
                    }
                    PackedRow::Pruned
                }
                1..=4 => {
                    let levels = codes_to_levels(row, b)?;
                    if b.bits() == 1 {
                        let mut plane = vec![0u64; plane_words(inf)];
                        pack_bitplanes(&levels, 1, &mut plane);
                        PackedRow::Sign(plane)
                    } else {
                        let mut packed = vec![0u8; inf.div_ceil(2)];
                        pack_nibbles(&levels, &mut packed);
                        PackedRow::Nibble {
                            levels: packed,
                            n_minus_1: b.levels() as u8 - 1,
                        }
                    }
                }
                _ => PackedRow::Wide(row.to_vec()),
            });
        }
        Ok(PackedIntegerLinear {
            rows,
            filter_scales: lin.filter_scales().to_vec(),
            out_features: out,
            in_features: inf,
            bias: lin.bias().map(<[f32]>::to_vec),
        })
    }

    /// Quantizes and packs in one step — [`IntegerLinear::quantize`]
    /// followed by [`PackedIntegerLinear::from_integer`].
    ///
    /// # Errors
    ///
    /// Same conditions as the two constituent steps.
    pub fn quantize(weight: &Tensor, bits: &[BitWidth], bias: Option<&Tensor>) -> Result<Self> {
        let lin = IntegerLinear::quantize(weight, bits, bias)?;
        Self::from_integer(&lin, bits)
    }

    /// Unpacks back to the wide representation — the round-trip law
    /// `from_integer(lin, bits).to_integer() == lin` is pinned in tests.
    pub fn to_integer(&self) -> IntegerLinear {
        let inf = self.in_features;
        let mut codes = vec![0i32; self.out_features * inf];
        for (k, row) in self.rows.iter().enumerate() {
            let dst = &mut codes[k * inf..(k + 1) * inf];
            match row {
                PackedRow::Pruned => {}
                PackedRow::Sign(plane) => {
                    let mut levels = vec![0i32; inf];
                    unpack_bitplanes(plane, 1, inf, &mut levels);
                    for (d, &l) in dst.iter_mut().zip(&levels) {
                        *d = 2 * l - 1;
                    }
                }
                PackedRow::Nibble { levels, n_minus_1 } => {
                    let mut lv = vec![0i32; inf];
                    unpack_nibbles(levels, inf, &mut lv);
                    let bits = BitWidth::new((*n_minus_1 as u16 + 1).trailing_zeros() as u8)
                        .expect("nibble rows store 2..=4-bit levels");
                    let row_codes = levels_to_codes(&lv, bits).expect("packed levels are in range");
                    dst.copy_from_slice(&row_codes);
                }
                PackedRow::Wide(w) => dst.copy_from_slice(w),
            }
        }
        IntegerLinear::from_parts(
            codes,
            self.filter_scales.clone(),
            self.out_features,
            self.in_features,
            self.bias.clone(),
        )
    }

    /// Packed forward pass, bit-identical to
    /// [`IntegerLinear::forward_with_accumulator`] on the unpacked layer.
    /// `x_bits` is the activation bit-width `x` was quantized at (it fixes
    /// the bitplane count for the popcount path).
    ///
    /// # Errors
    ///
    /// Same conditions as the wide engine: feature mismatch or
    /// `acc_bits == 0`.
    pub fn forward(
        &self,
        x: &IntActivations,
        x_bits: BitWidth,
        acc_bits: Option<u8>,
    ) -> Result<Tensor> {
        let mut scratch = Scratch::new();
        self.forward_with_scratch(x, x_bits, acc_bits, &mut scratch)
    }

    /// Scratch-arena packed forward: activation bitplanes and the output
    /// buffer come from `scratch`, so warm serving loops allocate nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PackedIntegerLinear::forward`].
    pub fn forward_with_scratch(
        &self,
        x: &IntActivations,
        x_bits: BitWidth,
        acc_bits: Option<u8>,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if x.features() != self.in_features {
            return Err(QuantError::ArrangementMismatch(format!(
                "activation features {} vs layer input {}",
                x.features(),
                self.in_features
            )));
        }
        let wrap = match acc_bits {
            None => None,
            Some(0) => return Err(QuantError::BitWidthOutOfRange { bits: 0 }),
            Some(n) => Some(1i64 << (n - 1)),
        };
        let abits = u32::from(x_bits.bits());
        let words = plane_words(self.in_features);
        let need_planes = self.rows.iter().any(|r| matches!(r, PackedRow::Sign(_)));
        let mut planes = if need_planes {
            scratch.take_u64(abits as usize * words)
        } else {
            Vec::new()
        };
        let mut out = scratch.take_f32(x.batch() * self.out_features);
        for b in 0..x.batch() {
            let arow = &x.codes()[b * self.in_features..(b + 1) * self.in_features];
            let mut act_code_sum = 0i64;
            if need_planes {
                pack_bitplanes(arow, abits, &mut planes);
                act_code_sum = arow.iter().map(|&a| a as i64).sum();
            }
            for (k, row) in self.rows.iter().enumerate() {
                let acc: i64 = match row {
                    PackedRow::Pruned => 0,
                    PackedRow::Sign(sign) => sign_plane_dot(sign, &planes, abits, act_code_sum),
                    PackedRow::Nibble { levels, n_minus_1 } => {
                        nibble_dot_i8(levels, i32::from(*n_minus_1), arow)
                    }
                    PackedRow::Wide(w) => scalar_code_dot(w, arow),
                };
                // Wrapping the exact sum once equals the wide engine's
                // per-addition wrap (prop_wrap_parity).
                let acc = match wrap {
                    None => acc,
                    Some(l) => (acc + l).rem_euclid(2 * l) - l,
                };
                // Verbatim rescale from IntegerLinear::forward_into — the
                // f32 expression order is part of the bit-identity contract.
                let mut y = acc as f32 * self.filter_scales[k] * x.scale();
                if let Some(bias) = &self.bias {
                    y += bias[k];
                }
                out[b * self.out_features + k] = y;
            }
        }
        if need_planes {
            scratch.recycle_u64(planes);
        }
        Ok(Tensor::from_vec(out, &[x.batch(), self.out_features])?)
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Bytes of packed weight-code storage. Scales and bias are excluded:
    /// the wide engine carries the identical f32 sidecars, so the ratio
    /// against [`PackedIntegerLinear::wide_code_bytes`] isolates what
    /// packing actually buys.
    pub fn packed_code_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| match r {
                PackedRow::Pruned => 0,
                PackedRow::Sign(plane) => plane.len() * 8,
                PackedRow::Nibble { levels, .. } => levels.len(),
                PackedRow::Wide(w) => w.len() * 4,
            })
            .sum()
    }

    /// Bytes the wide `i32`-code engine stores for the same layer.
    pub fn wide_code_bytes(&self) -> usize {
        self.out_features * self.in_features * 4
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.out_features);
        w.put_usize(self.in_features);
        w.put_f32_slice(&self.filter_scales);
        w.put_bool(self.bias.is_some());
        if let Some(b) = &self.bias {
            w.put_f32_slice(b);
        }
        for row in &self.rows {
            match row {
                PackedRow::Pruned => w.put_u8(0),
                PackedRow::Sign(plane) => {
                    w.put_u8(1);
                    for &word in plane {
                        w.put_u64(word);
                    }
                }
                PackedRow::Nibble { levels, n_minus_1 } => {
                    w.put_u8(2);
                    w.put_u8(*n_minus_1);
                    w.put_bytes(levels);
                }
                PackedRow::Wide(codes) => {
                    w.put_u8(3);
                    for &c in codes {
                        w.put_u32(c as u32);
                    }
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let corrupt = |e: cbq_resilience::ResilienceError| QuantError::CorruptCodes(e.to_string());
        let out_features = r.get_usize().map_err(corrupt)?;
        let in_features = r.get_usize().map_err(corrupt)?;
        let filter_scales = r.get_f32_vec().map_err(corrupt)?;
        if filter_scales.len() != out_features {
            return Err(QuantError::CorruptCodes(format!(
                "{out_features} filters but {} scales",
                filter_scales.len()
            )));
        }
        let bias = if r.get_bool().map_err(corrupt)? {
            let b = r.get_f32_vec().map_err(corrupt)?;
            if b.len() != out_features {
                return Err(QuantError::CorruptCodes("bias length mismatch".into()));
            }
            Some(b)
        } else {
            None
        };
        let mut rows = Vec::with_capacity(out_features);
        for k in 0..out_features {
            rows.push(match r.get_u8().map_err(corrupt)? {
                0 => PackedRow::Pruned,
                1 => {
                    let mut plane = vec![0u64; plane_words(in_features)];
                    for word in &mut plane {
                        *word = r.get_u64().map_err(corrupt)?;
                    }
                    PackedRow::Sign(plane)
                }
                2 => {
                    let n_minus_1 = r.get_u8().map_err(corrupt)?;
                    if ![3, 7, 15].contains(&n_minus_1) {
                        return Err(QuantError::CorruptCodes(format!(
                            "row {k}: nibble level count {n_minus_1} is not 2..=4-bit"
                        )));
                    }
                    let levels = r.get_bytes().map_err(corrupt)?;
                    if levels.len() != in_features.div_ceil(2) {
                        return Err(QuantError::CorruptCodes(format!(
                            "row {k}: nibble payload length mismatch"
                        )));
                    }
                    PackedRow::Nibble { levels, n_minus_1 }
                }
                3 => {
                    let mut codes = vec![0i32; in_features];
                    for c in &mut codes {
                        *c = r.get_u32().map_err(corrupt)? as i32;
                    }
                    PackedRow::Wide(codes)
                }
                tag => {
                    return Err(QuantError::CorruptCodes(format!(
                        "row {k}: unknown storage tag {tag}"
                    )))
                }
            });
        }
        Ok(PackedIntegerLinear {
            rows,
            filter_scales,
            out_features,
            in_features,
            bias,
        })
    }
}

/// One lowered execution stage of a [`PackedIntegerNet`].
#[derive(Debug, Clone)]
enum PackedStage {
    Linear {
        name: String,
        weight: Tensor,
        bias: Option<Tensor>,
    },
    Relu,
    QuantValues {
        clip: f32,
        scale: f32,
    },
    IntLinear {
        name: String,
        lin: PackedIntegerLinear,
        clip: f32,
        bits: BitWidth,
    },
}

/// A whole network lowered to packed integer execution, bit-identical in
/// output to the [`IntegerNet`] it was packed from: the f32 stages run
/// the very same `gemm_packed` calls, and the integer stages compute the
/// same exact sums through the packed kernels.
#[derive(Debug, Clone)]
pub struct PackedIntegerNet {
    stages: Vec<PackedStage>,
    in_features: usize,
    out_features: usize,
    integer_layers: usize,
}

impl PackedIntegerNet {
    /// Lowers a trained, arrangement-installed network straight to packed
    /// stages — [`IntegerNet::compile`] followed by
    /// [`PackedIntegerNet::from_integer`].
    ///
    /// # Errors
    ///
    /// Same conditions as the two constituent steps.
    pub fn compile(net: &mut Sequential, arrangement: &BitArrangement) -> Result<PackedIntegerNet> {
        let wide = IntegerNet::compile(net, arrangement)?;
        Self::from_integer(&wide, arrangement)
    }

    /// Re-lowers a compiled wide net into packed storage. `arrangement`
    /// supplies the per-filter widths that pick each row's storage class;
    /// it must be the same arrangement the wide net was compiled with.
    ///
    /// # Errors
    ///
    /// [`QuantError::ArrangementMismatch`] when an integer layer has no
    /// unit in `arrangement`; [`QuantError::CorruptCodes`] when the codes
    /// do not fit the declared widths.
    pub fn from_integer(wide: &IntegerNet, arrangement: &BitArrangement) -> Result<Self> {
        let mut stages = Vec::new();
        let mut integer_layers = 0usize;
        for stage in wide.stages() {
            stages.push(match stage {
                Stage::Relu => PackedStage::Relu,
                Stage::QuantValues { clip, scale } => PackedStage::QuantValues {
                    clip: *clip,
                    scale: *scale,
                },
                Stage::Linear { name, weight, bias } => PackedStage::Linear {
                    name: name.clone(),
                    weight: weight.clone(),
                    bias: bias.clone(),
                },
                Stage::IntLinear {
                    name,
                    lin,
                    clip,
                    bits,
                } => {
                    let unit = arrangement.unit(name).ok_or_else(|| {
                        QuantError::ArrangementMismatch(format!(
                            "arrangement has no unit for integer layer {name}"
                        ))
                    })?;
                    integer_layers += 1;
                    PackedStage::IntLinear {
                        name: name.clone(),
                        lin: PackedIntegerLinear::from_integer(lin, &unit.bits)?,
                        clip: *clip,
                        bits: *bits,
                    }
                }
            });
        }
        Ok(PackedIntegerNet {
            stages,
            in_features: wide.in_features(),
            out_features: wide.out_features(),
            integer_layers,
        })
    }

    /// Input width (features per sample after flattening).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width (number of classes).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// How many layers execute in the packed integer-code domain.
    pub fn integer_layers(&self) -> usize {
        self.integer_layers
    }

    /// Total packed weight-code bytes across the integer layers.
    pub fn packed_code_bytes(&self) -> usize {
        self.int_layers().map(|(_, l)| l.packed_code_bytes()).sum()
    }

    /// Total wide (`i32`) weight-code bytes the unpacked engine stores
    /// for the same integer layers.
    pub fn wide_code_bytes(&self) -> usize {
        self.int_layers().map(|(_, l)| l.wide_code_bytes()).sum()
    }

    fn int_layers(&self) -> impl Iterator<Item = (&str, &PackedIntegerLinear)> {
        self.stages.iter().filter_map(|s| match s {
            PackedStage::IntLinear { name, lin, .. } => Some((name.as_str(), lin)),
            _ => None,
        })
    }

    /// Names of the stages in execution order (diagnostics / tests).
    /// Packed integer layers are tagged `pkd:` to distinguish them from
    /// the wide engine's `int:` stages.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .map(|s| match s {
                PackedStage::Relu => "relu".to_string(),
                PackedStage::QuantValues { .. } => "act-quant".to_string(),
                PackedStage::Linear { name, .. } => format!("fp:{name}"),
                PackedStage::IntLinear { name, .. } => format!("pkd:{name}"),
            })
            .collect()
    }

    /// Runs a `[m, in_features]` batch, drawing every temporary from
    /// `scratch` — the packed twin of [`IntegerNet::forward_scratch`],
    /// byte-equal in output to it on every input.
    ///
    /// # Errors
    ///
    /// Shape mismatches or any integer-engine error.
    pub fn forward_scratch(&self, x: Tensor, scratch: &mut Scratch) -> Result<Tensor> {
        x.shape_obj().ensure_rank(2)?;
        if x.shape()[1] != self.in_features {
            return Err(QuantError::ArrangementMismatch(format!(
                "input features {} vs network input {}",
                x.shape()[1],
                self.in_features
            )));
        }
        let mut cur = x;
        for stage in &self.stages {
            match stage {
                PackedStage::Relu => cur.map_inplace(|v| v.max(0.0)),
                PackedStage::QuantValues { clip, scale } => {
                    cur.map_inplace(|v| (v.clamp(0.0, *clip) / scale).round() * scale);
                }
                PackedStage::Linear { weight, bias, .. } => {
                    let m = cur.shape()[0];
                    let k = cur.shape()[1];
                    let n = weight.shape()[0];
                    let mut out = scratch.take_f32(m * n);
                    gemm_packed(
                        m,
                        n,
                        k,
                        cur.as_slice(),
                        k,
                        1,
                        weight.as_slice(),
                        1,
                        k,
                        &mut out,
                        scratch,
                    );
                    if let Some(b) = bias {
                        let bs = b.as_slice();
                        for r in 0..m {
                            let row = &mut out[r * n..(r + 1) * n];
                            for (o, &bv) in row.iter_mut().zip(bs) {
                                *o += bv;
                            }
                        }
                    }
                    scratch.recycle_f32(cur.into_vec());
                    cur = Tensor::from_vec(out, &[m, n])?;
                }
                PackedStage::IntLinear {
                    lin, clip, bits, ..
                } => {
                    let acts = IntActivations::quantize_with_scratch(&cur, *clip, *bits, scratch)?;
                    let y = lin.forward_with_scratch(&acts, *bits, None, scratch)?;
                    acts.recycle(scratch);
                    scratch.recycle_f32(cur.into_vec());
                    cur = y;
                }
            }
        }
        Ok(cur)
    }

    /// Convenience forward with a throwaway arena.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PackedIntegerNet::forward_scratch`].
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut scratch = Scratch::new();
        self.forward_scratch(x.clone(), &mut scratch)
    }
}

/// The serialized packed-code section of a model artifact: every packed
/// integer layer by name, CRC-64-guarded so storage corruption is caught
/// at decode time instead of surfacing as silently wrong logits.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedModelCodes {
    layers: Vec<(String, PackedIntegerLinear)>,
}

impl PackedModelCodes {
    /// Captures the packed integer layers of a compiled net.
    pub fn from_net(net: &PackedIntegerNet) -> Self {
        PackedModelCodes {
            layers: net
                .int_layers()
                .map(|(name, lin)| (name.to_string(), lin.clone()))
                .collect(),
        }
    }

    /// Number of packed layers in the section.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total packed weight-code bytes across the section.
    pub fn packed_code_bytes(&self) -> usize {
        self.layers.iter().map(|(_, l)| l.packed_code_bytes()).sum()
    }

    /// Total wide weight-code bytes the same layers cost unpacked.
    pub fn wide_code_bytes(&self) -> usize {
        self.layers.iter().map(|(_, l)| l.wide_code_bytes()).sum()
    }

    /// Checks that a freshly compiled net reproduces exactly the codes in
    /// this section — the load-time differential gate: quantization is
    /// deterministic, so any disagreement means the artifact's packed
    /// section and state dict belong to different models.
    ///
    /// # Errors
    ///
    /// [`QuantError::CorruptCodes`] naming the first diverging layer.
    pub fn verify_against(&self, net: &PackedIntegerNet) -> Result<()> {
        let recompiled = PackedModelCodes::from_net(net);
        if self.layers.len() != recompiled.layers.len() {
            return Err(QuantError::CorruptCodes(format!(
                "packed section has {} layers, recompiled net has {}",
                self.layers.len(),
                recompiled.layers.len()
            )));
        }
        for ((name_a, lin_a), (name_b, lin_b)) in self.layers.iter().zip(&recompiled.layers) {
            if name_a != name_b || lin_a != lin_b {
                return Err(QuantError::CorruptCodes(format!(
                    "packed section layer {name_a} disagrees with recompiled layer {name_b}"
                )));
            }
        }
        Ok(())
    }

    /// Encodes the section: a length-prefixed payload followed by its
    /// CRC-64/XZ. The bytes are a pure function of the codes, so equal
    /// models produce byte-identical sections.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_usize(self.layers.len());
        for (name, lin) in &self.layers {
            payload.put_str(name);
            lin.encode(&mut payload);
        }
        let payload = payload.into_bytes();
        let mut outer = ByteWriter::new();
        outer.put_bytes(&payload);
        outer.put_u64(crc64(&payload));
        outer.into_bytes()
    }

    /// Decodes and validates a section.
    ///
    /// # Errors
    ///
    /// [`QuantError::CorruptCodes`] on truncation, checksum mismatch,
    /// trailing garbage, or structurally invalid rows.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let corrupt = |e: cbq_resilience::ResilienceError| QuantError::CorruptCodes(e.to_string());
        let mut outer = ByteReader::new(bytes);
        let payload = outer.get_bytes().map_err(corrupt)?;
        let stored_crc = outer.get_u64().map_err(corrupt)?;
        if !outer.is_exhausted() {
            return Err(QuantError::CorruptCodes(format!(
                "{} trailing bytes after packed section",
                outer.remaining()
            )));
        }
        let actual = crc64(&payload);
        if actual != stored_crc {
            return Err(QuantError::CorruptCodes(format!(
                "checksum mismatch: stored {stored_crc:#018x}, computed {actual:#018x}"
            )));
        }
        let mut r = ByteReader::new(&payload);
        let count = r.get_usize().map_err(corrupt)?;
        let mut layers = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let name = r.get_string().map_err(corrupt)?;
            let lin = PackedIntegerLinear::decode(&mut r)?;
            layers.push((name, lin));
        }
        if !r.is_exhausted() {
            return Err(QuantError::CorruptCodes(format!(
                "{} trailing bytes inside packed payload",
                r.remaining()
            )));
        }
        Ok(PackedModelCodes { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install_act_quant, set_act_bits, set_act_calibration, UnitArrangement};
    use cbq_nn::{models, Layer, Phase};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    /// A layer with every storage class: pruned, 1-bit, 2/3/4-bit
    /// nibbles, and a wide 8-bit row.
    fn mixed_layer(seed: u64, inf: usize) -> (IntegerLinear, PackedIntegerLinear, Vec<BitWidth>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = vec![BitWidth::ZERO, bw(1), bw(2), bw(3), bw(4), bw(8)];
        let w = Tensor::randn(&[bits.len(), inf], 0.5, &mut rng);
        let bias = Tensor::randn(&[bits.len()], 0.2, &mut rng);
        let lin = IntegerLinear::quantize(&w, &bits, Some(&bias)).unwrap();
        let packed = PackedIntegerLinear::from_integer(&lin, &bits).unwrap();
        (lin, packed, bits)
    }

    #[test]
    fn pack_unpack_round_trips_exactly() {
        for &inf in &[1usize, 63, 64, 65, 130] {
            let (lin, packed, _) = mixed_layer(inf as u64, inf);
            assert_eq!(packed.to_integer(), lin, "inf={inf}");
        }
    }

    #[test]
    fn packed_forward_is_bit_identical_to_wide() {
        let mut rng = StdRng::seed_from_u64(99);
        for &inf in &[7usize, 64, 100] {
            let (lin, packed, _) = mixed_layer(inf as u64 + 7, inf);
            let x = Tensor::rand_uniform(&[3, inf], 0.0, 2.5, &mut rng);
            for abits in [1u8, 3, 8] {
                let ia = IntActivations::quantize(&x, 2.0, bw(abits)).unwrap();
                let wide = lin.forward(&ia).unwrap();
                let fast = packed.forward(&ia, bw(abits), None).unwrap();
                for (a, b) in wide.as_slice().iter().zip(fast.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "inf={inf} abits={abits}");
                }
            }
        }
    }

    #[test]
    fn packed_wrap_semantics_match_per_addition_wrap() {
        let mut rng = StdRng::seed_from_u64(5);
        let (lin, packed, _) = mixed_layer(11, 80);
        let x = Tensor::rand_uniform(&[4, 80], 0.0, 3.0, &mut rng);
        let ia = IntActivations::quantize(&x, 3.0, bw(7)).unwrap();
        for acc_bits in [6u8, 8, 12, 48] {
            let wide = lin.forward_with_accumulator(&ia, Some(acc_bits)).unwrap();
            let fast = packed.forward(&ia, bw(7), Some(acc_bits)).unwrap();
            for (a, b) in wide.as_slice().iter().zip(fast.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "acc_bits={acc_bits}");
            }
        }
        assert!(packed.forward(&ia, bw(7), Some(0)).is_err());
    }

    #[test]
    fn packed_bytes_shrink_low_bit_layers() {
        let (_, packed, _) = mixed_layer(3, 128);
        // 6 rows of 128: wide = 6*128*4 bytes. Packed: 0 + 16 + 64*3 + 512.
        assert_eq!(packed.wide_code_bytes(), 6 * 128 * 4);
        assert_eq!(packed.packed_code_bytes(), 16 + 3 * 64 + 512);
        let uniform2 =
            PackedIntegerLinear::quantize(&Tensor::ones(&[4, 128]), &[bw(2); 4], None).unwrap();
        assert!(
            uniform2.wide_code_bytes() >= 8 * uniform2.packed_code_bytes(),
            "2-bit nibble packing must shrink at least 8x"
        );
    }

    #[test]
    fn scratch_forward_reuses_pools() {
        let (_, packed, _) = mixed_layer(21, 96);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(&[2, 96], 0.0, 2.0, &mut rng);
        let mut scratch = Scratch::new();
        let ia = IntActivations::quantize_with_scratch(&x, 2.0, bw(4), &mut scratch).unwrap();
        let y = packed
            .forward_with_scratch(&ia, bw(4), None, &mut scratch)
            .unwrap();
        scratch.recycle_f32(y.into_vec());
        ia.recycle(&mut scratch);
        let before = scratch.fresh_allocs();
        for _ in 0..5 {
            let ia = IntActivations::quantize_with_scratch(&x, 2.0, bw(4), &mut scratch).unwrap();
            let y = packed
                .forward_with_scratch(&ia, bw(4), None, &mut scratch)
                .unwrap();
            scratch.recycle_f32(y.into_vec());
            ia.recycle(&mut scratch);
        }
        assert_eq!(scratch.fresh_allocs(), before, "warm loop missed the pool");
    }

    #[test]
    fn mismatched_bits_are_rejected_as_corrupt() {
        let (lin, _, mut bits) = mixed_layer(31, 16);
        bits[5] = bw(1); // the 8-bit row's codes cannot be ±1
        assert!(matches!(
            PackedIntegerLinear::from_integer(&lin, &bits),
            Err(QuantError::CorruptCodes(_))
        ));
        bits.pop();
        assert!(matches!(
            PackedIntegerLinear::from_integer(&lin, &bits),
            Err(QuantError::ArrangementMismatch(_))
        ));
    }

    fn quantized_fixture(bits: u8) -> (Sequential, BitArrangement) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = models::mlp(&[6, 10, 8, 3], &mut rng).unwrap();
        install_act_quant(&mut net);
        set_act_calibration(&mut net, true);
        for _ in 0..4 {
            let x = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng);
            net.forward(&x, Phase::Eval).unwrap();
        }
        set_act_calibration(&mut net, false);
        set_act_bits(&mut net, Some(bw(bits)));
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform("fc2", 8, 10, bw(bits)));
        (net, arr)
    }

    #[test]
    fn packed_net_is_byte_equal_to_wide_net() {
        for nbits in [1u8, 2, 4] {
            let (mut net, arr) = quantized_fixture(nbits);
            let wide = IntegerNet::compile(&mut net, &arr).unwrap();
            let packed = PackedIntegerNet::from_integer(&wide, &arr).unwrap();
            assert_eq!(packed.integer_layers(), wide.integer_layers());
            assert_eq!(
                packed.stage_names(),
                vec!["fp:fc1", "relu", "pkd:fc2", "relu", "act-quant", "fp:fc3"]
            );
            let mut rng = StdRng::seed_from_u64(nbits as u64);
            let x = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng);
            let a = wide.forward(&x).unwrap();
            let b = packed.forward(&x).unwrap();
            for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits(), "nbits={nbits}");
            }
        }
    }

    #[test]
    fn model_codes_round_trip_and_detect_corruption() {
        let (mut net, arr) = quantized_fixture(2);
        let packed = PackedIntegerNet::compile(&mut net, &arr).unwrap();
        let codes = PackedModelCodes::from_net(&packed);
        assert_eq!(codes.layer_count(), 1);
        codes.verify_against(&packed).unwrap();
        let bytes = codes.to_bytes();
        let back = PackedModelCodes::from_bytes(&bytes).unwrap();
        assert_eq!(back, codes);
        assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
        // Flip one payload byte: the CRC must catch it.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            PackedModelCodes::from_bytes(&bad),
            Err(QuantError::CorruptCodes(_))
        ));
        // Truncation is also typed corruption.
        assert!(matches!(
            PackedModelCodes::from_bytes(&bytes[..bytes.len() - 3]),
            Err(QuantError::CorruptCodes(_))
        ));
    }
}
