use crate::{BitWidth, UniformQuantizer};
use cbq_nn::{ActivationQuantizer, Layer};
use cbq_tensor::Tensor;

/// Activation fake-quantizer, installed on every ReLU of a network.
///
/// Matches §II-A of the paper: activations quantize over `[0, b]` where
/// `b` is "the maximum absolute value of activations in the layer during
/// the inference" — recorded by running the network in *calibration* mode
/// over a batch before enabling quantization. The straight-through mask
/// passes gradients where the input lay inside `[0, b]` and zeroes them
/// above the clip bound.
///
/// With `bits = None` (or during calibration) the quantizer is an
/// identity.
#[derive(Debug, Clone)]
pub struct ActQuant {
    bits: Option<BitWidth>,
    calibrating: bool,
    observed_max: f32,
}

impl ActQuant {
    /// Creates a disabled (identity) activation quantizer.
    pub fn new() -> Self {
        ActQuant {
            bits: None,
            calibrating: false,
            observed_max: 0.0,
        }
    }

    /// Creates a quantizer with a preset clip bound and width.
    pub fn with_clip(clip: f32, bits: BitWidth) -> Self {
        ActQuant {
            bits: Some(bits),
            calibrating: false,
            observed_max: clip,
        }
    }

    /// The calibrated clip bound `b`.
    pub fn observed_max(&self) -> f32 {
        self.observed_max
    }
}

impl Default for ActQuant {
    fn default() -> Self {
        ActQuant::new()
    }
}

impl ActivationQuantizer for ActQuant {
    fn clone_box(&self) -> Box<dyn ActivationQuantizer> {
        Box::new(self.clone())
    }

    fn apply(&mut self, x: &Tensor) -> (Tensor, Tensor) {
        if self.calibrating {
            let batch_max = x.as_slice().iter().fold(0.0f32, |m, &v| m.max(v));
            self.observed_max = self.observed_max.max(batch_max);
            return (x.clone(), Tensor::ones(x.shape()));
        }
        match self.bits {
            None => (x.clone(), Tensor::ones(x.shape())),
            Some(bits) => {
                let q = UniformQuantizer::activation(self.observed_max, bits);
                let hi = q.hi();
                let mask = x.map(|v| if (0.0..=hi).contains(&v) { 1.0 } else { 0.0 });
                (q.quantize_tensor(x), mask)
            }
        }
    }

    fn apply_infer(&mut self, data: &mut [f32]) {
        if self.calibrating {
            let batch_max = data.iter().fold(0.0f32, |m, &v| m.max(v));
            self.observed_max = self.observed_max.max(batch_max);
            return;
        }
        let Some(bits) = self.bits else { return };
        // Same quantizer construction as `apply`, run in place — identical
        // values, no output/mask tensors.
        let q = UniformQuantizer::activation(self.observed_max, bits);
        q.quantize_slice(data);
    }

    fn set_bits(&mut self, bits: Option<u8>) {
        self.bits = bits.and_then(|b| BitWidth::new(b).ok());
    }

    fn bits(&self) -> Option<u8> {
        self.bits.map(BitWidth::bits)
    }

    fn set_calibrating(&mut self, on: bool) {
        if on {
            self.observed_max = 0.0;
        }
        self.calibrating = on;
    }

    fn clip(&self) -> f32 {
        self.observed_max
    }

    fn set_clip(&mut self, clip: f32) {
        self.observed_max = clip;
    }
}

/// Installs a fresh [`ActQuant`] (disabled) on every ReLU of the network.
/// Returns the number of quantizers installed.
pub fn install_act_quant(net: &mut dyn Layer) -> usize {
    let mut count = 0;
    net.visit_layers_mut(&mut |l| {
        if l.kind() == cbq_nn::LayerKind::Relu {
            l.set_activation_quantizer(Some(Box::new(ActQuant::new())));
            count += 1;
        }
    });
    count
}

/// Sets every installed activation quantizer to `bits` (`None` disables).
pub fn set_act_bits(net: &mut dyn Layer, bits: Option<BitWidth>) {
    net.visit_layers_mut(&mut |l| {
        if let Some(q) = l.activation_quantizer_mut() {
            q.set_bits(bits.map(BitWidth::bits));
        }
    });
}

/// Toggles calibration mode on every installed activation quantizer.
/// Entering calibration resets the recorded maxima.
pub fn set_act_calibration(net: &mut dyn Layer, on: bool) {
    net.visit_layers_mut(&mut |l| {
        if let Some(q) = l.activation_quantizer_mut() {
            q.set_calibrating(on);
        }
    });
}

/// Captures every installed quantizer's calibrated clip bound, keyed by
/// layer name — the activation-calibration state a checkpoint must hold
/// (clip bounds live in the quantizers, not in the model's state dict).
pub fn act_clip_bounds(net: &mut dyn Layer) -> Vec<(String, f32)> {
    let mut bounds = Vec::new();
    net.visit_layers_mut(&mut |l| {
        let name = l.name().to_string();
        if let Some(q) = l.activation_quantizer_mut() {
            bounds.push((name, q.clip()));
        }
    });
    bounds
}

/// Restores clip bounds captured by [`act_clip_bounds`] onto the
/// network's installed quantizers, matching by layer name. Returns how
/// many bounds were applied (names without a quantizer are skipped).
pub fn restore_act_clip_bounds(net: &mut dyn Layer, bounds: &[(String, f32)]) -> usize {
    let mut restored = 0;
    net.visit_layers_mut(&mut |l| {
        let Some((_, clip)) = bounds.iter().find(|(name, _)| name == l.name()) else {
            return;
        };
        if let Some(q) = l.activation_quantizer_mut() {
            q.set_clip(*clip);
            restored += 1;
        }
    });
    restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_nn::layers::{Linear, Relu};
    use cbq_nn::{Phase, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    #[test]
    fn disabled_is_identity() {
        let mut aq = ActQuant::new();
        let x = Tensor::from_vec(vec![0.3, 1.7], &[2]).unwrap();
        let (y, m) = aq.apply(&x);
        assert_eq!(y, x);
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn calibration_tracks_max() {
        let mut aq = ActQuant::new();
        aq.set_calibrating(true);
        aq.apply(&Tensor::from_vec(vec![0.5, 2.0], &[2]).unwrap());
        aq.apply(&Tensor::from_vec(vec![3.5, 1.0], &[2]).unwrap());
        aq.set_calibrating(false);
        assert_eq!(aq.observed_max(), 3.5);
        assert_eq!(aq.clip(), 3.5);
    }

    #[test]
    fn quantizes_to_levels_after_calibration() {
        let mut aq = ActQuant::with_clip(4.0, bw(2));
        // levels over [0,4]: 0, 4/3, 8/3, 4
        let x = Tensor::from_vec(vec![0.1, 1.5, 3.0, 9.0], &[4]).unwrap();
        let (y, mask) = aq.apply(&x);
        assert!((y.as_slice()[0] - 0.0).abs() < 1e-6);
        assert!((y.as_slice()[1] - 4.0 / 3.0).abs() < 1e-5);
        assert!((y.as_slice()[2] - 8.0 / 3.0).abs() < 1e-5);
        assert!((y.as_slice()[3] - 4.0).abs() < 1e-6);
        assert_eq!(mask.as_slice(), &[1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn apply_infer_matches_apply_values() {
        let mut aq = ActQuant::with_clip(4.0, bw(2));
        let x = Tensor::from_vec(vec![0.1, 1.5, 3.0, 9.0, -0.2], &[5]).unwrap();
        let (y, _mask) = aq.apply(&x);
        let mut data: Vec<f32> = x.as_slice().to_vec();
        aq.apply_infer(&mut data);
        for (a, b) in y.as_slice().iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // calibration records maxima through the in-place path too
        let mut cal = ActQuant::new();
        cal.set_calibrating(true);
        let mut seen = vec![0.5f32, 2.5, 1.0];
        cal.apply_infer(&mut seen);
        assert_eq!(
            seen,
            vec![0.5, 2.5, 1.0],
            "calibration must not rewrite data"
        );
        cal.set_calibrating(false);
        assert_eq!(cal.observed_max(), 2.5);
    }

    #[test]
    fn set_bits_rejects_out_of_range_silently() {
        let mut aq = ActQuant::new();
        aq.set_bits(Some(99));
        assert_eq!(ActivationQuantizer::bits(&aq), None);
        aq.set_bits(Some(3));
        assert_eq!(ActivationQuantizer::bits(&aq), Some(3));
    }

    #[test]
    fn clip_bounds_capture_and_restore() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc1", 2, 4, true, &mut rng).unwrap());
        net.push(Relu::new("r1"));
        net.push(Linear::new("fc2", 4, 2, true, &mut rng).unwrap());
        net.push(Relu::new("r2"));
        install_act_quant(&mut net);
        set_act_calibration(&mut net, true);
        let x = Tensor::randn(&[8, 2], 1.0, &mut rng);
        net.forward(&x, Phase::Eval).unwrap();
        set_act_calibration(&mut net, false);
        let bounds = act_clip_bounds(&mut net);
        assert_eq!(bounds.len(), 2);
        assert!(bounds.iter().any(|(n, _)| n == "r1"));

        // a freshly installed network restores to the calibrated state
        let mut net2 = Sequential::new("n");
        let mut rng2 = StdRng::seed_from_u64(2);
        net2.push(Linear::new("fc1", 2, 4, true, &mut rng2).unwrap());
        net2.push(Relu::new("r1"));
        net2.push(Linear::new("fc2", 4, 2, true, &mut rng2).unwrap());
        net2.push(Relu::new("r2"));
        install_act_quant(&mut net2);
        assert_eq!(restore_act_clip_bounds(&mut net2, &bounds), 2);
        assert_eq!(act_clip_bounds(&mut net2), bounds);
    }

    #[test]
    fn network_install_and_control() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc1", 2, 4, true, &mut rng).unwrap());
        net.push(Relu::new("r1"));
        net.push(Linear::new("fc2", 4, 2, true, &mut rng).unwrap());
        net.push(Relu::new("r2"));
        let installed = install_act_quant(&mut net);
        assert_eq!(installed, 2);
        // calibrate
        set_act_calibration(&mut net, true);
        let x = Tensor::randn(&[8, 2], 1.0, &mut rng);
        net.forward(&x, Phase::Eval).unwrap();
        set_act_calibration(&mut net, false);
        // enable 2-bit activations: outputs should now take few levels
        set_act_bits(&mut net, Some(bw(2)));
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        // disable restores identity behaviour
        set_act_bits(&mut net, None);
        let y2 = net.forward(&x, Phase::Eval).unwrap();
        assert_ne!(y, y2);
    }
}
