use crate::{BitWidth, QuantError, Result};
use cbq_tensor::Tensor;

/// The paper's uniform quantizer (§II-A, Eqs. 1–3).
///
/// A value `x` is clipped to `[lo, hi]` (Eq. 1), normalized and rounded to
/// `N = 2^bits` levels (Eq. 2), then rescaled back (Eq. 3):
///
/// ```text
/// x_c = clamp(x, lo, hi)
/// x_r = round((N-1) * (x_c - lo) / (hi - lo)) / (N-1)
/// x_q = (hi - lo) * x_r + lo
/// ```
///
/// Weights use a symmetric range `[-b, b]` with `b = max|w|` of the layer;
/// post-ReLU activations use `[0, b]` with `b` the maximum activation seen
/// during calibration. A 0-bit quantizer maps everything to zero
/// (pruning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformQuantizer {
    lo: f32,
    hi: f32,
    bits: BitWidth,
}

impl UniformQuantizer {
    /// Creates a quantizer over an explicit range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidRange`] for a non-finite or empty
    /// range.
    pub fn new(lo: f32, hi: f32, bits: BitWidth) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(QuantError::InvalidRange { lo, hi });
        }
        Ok(UniformQuantizer { lo, hi, bits })
    }

    /// Symmetric weight quantizer over `[-bound, bound]`.
    ///
    /// A non-positive or non-finite `bound` (e.g. an all-zero weight
    /// tensor) degenerates to a tiny symmetric range so quantization still
    /// maps everything to zero instead of erroring.
    pub fn symmetric(bound: f32, bits: BitWidth) -> Self {
        let b = if bound.is_finite() && bound > 0.0 {
            bound
        } else {
            f32::MIN_POSITIVE
        };
        UniformQuantizer {
            lo: -b,
            hi: b,
            bits,
        }
    }

    /// Activation quantizer over `[0, bound]` (post-ReLU ranges).
    pub fn activation(bound: f32, bits: BitWidth) -> Self {
        let b = if bound.is_finite() && bound > 0.0 {
            bound
        } else {
            f32::MIN_POSITIVE
        };
        UniformQuantizer {
            lo: 0.0,
            hi: b,
            bits,
        }
    }

    /// Lower clip bound `a`.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper clip bound `b`.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// The quantizer's bit-width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Quantizes one value per Eqs. 1–3.
    pub fn quantize(&self, x: f32) -> f32 {
        if self.bits.is_pruned() {
            return 0.0;
        }
        // A degenerate range (all-zero weight tensor) quantizes to zero
        // rather than to subnormal noise.
        if self.hi - self.lo <= f32::MIN_POSITIVE * 4.0 {
            return 0.0;
        }
        let n_minus_1 = (self.bits.levels() - 1) as f32;
        let xc = x.clamp(self.lo, self.hi);
        let xr = ((n_minus_1 * (xc - self.lo) / (self.hi - self.lo)).round()) / n_minus_1;
        (self.hi - self.lo) * xr + self.lo
    }

    /// Quantizes every element of a tensor.
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|x| self.quantize(x))
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.quantize(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    #[test]
    fn clips_to_range() {
        let q = UniformQuantizer::new(-1.0, 1.0, bw(8)).unwrap();
        assert_eq!(q.quantize(5.0), 1.0);
        assert_eq!(q.quantize(-5.0), -1.0);
    }

    #[test]
    fn one_bit_symmetric_has_two_levels() {
        let q = UniformQuantizer::symmetric(1.0, bw(1));
        // levels: -1 and +1
        assert_eq!(q.quantize(0.9), 1.0);
        assert_eq!(q.quantize(-0.2), -1.0);
        assert_eq!(q.quantize(0.1), 1.0); // rounds up from midpoint 0
    }

    #[test]
    fn two_bit_levels_match_formula() {
        // N = 4 levels over [-1, 1]: -1, -1/3, 1/3, 1
        let q = UniformQuantizer::symmetric(1.0, bw(2));
        for (x, want) in [
            (-1.0, -1.0),
            (-0.4, -1.0 / 3.0),
            (0.2, 1.0 / 3.0),
            (0.8, 1.0),
        ] {
            assert!((q.quantize(x) - want).abs() < 1e-6, "{x}");
        }
    }

    #[test]
    fn zero_bits_prunes() {
        let q = UniformQuantizer::symmetric(1.0, BitWidth::ZERO);
        assert_eq!(q.quantize(0.7), 0.0);
        assert_eq!(q.quantize(-123.0), 0.0);
    }

    #[test]
    fn idempotent() {
        let q = UniformQuantizer::symmetric(2.0, bw(3));
        for x in [-1.7f32, -0.2, 0.0, 0.4, 1.9, 5.0] {
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once, "not idempotent at {x}");
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let q = UniformQuantizer::new(-3.0, 5.0, bw(4)).unwrap();
        assert_eq!(q.quantize(-3.0), -3.0);
        assert_eq!(q.quantize(5.0), 5.0);
    }

    #[test]
    fn activation_range_starts_at_zero() {
        let q = UniformQuantizer::activation(4.0, bw(2));
        assert_eq!(q.lo(), 0.0);
        assert_eq!(q.quantize(-1.0), 0.0);
        // levels 0, 4/3, 8/3, 4
        assert!((q.quantize(1.5) - 4.0 / 3.0).abs() < 1e-6);
        assert_eq!(q.quantize(9.0), 4.0);
    }

    #[test]
    fn degenerate_bounds_fall_back() {
        let q = UniformQuantizer::symmetric(0.0, bw(4));
        assert_eq!(q.quantize(0.0), 0.0);
        let q = UniformQuantizer::activation(f32::NAN, bw(4));
        assert!(q.hi() > 0.0);
    }

    #[test]
    fn invalid_explicit_range_rejected() {
        assert!(UniformQuantizer::new(1.0, 1.0, bw(2)).is_err());
        assert!(UniformQuantizer::new(f32::NAN, 1.0, bw(2)).is_err());
        assert!(UniformQuantizer::new(2.0, -2.0, bw(2)).is_err());
    }

    #[test]
    fn tensor_and_slice_match_scalar() {
        let q = UniformQuantizer::symmetric(1.0, bw(3));
        let t = Tensor::from_vec(vec![-0.9, -0.1, 0.3, 0.77], &[4]).unwrap();
        let qt = q.quantize_tensor(&t);
        let mut s = t.as_slice().to_vec();
        q.quantize_slice(&mut s);
        for i in 0..4 {
            assert_eq!(qt.as_slice()[i], q.quantize(t.as_slice()[i]));
            assert_eq!(s[i], qt.as_slice()[i]);
        }
    }

    #[test]
    fn level_count_is_bounded_by_two_pow_bits() {
        let q = UniformQuantizer::symmetric(1.0, bw(3));
        let mut seen = std::collections::BTreeSet::new();
        let mut x = -1.5f32;
        while x <= 1.5 {
            seen.insert((q.quantize(x) * 1e6).round() as i64);
            x += 0.001;
        }
        assert!(seen.len() <= 8, "3-bit produced {} levels", seen.len());
        assert!(seen.len() >= 7, "3-bit produced only {} levels", seen.len());
    }
}
