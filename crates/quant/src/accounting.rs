use crate::BitArrangement;
use serde::{Deserialize, Serialize};

/// Storage accounting for a quantized model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeReport {
    /// Weights covered by the arrangement (quantized layers only).
    pub quantized_weights: usize,
    /// Bits those weights occupy after quantization.
    pub quantized_bits: u64,
    /// Weights outside the arrangement (first/output layers, BN, biases)
    /// kept at full precision.
    pub fullprec_weights: usize,
    /// Average bit-width over the quantized weights.
    pub average_bits: f32,
    /// Total model size in bits (quantized + 32-bit full-precision part).
    pub total_bits: u64,
    /// Size of the same model entirely at fp32, in bits.
    pub fp32_bits: u64,
}

impl SizeReport {
    /// Compression ratio of the whole model versus fp32.
    pub fn compression_ratio(&self) -> f32 {
        if self.total_bits == 0 {
            return 0.0;
        }
        self.fp32_bits as f32 / self.total_bits as f32
    }
}

/// Computes a [`SizeReport`] for an arrangement plus the count of
/// parameters left at full precision.
pub fn model_size_bits(arrangement: &BitArrangement, fullprec_weights: usize) -> SizeReport {
    let quantized_weights = arrangement.total_weights();
    let quantized_bits: u64 = arrangement.units().iter().map(|u| u.total_bits()).sum();
    let total_bits = quantized_bits + 32 * fullprec_weights as u64;
    let fp32_bits = 32 * (quantized_weights + fullprec_weights) as u64;
    SizeReport {
        quantized_weights,
        quantized_bits,
        fullprec_weights,
        average_bits: arrangement.average_bits(),
        total_bits,
        fp32_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitWidth, UnitArrangement};

    #[test]
    fn size_report_math() {
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement::uniform(
            "u",
            2,
            10,
            BitWidth::new(4).unwrap(),
        ));
        let r = model_size_bits(&arr, 5);
        assert_eq!(r.quantized_weights, 20);
        assert_eq!(r.quantized_bits, 80);
        assert_eq!(r.total_bits, 80 + 160);
        assert_eq!(r.fp32_bits, 32 * 25);
        assert!((r.average_bits - 4.0).abs() < 1e-6);
        assert!((r.compression_ratio() - 800.0 / 240.0).abs() < 1e-4);
    }

    #[test]
    fn empty_model() {
        let r = model_size_bits(&BitArrangement::new(), 0);
        assert_eq!(r.total_bits, 0);
        assert_eq!(r.compression_ratio(), 0.0);
    }
}
