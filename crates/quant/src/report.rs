//! Human-readable inspection of a network's quantization state —
//! the `print(model)`-style debugging aid of PyTorch quantization flows.

use crate::quant_units;
use cbq_nn::{Layer, LayerKind};
use std::fmt::Write as _;

/// Summarizes the network's quantization state: quantizable units, which
/// layers carry weight transforms, and the per-ReLU activation-quantizer
/// settings.
///
/// # Example
///
/// ```
/// use cbq_nn::models;
/// use cbq_quant::{install_act_quant, quant_state_report};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), cbq_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = models::mlp(&[4, 8, 6, 2], &mut rng)?;
/// install_act_quant(&mut net);
/// let report = quant_state_report(&mut net);
/// assert!(report.contains("fc2"));
/// assert!(report.contains("act quantizer"));
/// # Ok(())
/// # }
/// ```
pub fn quant_state_report(net: &mut dyn Layer) -> String {
    let mut out = String::new();
    let units = quant_units(net);
    let _ = writeln!(out, "quantizable units: {}", units.len());
    for u in &units {
        let _ = writeln!(
            out,
            "  {:<20} {} filters x {} weights",
            u.name,
            u.out_channels,
            u.weights_per_filter()
        );
    }
    let _ = writeln!(out, "layers:");
    net.visit_layers_mut(&mut |l| {
        let mut notes = Vec::new();
        if l.kind() == LayerKind::Relu {
            match l.activation_quantizer_mut() {
                Some(q) => {
                    let bits = q
                        .bits()
                        .map(|b| format!("{b}-bit"))
                        .unwrap_or_else(|| "disabled".into());
                    notes.push(format!("act quantizer {bits}, clip {:.3}", q.clip()));
                }
                None => notes.push("no act quantizer".into()),
            }
        }
        if l.quantizable() {
            notes.push("weight-quantizable".into());
        }
        let _ = writeln!(
            out,
            "  {:<20} {:?}{}{}",
            l.name(),
            l.kind(),
            if notes.is_empty() { "" } else { " — " },
            notes.join(", ")
        );
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install_act_quant, set_act_bits, BitWidth};
    use cbq_nn::{models, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(1);
        models::mlp(&[4, 8, 6, 2], &mut rng).unwrap()
    }

    #[test]
    fn report_lists_units_and_layers() {
        let mut net = sample_net();
        let r = quant_state_report(&mut net);
        // fc1 (first) and fc3 (output) are excluded; only fc2 quantizes.
        assert!(r.contains("quantizable units: 1"), "{r}");
        assert!(r.contains("fc2"));
        assert!(r.contains("fc3")); // still listed in the layer walk
        assert!(r.contains("no act quantizer"));
    }

    #[test]
    fn report_reflects_act_quant_state() {
        let mut net = sample_net();
        install_act_quant(&mut net);
        set_act_bits(&mut net, Some(BitWidth::new(3).unwrap()));
        let r = quant_state_report(&mut net);
        assert!(r.contains("act quantizer 3-bit"), "{r}");
    }
}
