use cbq_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by the quantization substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A bit-width outside the supported `0..=8` range.
    BitWidthOutOfRange {
        /// Requested bits.
        bits: u8,
    },
    /// A quantization range with `lo >= hi` or non-finite bounds.
    InvalidRange {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// An arrangement does not match the network it is being applied to.
    ArrangementMismatch(String),
    /// A serialized packed-code section failed validation (truncated
    /// stream, bad checksum, or codes inconsistent with the declared
    /// bit-widths). Deliberately distinct from [`QuantError::ArrangementMismatch`]
    /// so callers can treat storage corruption differently from caller bugs.
    CorruptCodes(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A network error surfaced during installation.
    Nn(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BitWidthOutOfRange { bits } => {
                write!(f, "bit-width {bits} outside supported range 0..=8")
            }
            QuantError::InvalidRange { lo, hi } => {
                write!(f, "invalid quantization range [{lo}, {hi}]")
            }
            QuantError::ArrangementMismatch(msg) => write!(f, "arrangement mismatch: {msg}"),
            QuantError::CorruptCodes(msg) => write!(f, "corrupt packed codes: {msg}"),
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
            QuantError::Nn(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for QuantError {
    fn from(e: TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

impl From<cbq_nn::NnError> for QuantError {
    fn from(e: cbq_nn::NnError) -> Self {
        QuantError::Nn(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QuantError::BitWidthOutOfRange { bits: 9 }
            .to_string()
            .contains('9'));
        assert!(QuantError::InvalidRange { lo: 1.0, hi: 0.0 }
            .to_string()
            .contains("invalid"));
        assert!(QuantError::from(TensorError::Empty)
            .to_string()
            .contains("tensor"));
    }
}
