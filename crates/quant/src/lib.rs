#![warn(missing_docs)]

//! Uniform quantization substrate for the CBQ reproduction.
//!
//! This crate implements the paper's quantization machinery (§II-A,
//! Eqs. 1–3) and everything needed to *apply* a per-filter bit-width
//! assignment to a network from `cbq-nn`:
//!
//! - [`BitWidth`] — a validated 0..=8-bit width (0 bits = pruned).
//! - [`UniformQuantizer`] — clip → normalize → round → rescale, exactly
//!   Eqs. 1–3; symmetric for weights, `[0, b]` for post-ReLU activations.
//! - [`BitArrangement`] — the per-filter bit-width assignment the search
//!   in `cbq-core` produces, with average-bit-width and size accounting.
//! - [`PerFilterQuantizer`] — a [`WeightTransform`] that fake-quantizes a
//!   layer's weights filter-by-filter; installing it on a network's layers
//!   turns ordinary forward/backward into quantization-aware training with
//!   a straight-through estimator.
//! - [`ActQuant`] — an activation-quantization layer with a calibration
//!   mode that records the observed activation maximum (the paper's `b`).
//! - [`IntegerNet`] / [`PackedIntegerNet`] — post-training lowering to
//!   exact integer-code execution; the packed variant stores 1–4-bit
//!   rows at bitplane/nibble density and is bit-identical in output.
//!
//! [`WeightTransform`]: cbq_nn::WeightTransform
//!
//! # Example
//!
//! ```
//! use cbq_quant::{BitWidth, UniformQuantizer};
//!
//! let q = UniformQuantizer::symmetric(1.0, BitWidth::new(2)?);
//! // 2 bits = 4 levels across [-1, 1]
//! assert_eq!(q.quantize(0.9), 1.0);
//! assert!((q.quantize(0.2) - 0.3333).abs() < 1e-3);
//! # Ok::<(), cbq_quant::QuantError>(())
//! ```

mod accounting;
mod act_quant;
mod arrangement;
mod bitwidth;
mod error;
pub mod integer;
pub mod integer_net;
pub mod packed;
mod quantizer;
mod report;
mod transforms;

pub use accounting::{model_size_bits, SizeReport};
pub use act_quant::{
    act_clip_bounds, install_act_quant, restore_act_clip_bounds, set_act_bits, set_act_calibration,
    ActQuant,
};
pub use arrangement::{BitArrangement, BitHistogram, UnitArrangement};
pub use bitwidth::BitWidth;
pub use error::QuantError;
pub use integer::{codes_to_levels, levels_to_codes, IntActivations, IntegerConv2d, IntegerLinear};
pub use integer_net::IntegerNet;
pub use packed::{kernel_isa, PackedIntegerLinear, PackedIntegerNet, PackedModelCodes};
pub use quantizer::UniformQuantizer;
pub use report::quant_state_report;
pub use transforms::{
    clear_weight_transforms, install_arrangement, install_uniform, quant_units, BoundMode,
    PerFilterQuantizer, QuantUnitInfo,
};

/// Result alias for fallible quantization operations.
pub type Result<T> = std::result::Result<T, QuantError>;
