//! Property-based tests of the quantizer's defining invariants (Eqs. 1–3)
//! and of the arrangement accounting.

use cbq_quant::{BitArrangement, BitWidth, UniformQuantizer, UnitArrangement};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bits_strategy() -> impl Strategy<Value = BitWidth> {
    (0u8..=8).prop_map(|b| BitWidth::new(b).unwrap())
}

proptest! {
    /// Quantization is idempotent: q(q(x)) = q(x).
    #[test]
    fn idempotent(x in -100.0f32..100.0, bound in 0.01f32..50.0, bits in bits_strategy()) {
        let q = UniformQuantizer::symmetric(bound, bits);
        let once = q.quantize(x);
        prop_assert_eq!(q.quantize(once), once);
    }

    /// Output stays inside the clip range.
    #[test]
    fn output_in_range(x in -100.0f32..100.0, bound in 0.01f32..50.0, bits in bits_strategy()) {
        let q = UniformQuantizer::symmetric(bound, bits);
        let y = q.quantize(x);
        prop_assert!(y >= -bound - 1e-4 && y <= bound + 1e-4, "{} outside [-{}, {}]", y, bound, bound);
    }

    /// Quantization is monotone non-decreasing.
    #[test]
    fn monotone(a in -10.0f32..10.0, delta in 0.0f32..5.0, bits in bits_strategy()) {
        let q = UniformQuantizer::symmetric(4.0, bits);
        prop_assert!(q.quantize(a + delta) >= q.quantize(a));
    }

    /// The number of distinct output levels never exceeds 2^bits.
    #[test]
    fn level_count_bounded(bits in 1u8..=6, bound in 0.5f32..5.0) {
        let q = UniformQuantizer::symmetric(bound, BitWidth::new(bits).unwrap());
        let mut levels = BTreeSet::new();
        let steps = 400;
        for i in 0..=steps {
            let x = -1.5 * bound + 3.0 * bound * i as f32 / steps as f32;
            levels.insert((q.quantize(x) * 1e5).round() as i64);
        }
        prop_assert!(levels.len() <= (1usize << bits), "{} levels at {} bits", levels.len(), bits);
    }

    /// Quantization error is bounded by half an interval inside the clip
    /// range.
    #[test]
    fn error_bounded_by_half_step(x in -1.0f32..1.0, bits in 1u8..=8) {
        let bound = 1.0f32;
        let q = UniformQuantizer::symmetric(bound, BitWidth::new(bits).unwrap());
        let n = (1u32 << bits) as f32;
        let step = 2.0 * bound / (n - 1.0);
        let err = (q.quantize(x) - x).abs();
        prop_assert!(err <= step / 2.0 + 1e-5, "error {} > half step {}", err, step / 2.0);
    }

    /// Activation quantizers never output negatives.
    #[test]
    fn activation_non_negative(x in -10.0f32..10.0, bound in 0.1f32..10.0, bits in bits_strategy()) {
        let q = UniformQuantizer::activation(bound, bits);
        prop_assert!(q.quantize(x) >= 0.0);
    }

    /// Arrangement average is a true weighted mean: between min and max
    /// assigned bits, and exactly linear in unit weight counts.
    #[test]
    fn average_bits_is_weighted_mean(
        filters in prop::collection::vec((0u8..=8, 1usize..20), 1..6),
    ) {
        let mut arr = BitArrangement::new();
        for (i, &(bits, wpf)) in filters.iter().enumerate() {
            arr.push(UnitArrangement::uniform(
                format!("u{i}"),
                3,
                wpf,
                BitWidth::new(bits).unwrap(),
            ));
        }
        let avg = arr.average_bits();
        let lo = filters.iter().map(|&(b, _)| b).min().unwrap() as f32;
        let hi = filters.iter().map(|&(b, _)| b).max().unwrap() as f32;
        prop_assert!(avg >= lo - 1e-5 && avg <= hi + 1e-5);
        // direct recomputation
        let total: usize = filters.iter().map(|&(_, w)| 3 * w).sum();
        let bits_sum: usize = filters.iter().map(|&(b, w)| b as usize * 3 * w).sum();
        prop_assert!((avg - bits_sum as f32 / total as f32).abs() < 1e-5);
    }

    /// Serde round trip preserves arrangements exactly.
    #[test]
    fn arrangement_serde_round_trip(
        bits in prop::collection::vec(0u8..=8, 1..20),
        wpf in 1usize..50,
    ) {
        let mut arr = BitArrangement::new();
        let unit = UnitArrangement {
            name: "u".into(),
            bits: bits.iter().map(|&b| BitWidth::new(b).unwrap()).collect(),
            weights_per_filter: wpf,
        };
        arr.push(unit);
        let json = serde_json::to_string(&arr).unwrap();
        let back: BitArrangement = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, arr);
    }

    /// Histogram totals equal filter counts.
    #[test]
    fn histogram_total_matches(bits in prop::collection::vec(0u8..=8, 1..40)) {
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement {
            name: "u".into(),
            bits: bits.iter().map(|&b| BitWidth::new(b).unwrap()).collect(),
            weights_per_filter: 2,
        });
        let h = arr.histogram();
        prop_assert_eq!(h.total(), bits.len());
        let pct_sum: f32 = h.percentages().iter().sum();
        prop_assert!((pct_sum - 100.0).abs() < 1e-3);
    }
}
