//! Property-based tests of the integer execution engine's edge cases:
//! 1-bit weights and activations, clip-boundary activation values, pruned
//! (0-bit) filters — including fully-pruned layers and all-zero filter
//! rows — the asymmetric `[0, clip]` activation range's edge behavior,
//! and the accumulator-wrap parity that grounds the WrapNet baseline —
//! per-addition wrapping into a narrow signed range is exactly the single
//! wrap of the full-precision sum (modular arithmetic), and a wide
//! accumulator is exactly the unwrapped forward.
//!
//! Each property also has a deterministic sweep companion (`#[test]`),
//! so the coverage holds even where the proptest harness is unavailable.

use cbq_quant::{BitWidth, IntActivations, IntegerLinear};
use cbq_tensor::Tensor;
use proptest::prelude::*;

/// Exact integer reference for `IntegerLinear::forward`: i64 dot of the
/// weight and activation codes, rescaled with the engine's verbatim f32
/// expression. Pruned rows (scale 0) contribute bias only.
fn reference_forward(lin: &IntegerLinear, acts: &IntActivations) -> Vec<f32> {
    let (out, inf) = (lin.out_features(), lin.in_features());
    let codes = lin.codes();
    let mut y = Vec::with_capacity(acts.batch() * out);
    for b in 0..acts.batch() {
        let xrow = &acts.codes()[b * inf..(b + 1) * inf];
        for k in 0..out {
            let mut v = if lin.filter_scales()[k] == 0.0 {
                0.0
            } else {
                let wrow = &codes[k * inf..(k + 1) * inf];
                let acc: i64 = wrow
                    .iter()
                    .zip(xrow)
                    .map(|(&w, &a)| w as i64 * a as i64)
                    .sum();
                acc as f32 * lin.filter_scales()[k] * acts.scale()
            };
            if let Some(bias) = lin.bias() {
                v += bias[k];
            }
            y.push(v);
        }
    }
    y
}

/// Signed wrap of `x` into `[-2^(n-1), 2^(n-1))` — the WrapNet-style
/// one-shot overflow applied to a full-precision accumulator.
fn wrap_once(x: i64, acc_bits: u8) -> i64 {
    let l = 1i64 << (acc_bits - 1);
    (x + l).rem_euclid(2 * l) - l
}

/// An `IntegerLinear` whose codes are known exactly: ±1 weights compiled
/// at 1 bit (bound = 1, per-filter scale = 1, codes = the signs).
fn one_bit_layer(signs: &[i32], out: usize, inf: usize) -> IntegerLinear {
    assert_eq!(signs.len(), out * inf);
    let w = Tensor::from_vec(signs.iter().map(|&s| s as f32).collect(), &[out, inf]).unwrap();
    IntegerLinear::quantize(&w, &vec![BitWidth::new(1).unwrap(); out], None).unwrap()
}

/// Activations whose codes are known exactly: integer values in
/// `[0, levels-1]` quantized with `clip = levels - 1` (scale = 1).
fn exact_activations(levels_minus_1: u32, values: &[i32], batch: usize) -> IntActivations {
    let feats = values.len() / batch;
    let x = Tensor::from_vec(values.iter().map(|&v| v as f32).collect(), &[batch, feats]).unwrap();
    let bits = (32 - levels_minus_1.leading_zeros()).max(1) as u8;
    // clip = M-1 at `bits` makes the scale exactly 1.0.
    IntActivations::quantize(
        &x,
        ((1u32 << bits) - 1) as f32,
        BitWidth::new(bits).unwrap(),
    )
    .unwrap()
}

#[test]
fn one_bit_weights_quantize_to_sign_codes() {
    // 1-bit symmetric quantization has exactly two levels, ±bound: the
    // dequantized weights must be the per-layer bound with the weight's
    // sign, whatever the magnitudes were.
    let w = Tensor::from_vec(vec![0.3, -0.7, 2.0, -0.01, 1.4, -2.0], &[2, 3]).unwrap();
    let lin = IntegerLinear::quantize(&w, &[BitWidth::new(1).unwrap(); 2], None).unwrap();
    let bound = 2.0f32; // max |w|
    let deq = lin.dequantized_weights();
    for (orig, got) in w.as_slice().iter().zip(deq.as_slice()) {
        let expect = bound * orig.signum();
        assert_eq!(
            got.to_bits(),
            expect.to_bits(),
            "{orig} -> {got}, expected {expect}"
        );
    }
}

#[test]
fn one_bit_activations_are_binary_codes() {
    // 1-bit activations have levels {0, clip}: everything at or below
    // half-clip rounds to code 0, everything above to code 1.
    let clip = 3.0f32;
    let x = Tensor::from_vec(vec![-1.0, 0.0, 1.49, 1.51, clip, clip + 10.0], &[1, 6]).unwrap();
    let acts = IntActivations::quantize(&x, clip, BitWidth::new(1).unwrap()).unwrap();
    assert_eq!(acts.scale(), clip);
    let deq = acts.dequantize();
    let expect = [0.0, 0.0, 0.0, clip, clip, clip];
    for (got, want) in deq.as_slice().iter().zip(expect) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

#[test]
fn clip_boundary_values_stay_in_code_range() {
    // Codes must lie in [0, M-1] for every input, including negatives,
    // exact clip hits, and just-past-clip values.
    for bits in 1u8..=8 {
        let levels = 1u32 << bits;
        let clip = 2.5f32;
        let eps = 1e-4f32;
        let inputs = [
            f32::MIN_POSITIVE,
            -1e30,
            -eps,
            0.0,
            eps,
            clip / 2.0,
            clip - eps,
            clip,
            clip + eps,
            1e30,
        ];
        let x = Tensor::from_vec(inputs.to_vec(), &[1, inputs.len()]).unwrap();
        let acts = IntActivations::quantize(&x, clip, BitWidth::new(bits).unwrap()).unwrap();
        let scale = acts.scale();
        for (&v, &d) in inputs.iter().zip(acts.dequantize().as_slice()) {
            let code = (d / scale).round();
            assert!(
                (0.0..=(levels - 1) as f32).contains(&code),
                "input {v} at {bits} bits produced code {code}"
            );
        }
        // The boundaries land exactly on the extreme codes.
        let deq = acts.dequantize();
        assert_eq!(deq.as_slice()[3], 0.0, "0 must encode to code 0");
        assert_eq!(
            (deq.as_slice()[7] / scale).round(),
            (levels - 1) as f32,
            "clip must encode to the top code at {bits} bits"
        );
    }
}

#[test]
fn pruned_rows_contribute_only_bias() {
    let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 0.25], &[2, 2]).unwrap();
    let bias = Tensor::from_vec(vec![0.75, -1.25], &[2]).unwrap();
    let bits = [BitWidth::new(0).unwrap(), BitWidth::new(4).unwrap()];
    let lin = IntegerLinear::quantize(&w, &bits, Some(&bias)).unwrap();
    let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
    let acts = IntActivations::quantize(&x, 2.0, BitWidth::new(8).unwrap()).unwrap();
    let y = lin.forward(&acts).unwrap();
    // Filter 0 is pruned: its output is exactly the bias.
    assert_eq!(y.as_slice()[0].to_bits(), 0.75f32.to_bits());
    // Filter 1 executes normally (nonzero contribution on this input).
    assert_ne!(y.as_slice()[1].to_bits(), (-1.25f32).to_bits());
}

#[test]
fn per_addition_wrap_equals_single_wrap_of_exact_sum() {
    // The WrapNet parity: wrapping after every MAC is congruent mod 2^n
    // to one wrap of the exact integer sum, and both land in the same
    // signed range — so they are *equal*, not merely congruent. Sweep
    // deterministic sign/activation patterns across accumulator widths.
    for acc_bits in [2u8, 3, 4, 6, 8] {
        for seed in 0..20i64 {
            let inf = 9usize;
            let signs: Vec<i32> = (0..inf as i64)
                .map(|i| if (seed * 31 + i * 17) % 3 == 0 { -1 } else { 1 })
                .collect();
            let values: Vec<i32> = (0..inf as i64)
                .map(|i| ((seed * 13 + i * 7) % 16) as i32)
                .collect();
            let lin = one_bit_layer(&signs, 1, inf);
            let acts = exact_activations(15, &values, 1);
            // scale_w = scale_a = 1, so the forward output *is* the
            // accumulator value as f32.
            let wrapped = lin.forward_with_accumulator(&acts, Some(acc_bits)).unwrap();
            let exact: i64 = signs
                .iter()
                .zip(&values)
                .map(|(&s, &v)| s as i64 * v as i64)
                .sum();
            let expect = wrap_once(exact, acc_bits) as f32;
            assert_eq!(
                wrapped.as_slice()[0].to_bits(),
                expect.to_bits(),
                "acc_bits {acc_bits}, seed {seed}: per-add wrap {} != single wrap {expect}",
                wrapped.as_slice()[0]
            );
        }
    }
}

#[test]
fn wide_accumulator_equals_unwrapped_forward() {
    // With an accumulator wide enough to never overflow, wrapping is the
    // identity: the output must be bit-identical to the unwrapped path.
    let signs: Vec<i32> = (0..12).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    let values: Vec<i32> = (0..12).map(|i| (i * 5) % 16).collect();
    let lin = one_bit_layer(&signs, 1, 12);
    let acts = exact_activations(15, &values, 1);
    let wide = lin.forward_with_accumulator(&acts, Some(32)).unwrap();
    let unwrapped = lin.forward(&acts).unwrap();
    assert_eq!(
        wide.as_slice()[0].to_bits(),
        unwrapped.as_slice()[0].to_bits()
    );
}

#[test]
fn all_pruned_layer_is_bias_only_for_any_input() {
    // A fully-pruned layer (every filter at 0 bits) must ignore its
    // weights entirely: the output is exactly the bias, or exactly 0.0
    // without one — for wild weights and wild inputs alike.
    let w = Tensor::from_vec(
        vec![1e30, -1e30, 0.5, f32::MIN_POSITIVE, -7.0, 42.0],
        &[2, 3],
    )
    .unwrap();
    let bits = vec![BitWidth::new(0).unwrap(); 2];
    let x = Tensor::from_vec(vec![5.0, -3.0, 0.125, 100.0, 0.0, 2.5], &[2, 3]).unwrap();
    let acts = IntActivations::quantize(&x, 4.0, BitWidth::new(8).unwrap()).unwrap();

    let biased = IntegerLinear::quantize(
        &w,
        &bits,
        Some(&Tensor::from_vec(vec![0.5, -0.25], &[2]).unwrap()),
    )
    .unwrap();
    let y = biased.forward(&acts).unwrap();
    assert_eq!(y.shape(), &[2, 2]);
    for row in 0..2 {
        assert_eq!(y.as_slice()[row * 2].to_bits(), 0.5f32.to_bits());
        assert_eq!(y.as_slice()[row * 2 + 1].to_bits(), (-0.25f32).to_bits());
    }

    let unbiased = IntegerLinear::quantize(&w, &bits, None).unwrap();
    let y = unbiased.forward(&acts).unwrap();
    assert!(y.as_slice().iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
}

#[test]
fn zero_filter_rows_follow_the_layer_bound() {
    // An all-zero filter row at a *nonzero* bitwidth is not pruned: the
    // symmetric grid has no zero level (odd codes), so every weight
    // rounds to the level nearest zero. With an even level count the
    // midpoint rounds away from zero, landing on code +1 — the row
    // contributes +scale * sum(activations), not nothing. Pin that, and
    // pin the forward against the exact integer reference.
    let w = Tensor::from_vec(vec![0.0, 0.0, 0.0, 3.0, -1.5, 0.75], &[2, 3]).unwrap();
    let bits = [BitWidth::new(4).unwrap(), BitWidth::new(4).unwrap()];
    let lin = IntegerLinear::quantize(&w, &bits, None).unwrap();
    assert_eq!(
        &lin.codes()[..3],
        &[1, 1, 1],
        "zero weights sit on the midpoint tie"
    );
    let scale = 3.0f32 / 15.0; // bound / (levels - 1)
    for &d in &lin.dequantized_weights().as_slice()[..3] {
        assert_eq!(d.to_bits(), scale.to_bits());
    }
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
    let acts = IntActivations::quantize(&x, 3.0, BitWidth::new(4).unwrap()).unwrap();
    let y = lin.forward(&acts).unwrap();
    for (got, want) in y.as_slice().iter().zip(reference_forward(&lin, &acts)) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
    assert_ne!(y.as_slice()[0], 0.0, "zero-filter row still contributes");
}

#[test]
fn asymmetric_clip_edges_pin_extreme_codes() {
    // The activation range [0, clip] is asymmetric: negatives clamp to
    // code 0, everything at or above clip to the top code, and the
    // half-step boundary rounds away from zero (f32 `round`). Sweep
    // non-power-aligned clips so the scale is never a dyadic rational.
    for clip in [0.3f32, 1.25, 2.5, 7.9] {
        for bits in [1u8, 2, 3, 4, 8] {
            let top = ((1u32 << bits) - 1) as f32;
            let scale = clip / top;
            let inputs = [
                -1e20,
                -f32::MIN_POSITIVE,
                0.0,
                0.5 * scale, // tie: rounds up to code 1
                0.49 * scale,
                clip,
                clip + 1e-3,
                1e20,
            ];
            let x = Tensor::from_vec(inputs.to_vec(), &[1, inputs.len()]).unwrap();
            let acts = IntActivations::quantize(&x, clip, BitWidth::new(bits).unwrap()).unwrap();
            let codes: Vec<f32> = acts
                .dequantize()
                .as_slice()
                .iter()
                .map(|d| (d / acts.scale()).round())
                .collect();
            assert_eq!(
                codes[0], 0.0,
                "far-negative clamps to 0 (clip {clip}, {bits}b)"
            );
            assert_eq!(codes[1], 0.0, "tiny negative clamps to 0");
            assert_eq!(codes[2], 0.0, "exact zero is code 0");
            assert_eq!(codes[3], 1.0, "half-step tie rounds away from zero");
            assert_eq!(codes[4], 0.0, "just below the tie stays at 0");
            assert_eq!(codes[5], top, "exact clip is the top code");
            assert_eq!(codes[6], top, "past clip clamps to the top code");
            assert_eq!(codes[7], top, "far-positive clamps to the top code");
        }
    }
}

proptest! {
    /// Per-addition wrapping equals a single wrap of the exact sum for
    /// arbitrary sign patterns, activation codes, and accumulator widths.
    #[test]
    fn prop_wrap_parity(
        signs in proptest::collection::vec(prop_oneof![Just(-1i32), Just(1i32)], 1..24),
        raw in proptest::collection::vec(0i32..16, 1..24),
        acc_bits in 2u8..12,
    ) {
        let inf = signs.len().min(raw.len());
        let signs = &signs[..inf];
        let values = &raw[..inf];
        let lin = one_bit_layer(signs, 1, inf);
        let acts = exact_activations(15, values, 1);
        let wrapped = lin.forward_with_accumulator(&acts, Some(acc_bits)).unwrap();
        let exact: i64 = signs.iter().zip(values).map(|(&s, &v)| s as i64 * v as i64).sum();
        prop_assert_eq!(
            wrapped.as_slice()[0].to_bits(),
            (wrap_once(exact, acc_bits) as f32).to_bits()
        );
    }

    /// Activation codes stay in `[0, 2^bits - 1]` for arbitrary inputs
    /// and clips, and dequantized values stay in `[0, clip]`.
    #[test]
    fn prop_activation_codes_in_range(
        xs in proptest::collection::vec(-100.0f32..100.0, 1..32),
        clip in 0.01f32..50.0,
        bits in 1u8..=8,
    ) {
        let n = xs.len();
        let x = Tensor::from_vec(xs, &[1, n]).unwrap();
        let acts = IntActivations::quantize(&x, clip, BitWidth::new(bits).unwrap()).unwrap();
        let scale = acts.scale();
        let top = ((1u32 << bits) - 1) as f32;
        for &d in acts.dequantize().as_slice() {
            let code = (d / scale).round();
            prop_assert!((0.0..=top).contains(&code));
            prop_assert!(d >= 0.0 && d <= clip + 1e-4);
        }
    }

    /// A fully-pruned layer outputs exactly its bias (or exactly zero)
    /// for arbitrary weights, inputs, and batch shapes.
    #[test]
    fn prop_all_pruned_forward_is_exactly_bias(
        ws in proptest::collection::vec(-50.0f32..50.0, 4..24),
        xs in proptest::collection::vec(-10.0f32..10.0, 2..12),
        bias in proptest::option::of(proptest::collection::vec(-5.0f32..5.0, 2..5)),
        abits in 1u8..=8,
    ) {
        let out = bias.as_ref().map_or(2, Vec::len);
        let inf = (ws.len() / out).min(xs.len()).max(1);
        let w = Tensor::from_vec(ws[..out * inf].to_vec(), &[out, inf]).unwrap();
        let b = bias
            .as_ref()
            .map(|b| Tensor::from_vec(b.clone(), &[out]).unwrap());
        let lin = IntegerLinear::quantize(
            &w,
            &vec![BitWidth::new(0).unwrap(); out],
            b.as_ref(),
        )
        .unwrap();
        let x = Tensor::from_vec(xs[..inf].to_vec(), &[1, inf]).unwrap();
        let acts = IntActivations::quantize(&x, 4.0, BitWidth::new(abits).unwrap()).unwrap();
        let y = lin.forward(&acts).unwrap();
        for (k, &got) in y.as_slice().iter().enumerate() {
            let want = bias.as_ref().map_or(0.0, |b| b[k]);
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// The engine's forward is bit-identical to an exact i64 reference
    /// dot over the codes — for arbitrary weights (zero rows included),
    /// per-filter bit mixes with pruned entries, and arbitrary inputs.
    #[test]
    fn prop_forward_matches_integer_reference(
        mut ws in proptest::collection::vec(-10.0f32..10.0, 12..36),
        xs in proptest::collection::vec(-6.0f32..6.0, 3..12),
        bit_picks in proptest::collection::vec(0u8..=8, 3..6),
        zero_row in any::<bool>(),
        clip in 0.1f32..8.0,
        abits in 1u8..=8,
    ) {
        let out = bit_picks.len();
        let inf = (ws.len() / out).min(xs.len()).max(1);
        ws.truncate(out * inf);
        if zero_row {
            // Force a zero-filter row at a (possibly) nonzero bitwidth.
            for v in &mut ws[..inf] {
                *v = 0.0;
            }
        }
        prop_assume!(ws.iter().any(|v| *v != 0.0));
        let w = Tensor::from_vec(ws, &[out, inf]).unwrap();
        let bits: Vec<BitWidth> =
            bit_picks.iter().map(|&b| BitWidth::new(b).unwrap()).collect();
        let lin = IntegerLinear::quantize(&w, &bits, None).unwrap();
        let x = Tensor::from_vec(xs[..inf].to_vec(), &[1, inf]).unwrap();
        let acts = IntActivations::quantize(&x, clip, BitWidth::new(abits).unwrap()).unwrap();
        let y = lin.forward(&acts).unwrap();
        for (got, want) in y.as_slice().iter().zip(reference_forward(&lin, &acts)) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// Asymmetric clip edges: arbitrary (clip, bits) pin zero/negative
    /// inputs to code 0 and clip-or-above inputs to the top code, with
    /// codes monotone in the input.
    #[test]
    fn prop_asymmetric_clip_edges(
        clip in 0.01f32..50.0,
        bits in 1u8..=8,
        mut probes in proptest::collection::vec(-2.0f32..2.0, 2..16),
    ) {
        let top = ((1u32 << bits) - 1) as f32;
        let inputs: Vec<f32> = [-1e20, -clip, 0.0, clip, clip * 1.5, 1e20]
            .into_iter()
            .chain(probes.drain(..).map(|p| p * clip))
            .collect();
        let x = Tensor::from_vec(inputs.clone(), &[1, inputs.len()]).unwrap();
        let acts = IntActivations::quantize(&x, clip, BitWidth::new(bits).unwrap()).unwrap();
        let codes: Vec<f32> = acts
            .dequantize()
            .as_slice()
            .iter()
            .map(|d| (d / acts.scale()).round())
            .collect();
        prop_assert_eq!(codes[0], 0.0);
        prop_assert_eq!(codes[1], 0.0);
        prop_assert_eq!(codes[2], 0.0);
        prop_assert_eq!(codes[3], top);
        prop_assert_eq!(codes[4], top);
        prop_assert_eq!(codes[5], top);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.sort_by(|&a, &b| inputs[a].total_cmp(&inputs[b]));
        for pair in order.windows(2) {
            prop_assert!(
                codes[pair[0]] <= codes[pair[1]],
                "codes must be monotone in the input"
            );
        }
    }

    /// 1-bit weight codes are exactly ±bound after dequantization.
    #[test]
    fn prop_one_bit_weights_are_signed_bound(
        ws in proptest::collection::vec(-10.0f32..10.0, 2..16)
    ) {
        prop_assume!(ws.iter().any(|w| w.abs() > 1e-6));
        let n = ws.len();
        let w = Tensor::from_vec(ws.clone(), &[1, n]).unwrap();
        let lin = IntegerLinear::quantize(&w, &[BitWidth::new(1).unwrap()], None).unwrap();
        let bound = ws.iter().fold(0.0f32, |m, w| m.max(w.abs()));
        for (orig, got) in ws.iter().zip(lin.dequantized_weights().as_slice()) {
            prop_assert_eq!(got.abs(), bound);
            // Exactly-zero weights sit on the rounding tie between the
            // two levels; only check the sign away from it.
            if orig.abs() > 1e-6 {
                prop_assert_eq!(got.signum(), orig.signum());
            }
        }
    }
}
