//! Property-based tests of the tensor substrate's algebraic invariants.

use cbq_tensor::parallel::{fixed_order_reduce, parallel_chunks_mut};
use cbq_tensor::{col2im, conv2d, im2col, ConvSpec, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    #[test]
    fn reshape_round_trip(dims in small_dims()) {
        let len: usize = dims.iter().product();
        let t = Tensor::from_fn(&dims, |i| i as f32);
        let flat = t.reshape(&[len]).unwrap();
        let back = flat.reshape(&dims).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn stack_unstack_round_trip(n in 1usize..5, inner in small_dims()) {
        let items: Vec<Tensor> = (0..n)
            .map(|k| Tensor::from_fn(&inner, |i| (k * 100 + i) as f32))
            .collect();
        let stacked = Tensor::stack(&items).unwrap();
        let back = stacked.unstack().unwrap();
        prop_assert_eq!(back, items);
    }

    #[test]
    fn add_is_commutative(data1 in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let n = data1.len();
        let data2: Vec<f32> = data1.iter().map(|x| x * 0.5 - 1.0).collect();
        let a = Tensor::from_vec(data1, &[n]).unwrap();
        let b = Tensor::from_vec(data2, &[n]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6) {
        let t = Tensor::from_fn(&[rows, cols], |i| i as f32);
        prop_assert_eq!(t.transpose2d().unwrap().transpose2d().unwrap(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.37).sin());
        let b = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.61).cos());
        let c = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.13).sin());
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3,
        hw in 3usize..7,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let spec = ConvSpec::new(stride, pad);
        let k = 3usize;
        prop_assume!(hw + 2 * pad >= k);
        let x = Tensor::from_fn(&[c, hw, hw], |i| ((i * 7919) % 13) as f32 - 6.0);
        let cols = im2col(&x, k, k, spec).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| ((i * 104729) % 11) as f32 - 5.0);
        let lhs = cols.mul(&y).unwrap().sum();
        let folded = col2im(&y, c, hw, hw, k, k, spec).unwrap();
        let rhs = folded.mul(&x).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1.0, "adjoint broken: {} vs {}", lhs, rhs);
    }

    #[test]
    fn conv_with_zero_weights_is_zero(
        n in 1usize..3,
        c in 1usize..3,
        o in 1usize..3,
    ) {
        let x = Tensor::from_fn(&[n, c, 5, 5], |i| i as f32);
        let w = Tensor::zeros(&[o, c, 3, 3]);
        let y = conv2d(&x, &w, None, ConvSpec::new(1, 1)).unwrap();
        prop_assert!(y.max_abs() == 0.0);
    }

    #[test]
    fn argmax_rows_picks_maximum(rows in 1usize..5, cols in 1usize..6) {
        let t = Tensor::from_fn(&[rows, cols], |i| ((i * 31) % 17) as f32);
        let picks = t.argmax_rows().unwrap();
        for (r, &p) in picks.iter().enumerate() {
            let row = t.row(r).unwrap();
            for &v in row.as_slice() {
                prop_assert!(row.as_slice()[p] >= v);
            }
        }
    }

    #[test]
    fn scale_then_sum_is_linear(alpha in -4.0f32..4.0, data in prop::collection::vec(-5.0f32..5.0, 1..24)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]).unwrap();
        let lhs = t.scale(alpha).sum();
        let rhs = alpha * t.sum();
        prop_assert!((lhs - rhs).abs() < 1e-2);
    }

    /// The fixed-order tree reduction over an *arbitrary* split of shards
    /// equals the serial left fold exactly — compared on f32 bit patterns,
    /// so float non-associativity would fail the test if the reduction
    /// order ever depended on shard count or scheduling.
    #[test]
    fn fixed_order_reduce_equals_serial_fold_for_any_split(
        len in 1usize..600,
        shards in 1usize..9,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random shard data covering many magnitudes,
        // where (a + b) + c != a + (b + c) bitwise for most triples.
        let parts: Vec<Vec<f32>> = (0..shards)
            .map(|s| {
                (0..len)
                    .map(|i| {
                        let x = (seed as f32 + (s * len + i) as f32 * 0.7311).sin();
                        x * 10f32.powi(((seed as usize + s + i) % 7) as i32 - 3)
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
        let mut out = vec![f32::NAN; len];
        fixed_order_reduce(&refs, &mut out);
        for e in 0..len {
            let mut serial = 0.0f32;
            for p in &parts {
                serial += p[e];
            }
            prop_assert_eq!(
                out[e].to_bits(),
                serial.to_bits(),
                "element {} diverged: {} vs {}", e, out[e], serial
            );
        }
    }

    /// `parallel_chunks_mut` hands every element to exactly one chunk
    /// callback, for arbitrary valid (length, chunk-size) combinations —
    /// including lengths above and below its internal sequential-fallback
    /// threshold.
    #[test]
    fn parallel_chunks_cover_every_element_exactly_once(
        chunk in 1usize..70,
        chunks in 1usize..130,
    ) {
        let len = chunk * chunks;
        let mut buf = vec![0.0f32; len];
        parallel_chunks_mut(&mut buf, chunk, |i, piece| {
            assert_eq!(piece.len(), chunk);
            for x in piece.iter_mut() {
                // Any element visited twice would end at 2.0, never 1.0;
                // the chunk index pins each element to its one chunk.
                *x += 1.0 + i as f32 * len as f32;
            }
        });
        for (e, &x) in buf.iter().enumerate() {
            let expected = 1.0 + (e / chunk) as f32 * len as f32;
            prop_assert_eq!(x, expected, "element {} written wrongly/not exactly once", e);
        }
    }
}
