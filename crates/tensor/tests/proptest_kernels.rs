//! Property-based equivalence tests for the packed GEMM kernel and the
//! batched im2col unfolding — the two transforms the probe hot path leans
//! on. Every assertion is bit-for-bit (`to_bits`), not approximate: the
//! packed kernel's contract is exact equality with the naive triple loop,
//! and batched unfolding is a pure data-movement reshape.
//!
//! The check bodies live in plain functions driven two ways: exhaustive
//! deterministic sweeps over the tile-remainder edges (always run), and
//! `proptest!` cases that explore the same spaces randomly with
//! shrinking.

use cbq_tensor::dispatch::{self, Isa};
use cbq_tensor::kernels::{gemm_packed, naive_gemm, KC, MR, NR};
use cbq_tensor::{im2col, im2col_batched, ConvSpec, Scratch, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that force the process-global dispatch ISA. Other
/// tests in this binary may observe a forced ISA while one runs; that is
/// benign — in bit-exact mode every arm is byte-equal, which is exactly
/// what the matrix test proves.
static ISA_LOCK: Mutex<()> = Mutex::new(());

/// Restores automatic ISA detection when dropped, panic included.
struct IsaGuard;

impl Drop for IsaGuard {
    fn drop(&mut self) {
        dispatch::force_isa(None);
    }
}

/// Dimensions straddling the register-tile boundaries: `1..=3*tile`
/// contains every remainder edge (`tile±1`, `2*tile±1`) around one and
/// two full tiles.
fn tile_edge_dim(tile: usize) -> impl Strategy<Value = usize> {
    1usize..=3 * tile
}

/// K dimensions around the cache-blocking boundary: the small values
/// `1..=24` (all MR/NR remainder shapes) plus the KC straddle
/// `{KC-1, KC, KC+1}`, kept sparse so the naive reference stays fast.
fn k_dim() -> impl Strategy<Value = usize> {
    (0usize..27).prop_map(|i| if i < 24 { i + 1 } else { KC + i - 25 })
}

fn dense(len: usize, seed: u64) -> Vec<f32> {
    // Deterministic pseudo-random fill; includes negatives and zeros.
    (0..len)
        .map(|i| {
            let x = ((i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed)
                >> 33) as f32;
            (x / 1e8).sin()
        })
        .collect()
}

/// Panics on the first bitwise mismatch (a panic fails the proptest case
/// and triggers shrinking, same as `prop_assert!`).
fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "mismatch at index {i}: {x} vs {y}"
        );
    }
}

/// Packed-vs-naive equality at `(m, n, k)` in all three stride layouts
/// the network uses — NN (forward conv), TN (A stored `[k, m]`, the
/// backward stride pattern) and NT (B stored `[n, k]`, the FC forward) —
/// plus a warm-arena rerun that must reproduce the cold result exactly.
fn check_gemm_all_layouts(m: usize, n: usize, k: usize) {
    let mut scratch = Scratch::new();
    let mut out_naive = vec![0.0f32; m * n];
    let mut out_packed = vec![0.0f32; m * n];

    // NN: A [m, k], B [k, n], both row-major.
    let a = dense(m * k, 1);
    let b = dense(k * n, 2);
    naive_gemm(m, n, k, &a, k, 1, &b, n, 1, &mut out_naive);
    gemm_packed(m, n, k, &a, k, 1, &b, n, 1, &mut out_packed, &mut scratch);
    assert_bits_eq(&out_naive, &out_packed);

    // Warm-scratch determinism: recycled (non-zeroed) pool buffers must
    // not change the result.
    let mut out_warm = vec![0.0f32; m * n];
    gemm_packed(m, n, k, &a, k, 1, &b, n, 1, &mut out_warm, &mut scratch);
    assert_bits_eq(&out_packed, &out_warm);

    // TN: A stored [k, m] row-major, read transposed: A(i,p) = a[p*m + i].
    let a_t = dense(k * m, 3);
    naive_gemm(m, n, k, &a_t, 1, m, &b, n, 1, &mut out_naive);
    gemm_packed(m, n, k, &a_t, 1, m, &b, n, 1, &mut out_packed, &mut scratch);
    assert_bits_eq(&out_naive, &out_packed);

    // NT: B stored [n, k] row-major, read transposed: B(p,j) = b[j*k + p].
    let b_t = dense(n * k, 4);
    naive_gemm(m, n, k, &a, k, 1, &b_t, 1, k, &mut out_naive);
    gemm_packed(m, n, k, &a, k, 1, &b_t, 1, k, &mut out_packed, &mut scratch);
    assert_bits_eq(&out_naive, &out_packed);
}

/// Batched unfolding must be column-block concatenation of per-item
/// im2col for the given geometry. Returns without checking when the
/// kernel does not fit the padded input.
#[allow(clippy::too_many_arguments)]
fn check_batched_im2col(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
) {
    if kh > h + 2 * padding || kw > w + 2 * padding {
        return;
    }
    let spec = ConvSpec::new(stride, padding);
    let item_len = c * h * w;
    let x = Tensor::from_vec(dense(n * item_len, 9), &[n, c, h, w]).unwrap();
    let batched = im2col_batched(&x, kh, kw, spec).unwrap();
    let rows = batched.shape()[0];
    let cols = batched.shape()[1];
    assert_eq!(rows, c * kh * kw);
    assert_eq!(cols % n, 0);
    let s = cols / n;
    for ni in 0..n {
        let item = Tensor::from_vec(
            x.as_slice()[ni * item_len..(ni + 1) * item_len].to_vec(),
            &[c, h, w],
        )
        .unwrap();
        let single = im2col(&item, kh, kw, spec).unwrap();
        assert_eq!(single.shape(), &[rows, s]);
        for r in 0..rows {
            let batched_row = &batched.as_slice()[r * cols + ni * s..r * cols + (ni + 1) * s];
            let single_row = &single.as_slice()[r * s..(r + 1) * s];
            assert_bits_eq(single_row, batched_row);
        }
    }
}

/// Deterministic sweep over every tile-remainder edge in m and n, with k
/// covering both small shapes and the KC cache-block straddle.
#[test]
fn packed_matches_naive_at_tile_edges_sweep() {
    let m_edges = [1, MR - 1, MR, MR + 1, 2 * MR - 1, 2 * MR, 2 * MR + 1];
    let n_edges = [1, NR - 1, NR, NR + 1, 2 * NR - 1, 2 * NR, 2 * NR + 1];
    for &m in &m_edges {
        for &n in &n_edges {
            for k in [1, 3, MR, 24] {
                check_gemm_all_layouts(m, n, k);
            }
        }
    }
    // KC straddle at one representative remainder shape.
    for k in [KC - 1, KC, KC + 1] {
        check_gemm_all_layouts(MR + 1, NR + 1, k);
    }
}

/// Forced-ISA matrix: under every ISA available on this host (scalar
/// included), the packed GEMM must reproduce the naive triple loop
/// byte-for-byte in all three stride layouts. `naive_gemm` never
/// dispatches, so each pass proves one vector arm against the scalar
/// reference directly. Shapes pin the tail edges: partial MR/NR tiles,
/// k not a multiple of any vector lane width (7, 9, 33), and the KC
/// cache-block straddle.
#[test]
fn forced_isa_matrix_gemm_matches_naive_at_tile_edges() {
    let _lock = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IsaGuard;
    for isa in Isa::ALL {
        if !isa.is_available() {
            continue;
        }
        assert_eq!(dispatch::force_isa(Some(isa)), isa);
        for (m, n, k) in [
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 1, 7),
            (2 * MR + 1, 2 * NR - 1, 9),
            (MR - 1, 2 * NR + 1, 33),
            (MR, NR, KC + 1),
        ] {
            check_gemm_all_layouts(m, n, k);
        }
    }
}

/// Deterministic sweep over kernel/stride/padding combinations, including
/// stride > 1 and padding > 0.
#[test]
fn batched_im2col_matches_per_item_sweep() {
    for kh in 1..=3 {
        for kw in 1..=3 {
            for stride in 1..=2 {
                for padding in 0..=2 {
                    check_batched_im2col(3, 2, 5, 6, kh, kw, stride, padding);
                }
            }
        }
    }
    // Single-item and single-channel degenerate batches.
    check_batched_im2col(1, 1, 4, 4, 2, 2, 2, 1);
    check_batched_im2col(2, 3, 3, 3, 3, 3, 1, 0);
}

proptest! {
    /// Random exploration of the same GEMM space the sweep covers.
    #[test]
    fn packed_matches_naive(m in tile_edge_dim(MR), n in tile_edge_dim(NR), k in k_dim()) {
        check_gemm_all_layouts(m, n, k);
    }

    /// Random conv geometries, stride 1..2 and padding 0..2 inclusive.
    #[test]
    fn batched_im2col_matches_per_item(
        n in 1usize..4,
        c in 1usize..4,
        h in 3usize..8,
        w in 3usize..8,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
    ) {
        check_batched_im2col(n, c, h, w, kh, kw, stride, padding);
    }
}
