//! Property-based laws for the packed low-bit integer kernels: bitplane and
//! nibble pack→unpack round trips, and the popcount / nibble-MAC dots
//! against the scalar `i32`-code reference. Every assertion is exact
//! integer equality — the packed path's contract is "the same Σ w·a the
//! wide path computes", not an approximation.
//!
//! Each property has a pinned plain-test companion sweeping the word-edge
//! lengths deterministically (7/8/9, 63/64/65, 255/256/257 — the byte,
//! word, and 4-word/256-lane seams), so the laws stay exercised even where
//! the proptest runner is unavailable.

use cbq_tensor::dispatch::{self, Isa};
use cbq_tensor::kernels::{
    nibble_dot_i8, pack_bitplanes, pack_nibbles, plane_words, scalar_code_dot, sign_plane_dot,
    unpack_bitplanes, unpack_nibbles, xnor_popcount_dot,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that force the process-global dispatch ISA. Other
/// tests in this binary may observe a forced ISA while one of these runs;
/// that is benign — every arm is byte-equal, which is exactly what this
/// matrix proves.
static ISA_LOCK: Mutex<()> = Mutex::new(());

/// Restores automatic ISA detection when dropped, panic included.
struct IsaGuard;

impl Drop for IsaGuard {
    fn drop(&mut self) {
        dispatch::force_isa(None);
    }
}

/// Lengths around the packing seams: 8 (nibble byte pair), 64 (plane
/// word), 256 (MAC tile multiples), each ±1, plus the degenerate 1.
const EDGE_LENS: [usize; 10] = [1, 7, 8, 9, 63, 64, 65, 255, 256, 257];

/// Deterministic code fill in `0..2^bits` that hits both all-zero and
/// all-ones patterns along the way.
fn codes_fill(len: usize, bits: u32, seed: u64) -> Vec<i32> {
    let mask = (1i64 << bits) - 1;
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
            ((x >> 29) as i64 & mask) as i32
        })
        .collect()
}

fn check_bitplane_round_trip(codes: &[i32], bits: u32) {
    let mut planes = vec![u64::MAX; bits as usize * plane_words(codes.len())];
    pack_bitplanes(codes, bits, &mut planes);
    let mut back = vec![-1i32; codes.len()];
    unpack_bitplanes(&planes, bits, codes.len(), &mut back);
    assert_eq!(back, codes, "bitplane round trip, bits={bits}");
    // Padding lanes beyond len must be zero in every plane so whole-word
    // popcounts are exact.
    let w = plane_words(codes.len());
    let tail_bits = codes.len() % 64;
    if tail_bits != 0 {
        let pad_mask = !0u64 << tail_bits;
        for q in 0..bits as usize {
            assert_eq!(
                planes[q * w + w - 1] & pad_mask,
                0,
                "dirty padding, plane {q}"
            );
        }
    }
}

fn check_nibble_round_trip(levels: &[i32]) {
    let mut packed = vec![0xFFu8; levels.len().div_ceil(2)];
    pack_nibbles(levels, &mut packed);
    let mut back = vec![-1i32; levels.len()];
    unpack_nibbles(&packed, levels.len(), &mut back);
    assert_eq!(back, levels, "nibble round trip");
}

/// Signs as ±1 codes → (sign plane, live mask plane) pair.
fn sign_plane(signs: &[i32]) -> Vec<u64> {
    let levels: Vec<i32> = signs.iter().map(|&c| i32::from(c == 1)).collect();
    let mut plane = vec![0u64; plane_words(signs.len())];
    pack_bitplanes(&levels, 1, &mut plane);
    plane
}

fn check_xnor_dot(w: &[i32], x: &[i32]) {
    let live = sign_plane(&vec![1i32; w.len()]);
    let got = xnor_popcount_dot(&sign_plane(w), &sign_plane(x), &live);
    assert_eq!(got, scalar_code_dot(w, x), "xnor dot, len={}", w.len());
}

fn check_sign_plane_dot(w_signs: &[i32], acts: &[i32], act_bits: u32) {
    let mut planes = vec![0u64; act_bits as usize * plane_words(acts.len())];
    pack_bitplanes(acts, act_bits, &mut planes);
    let code_sum: i64 = acts.iter().map(|&a| a as i64).sum();
    let got = sign_plane_dot(&sign_plane(w_signs), &planes, act_bits, code_sum);
    assert_eq!(
        got,
        scalar_code_dot(w_signs, acts),
        "sign-plane dot, bits={act_bits} len={}",
        acts.len()
    );
}

fn check_nibble_dot(levels: &[i32], acts: &[i32], wbits: u32) {
    let n_minus_1 = (1i32 << wbits) - 1;
    let mut packed = vec![0u8; levels.len().div_ceil(2)];
    pack_nibbles(levels, &mut packed);
    let codes: Vec<i32> = levels.iter().map(|&k| 2 * k - n_minus_1).collect();
    assert_eq!(
        nibble_dot_i8(&packed, n_minus_1, acts),
        scalar_code_dot(&codes, acts),
        "nibble MAC, wbits={wbits} len={}",
        levels.len()
    );
}

// --- pinned deterministic companions (always run) ---

#[test]
fn pinned_bitplane_round_trip_edge_lengths() {
    for bits in 1..=8u32 {
        for &len in &EDGE_LENS {
            check_bitplane_round_trip(&codes_fill(len, bits, 1000 + bits as u64), bits);
        }
    }
}

#[test]
fn pinned_nibble_round_trip_edge_lengths() {
    for &len in &EDGE_LENS {
        check_nibble_round_trip(&codes_fill(len, 4, 2000 + len as u64));
    }
}

#[test]
fn pinned_xnor_dot_edge_lengths() {
    for &len in &EDGE_LENS {
        let w: Vec<i32> = codes_fill(len, 1, 31).iter().map(|&b| 2 * b - 1).collect();
        let x: Vec<i32> = codes_fill(len, 1, 37).iter().map(|&b| 2 * b - 1).collect();
        check_xnor_dot(&w, &x);
    }
}

#[test]
fn pinned_sign_plane_dot_edge_lengths_all_act_bits() {
    for act_bits in 1..=8u32 {
        for &len in &EDGE_LENS {
            let w: Vec<i32> = codes_fill(len, 1, 41).iter().map(|&b| 2 * b - 1).collect();
            let acts = codes_fill(len, act_bits, 43 + act_bits as u64);
            check_sign_plane_dot(&w, &acts, act_bits);
        }
    }
}

#[test]
fn pinned_nibble_dot_edge_lengths_all_weight_bits() {
    for wbits in 2..=4u32 {
        for &len in &EDGE_LENS {
            let levels = codes_fill(len, wbits, 47 + wbits as u64);
            let acts = codes_fill(len, 8, 53 + len as u64);
            check_nibble_dot(&levels, &acts, wbits);
        }
    }
}

#[test]
fn pinned_extreme_patterns() {
    // All-zero and all-max codes at a straddling length: packing must not
    // leak between lanes and the dots must stay exact at the range edges.
    for bits in 1..=4u32 {
        let max = (1i32 << bits) - 1;
        check_bitplane_round_trip(&vec![0i32; 65], bits);
        check_bitplane_round_trip(&vec![max; 65], bits);
    }
    check_nibble_dot(&vec![0i32; 65], &vec![255i32; 65], 4);
    check_nibble_dot(&vec![15i32; 65], &vec![255i32; 65], 4);
    check_sign_plane_dot(&vec![-1i32; 65], &vec![255i32; 65], 8);
    check_sign_plane_dot(&vec![1i32; 65], &vec![0i32; 65], 8);
}

// --- forced-ISA differential matrix ---

/// Every vector ISA available on this host must return the identical
/// `i64` the forced-scalar arm returns for all three integer dot kernels,
/// at every packing seam plus the `MAC_BLOCK` (8192) accumulator-block
/// straddle and a two-block length. Unavailable ISAs are skipped — the
/// dispatch layer refuses to force them (`force_isa` clamps to scalar).
#[test]
fn forced_isa_matrix_dots_bit_identical_to_scalar() {
    const LENS: [usize; 13] = [1, 7, 9, 15, 17, 63, 64, 65, 257, 8191, 8192, 8193, 16385];
    let _lock = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IsaGuard;
    for &len in &LENS {
        let w_signs: Vec<i32> = codes_fill(len, 1, 71).iter().map(|&b| 2 * b - 1).collect();
        let x_signs: Vec<i32> = codes_fill(len, 1, 73).iter().map(|&b| 2 * b - 1).collect();
        let wplane = sign_plane(&w_signs);
        let xplane = sign_plane(&x_signs);
        let live = sign_plane(&vec![1i32; len]);
        let acts4 = codes_fill(len, 4, 79);
        let mut planes = vec![0u64; 4 * plane_words(len)];
        pack_bitplanes(&acts4, 4, &mut planes);
        let act_sum: i64 = acts4.iter().map(|&a| i64::from(a)).sum();
        let levels = codes_fill(len, 4, 83);
        let mut packed = vec![0u8; len.div_ceil(2)];
        pack_nibbles(&levels, &mut packed);
        let acts8 = codes_fill(len, 8, 89);

        assert_eq!(dispatch::force_isa(Some(Isa::Scalar)), Isa::Scalar);
        let ref_xnor = xnor_popcount_dot(&wplane, &xplane, &live);
        let ref_sign = sign_plane_dot(&wplane, &planes, 4, act_sum);
        let ref_nib = nibble_dot_i8(&packed, 15, &acts8);

        for isa in Isa::ALL {
            if isa == Isa::Scalar || !isa.is_available() {
                continue;
            }
            assert_eq!(dispatch::force_isa(Some(isa)), isa);
            let name = isa.name();
            assert_eq!(
                xnor_popcount_dot(&wplane, &xplane, &live),
                ref_xnor,
                "xnor dot, isa={name} len={len}"
            );
            assert_eq!(
                sign_plane_dot(&wplane, &planes, 4, act_sum),
                ref_sign,
                "sign-plane dot, isa={name} len={len}"
            );
            assert_eq!(
                nibble_dot_i8(&packed, 15, &acts8),
                ref_nib,
                "nibble MAC, isa={name} len={len}"
            );
        }
    }
}

/// Forcing an unavailable ISA clamps to scalar instead of executing
/// illegal instructions — the property that makes the CI forced-ISA
/// matrix safe on any runner.
#[test]
fn forcing_unavailable_isa_clamps_to_scalar() {
    let _lock = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IsaGuard;
    for isa in Isa::ALL {
        let got = dispatch::force_isa(Some(isa));
        if isa.is_available() {
            assert_eq!(got, isa);
        } else {
            assert_eq!(got, Isa::Scalar, "unavailable {} must clamp", isa.name());
        }
        // The clamped ISA must still produce correct results end to end.
        let w: Vec<i32> = codes_fill(65, 1, 91).iter().map(|&b| 2 * b - 1).collect();
        let acts = codes_fill(65, 8, 93);
        check_sign_plane_dot(&w, &acts, 8);
    }
}

// --- randomized exploration with shrinking ---

fn edge_len() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=10, 61usize..=68, 253usize..=260,]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_bitplane_round_trip(
        (len, bits) in (edge_len(), 1u32..=8),
        seed in any::<u64>(),
    ) {
        check_bitplane_round_trip(&codes_fill(len, bits, seed), bits);
    }

    #[test]
    fn prop_nibble_round_trip(len in edge_len(), seed in any::<u64>()) {
        check_nibble_round_trip(&codes_fill(len, 4, seed));
    }

    #[test]
    fn prop_xnor_dot_matches_scalar(len in edge_len(), seed in any::<u64>()) {
        let w: Vec<i32> = codes_fill(len, 1, seed).iter().map(|&b| 2 * b - 1).collect();
        let x: Vec<i32> = codes_fill(len, 1, !seed).iter().map(|&b| 2 * b - 1).collect();
        check_xnor_dot(&w, &x);
    }

    #[test]
    fn prop_sign_plane_dot_matches_scalar(
        len in edge_len(),
        act_bits in 1u32..=8,
        acts_seed in any::<u64>(),
        w_seed in any::<u64>(),
    ) {
        let w: Vec<i32> = codes_fill(len, 1, w_seed).iter().map(|&b| 2 * b - 1).collect();
        let acts = codes_fill(len, act_bits, acts_seed);
        check_sign_plane_dot(&w, &acts, act_bits);
    }

    #[test]
    fn prop_nibble_dot_matches_scalar(
        len in edge_len(),
        wbits in 2u32..=4,
        seed in any::<u64>(),
    ) {
        let levels = codes_fill(len, wbits, seed);
        let acts = codes_fill(len, 8, seed.rotate_left(17));
        check_nibble_dot(&levels, &acts, wbits);
    }

    #[test]
    fn prop_arbitrary_level_vectors_round_trip(levels in pvec(0i32..16, 0..300)) {
        check_nibble_round_trip(&levels);
    }
}
