//! 64-byte-aligned heap allocations for vector loads.
//!
//! The SIMD kernel arms stream f32/i32/u64 buffers with 256/512-bit loads,
//! and the [`crate::scratch::Scratch`] arena promises the buffers it hands
//! out start on a 64-byte boundary (one cache line, the widest vector
//! register). `Vec<T>`'s own allocation only guarantees `align_of::<T>()`,
//! and a `Vec` cannot soundly be built over a differently-aligned raw
//! allocation — `Vec`'s destructor deallocates with `T`'s alignment, and the
//! allocator contract requires dealloc to see the same layout as alloc.
//!
//! So the alignment is provided one level down: a global allocator that
//! *promotes* every allocation of [`PROMOTED_SIZE`] bytes or more to
//! [`PROMOTED_ALIGN`]. The promotion is a pure function of the requested
//! layout, so alloc and dealloc always agree on the promoted layout and the
//! contract holds. Small allocations (under one cache line) pass through
//! untouched; `realloc` across the promotion threshold moves the block
//! manually so both sides of the move see their own consistent layout.
//!
//! The arena completes the picture by rounding its buffer capacities up to
//! at least one promoted allocation, making every pooled buffer 64-byte
//! aligned by construction.

use std::alloc::{GlobalAlloc, Layout, System};

/// Alignment promoted allocations receive: one cache line, and enough for a
/// 512-bit vector load.
pub const PROMOTED_ALIGN: usize = 64;

/// Minimum allocation size (bytes) that gets promoted. Below this the
/// request passes through unchanged, so tiny allocations keep their natural
/// layout and cost.
pub const PROMOTED_SIZE: usize = 64;

/// Promotes `layout` to [`PROMOTED_ALIGN`] when it is large enough and not
/// already at least that aligned. Pure in `layout`, so every call for the
/// same layout yields the same answer — the soundness hinge.
#[inline]
fn promote(layout: Layout) -> Layout {
    if layout.size() >= PROMOTED_SIZE && layout.align() < PROMOTED_ALIGN {
        // Size is unchanged and already >= the new align's floor, so this
        // cannot fail for any layout the allocator accepted.
        Layout::from_size_align(layout.size(), PROMOTED_ALIGN).expect("promoted layout")
    } else {
        layout
    }
}

/// The promoting allocator wrapped around [`System`].
pub struct Align64Alloc;

// SAFETY: every path delegates to `System` with `promote(layout)`, and
// `promote` is deterministic, so a block allocated with a promoted layout is
// always deallocated with the identical promoted layout. `realloc` only
// delegates to `System::realloc` when old and new promoted layouts share an
// alignment; otherwise it moves the block with a fresh alloc/copy/dealloc,
// keeping each block's alloc/dealloc layouts paired.
unsafe impl GlobalAlloc for Align64Alloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(promote(layout))
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        System.alloc_zeroed(promote(layout))
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, promote(layout))
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let old = promote(layout);
        let Ok(requested) = Layout::from_size_align(new_size, layout.align()) else {
            return std::ptr::null_mut();
        };
        let new = promote(requested);
        if old.align() == new.align() {
            System.realloc(ptr, old, new_size)
        } else {
            // Growing past (or shrinking under) the promotion threshold
            // changes the alignment class: move manually so the old block is
            // freed with its alloc layout and the new one starts clean.
            let fresh = System.alloc(new);
            if !fresh.is_null() {
                std::ptr::copy_nonoverlapping(ptr, fresh, layout.size().min(new_size));
                System.dealloc(ptr, old);
            }
            fresh
        }
    }
}

/// Installed for every binary that links `cbq-tensor` — the whole workspace.
#[global_allocator]
static GLOBAL: Align64Alloc = Align64Alloc;

/// Whether `ptr` sits on a [`PROMOTED_ALIGN`] boundary — the check the
/// scratch arena and its tests use.
pub fn is_aligned_64<T>(ptr: *const T) -> bool {
    (ptr as usize).is_multiple_of(PROMOTED_ALIGN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_vecs_are_64_byte_aligned() {
        for len in [16usize, 17, 100, 1024, 100_000] {
            let v = vec![0.0f32; len];
            assert!(is_aligned_64(v.as_ptr()), "f32 len={len}");
            let v = vec![0u64; len];
            assert!(is_aligned_64(v.as_ptr()), "u64 len={len}");
            let v = vec![0u8; len.max(PROMOTED_SIZE)];
            assert!(is_aligned_64(v.as_ptr()), "u8 len={len}");
        }
    }

    #[test]
    fn growth_across_the_promotion_threshold_preserves_contents() {
        let mut v: Vec<u8> = Vec::with_capacity(8);
        for i in 0..200u8 {
            v.push(i);
        }
        assert!(is_aligned_64(v.as_ptr()), "grown past one cache line");
        assert!(v.iter().enumerate().all(|(i, &b)| b == i as u8));
        v.truncate(4);
        v.shrink_to_fit();
        assert_eq!(v, &[0, 1, 2, 3]);
    }

    #[test]
    fn boxed_slices_and_strings_round_trip() {
        let b: Box<[f32]> = vec![1.0f32; 64].into_boxed_slice();
        assert!(is_aligned_64(b.as_ptr()));
        let s = "x".repeat(500);
        assert_eq!(s.len(), 500);
        drop(s);
        drop(b);
    }
}
