//! Minimal data-parallel helpers built on [`std::thread::scope`].
//!
//! The CBQ stack parallelizes over batch items and output channels; both
//! patterns reduce to "split a disjoint output buffer into chunks and let
//! one thread fill each chunk", which scoped threads express safely without
//! any external dependency.
//!
//! Determinism is a first-class constraint: every helper here either
//! performs order-independent work (disjoint writes, integer sums) or
//! fixes the reduction order explicitly ([`fixed_order_reduce`]), so the
//! same inputs produce bit-identical outputs at any worker count.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`parallel_chunks_mut`] and
/// [`parallel_for`].
///
/// Defaults to the machine's available parallelism capped at 8 — the
/// kernels here stop scaling much beyond that on typical laptop-class
/// hardware, and an uncapped default would oversubscribe shared CI
/// runners. Larger machines opt in by setting the `CBQ_MAX_THREADS`
/// environment variable to a positive integer, which replaces the cap
/// (`CBQ_MAX_THREADS=32` allows up to 32 workers; available parallelism
/// still bounds the result).
pub fn worker_count() -> usize {
    let cap = std::env::var("CBQ_MAX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8);
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cap)
}

/// How many worker threads a pipeline phase may use.
///
/// `threads == 1` forces the serial path; anything larger allows that many
/// concurrent workers. Because every parallel reduction in the stack is
/// fixed-order (see [`fixed_order_reduce`]) or order-independent (integer
/// pathway counts), the thread count only changes wall-clock time — results
/// are bit-identical at any setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one worker: the serial reference path.
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// One worker per core, honoring the [`worker_count`] cap.
    pub fn auto() -> Self {
        Parallelism {
            threads: worker_count(),
        }
    }

    /// A fixed worker budget; `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// The worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this configuration forces the serial path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Splits `out` into `chunk` sized pieces and applies `f(chunk_index, piece)`
/// to each, in parallel.
///
/// `chunk` is the number of *elements* per logical work item; consecutive
/// work items are grouped so every thread handles a contiguous range. Falls
/// back to a sequential loop for small inputs where thread spawn overhead
/// would dominate.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `out.len()`.
pub fn parallel_chunks_mut<F>(out: &mut [f32], chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(
        out.len() % chunk,
        0,
        "chunk size must divide the buffer length"
    );
    let items = out.len() / chunk;
    let workers = worker_count();
    if workers <= 1 || items <= 1 || out.len() < 4096 {
        for (i, piece) in out.chunks_mut(chunk).enumerate() {
            f(i, piece);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    // Hand out work items through an atomic counter so uneven item costs
    // (e.g. first conv layer vs last) still balance across threads.
    let ptr = out.as_mut_ptr() as usize;
    std::thread::scope(|s| {
        for _ in 0..workers.min(items) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                // SAFETY: each item index is claimed exactly once, and items
                // map to disjoint, in-bounds sub-slices of `out`.
                let piece = unsafe {
                    std::slice::from_raw_parts_mut((ptr as *mut f32).add(i * chunk), chunk)
                };
                f(i, piece);
            });
        }
    });
}

/// Runs `f(i)` for every `i` in `0..n`, in parallel, for side-effect-free
/// accumulation into thread-local state exposed through `f`'s captures
/// (e.g. atomics or per-index disjoint outputs managed by the caller).
///
/// Small `n` runs sequentially.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count();
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Maps `f` over `0..n`, giving each worker exclusive, reusable state.
///
/// `states` supplies one pre-built state per worker (e.g. a cloned model);
/// its length is the worker budget. Tasks are handed out through an atomic
/// counter, each worker threads its own `&mut S` through every task it
/// claims, and results land at their task index, so the output order is
/// `0..n` regardless of scheduling. A single state (or `n <= 1`) runs the
/// loop inline on the calling thread.
///
/// Determinism contract: `f`'s result for task `i` must not depend on the
/// worker state's history (model clones qualify — forward/backward caches
/// are overwritten per call). Under that contract the output vector is
/// identical for any `states.len()`.
pub fn parallel_map_with<S, T, F>(mut states: Vec<S>, n: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
{
    assert!(!states.is_empty(), "parallel_map_with needs >= 1 state");
    if states.len() == 1 || n <= 1 {
        let state = &mut states[0];
        return (0..n).map(|i| f(state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = states
            .drain(..)
            .map(|mut state| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("parallel_map_with worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every task index claimed exactly once"))
        .collect()
}

/// Runs `f(i, &mut states[i])` for every slot `i`, with slot-to-state
/// pairing that never depends on the worker budget.
///
/// Unlike [`parallel_map_with`] — where any worker may claim any task —
/// slot `i` always executes against state `i`. That is the contract the
/// trainer's sharded gradient accumulation needs: each gradient shard owns
/// a persistent model clone whose internal history (dropout RNG stream,
/// batch-norm running statistics) must evolve as a function of the shard
/// index alone, so changing `workers` cannot change any result.
///
/// `workers` threads each process a contiguous block of slots; `workers
/// <= 1` (or a single slot) runs inline. Results are ordered by slot.
pub fn parallel_slots<S, T, F>(states: &mut [S], workers: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = states.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let f = &f;
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut state_rest = &mut states[..];
        let mut out_rest = &mut out[..];
        let mut start = 0usize;
        for t in 0..workers {
            let end = (t + 1) * n / workers;
            let take = end - start;
            let (state_chunk, state_tail) = state_rest.split_at_mut(take);
            let (out_chunk, out_tail) = out_rest.split_at_mut(take);
            state_rest = state_tail;
            out_rest = out_tail;
            let base = start;
            scope.spawn(move || {
                for (j, (state, slot)) in state_chunk.iter_mut().zip(out_chunk).enumerate() {
                    *slot = Some(f(base + j, state));
                }
            });
            start = end;
        }
    });
    out.into_iter()
        .map(|v| v.expect("every slot executed exactly once"))
        .collect()
}

/// Sums equal-length shard vectors into `out` in a fixed reduction order,
/// bit-identical to the serial fold at any worker count.
///
/// Element `e` of the result is the left-to-right fold
/// `((parts[0][e] + parts[1][e]) + parts[2][e]) + …` — the reduction tree
/// is fixed by shard *index*, never by completion order, so float
/// non-associativity cannot leak scheduling into the result. Parallelism
/// runs across elements (each element's chain is independent), which is
/// why the output cannot depend on how many threads executed it.
///
/// # Panics
///
/// Panics if any shard's length differs from `out.len()`.
pub fn fixed_order_reduce(parts: &[&[f32]], out: &mut [f32]) {
    for (k, p) in parts.iter().enumerate() {
        assert_eq!(
            p.len(),
            out.len(),
            "shard {k} length {} != output length {}",
            p.len(),
            out.len()
        );
    }
    let len = out.len();
    if len == 0 {
        return;
    }
    // Pick the largest chunk <= 1024 that divides the buffer so
    // parallel_chunks_mut's divisibility contract holds for any length.
    let chunk = (1..=len.min(1024))
        .rev()
        .find(|c| len.is_multiple_of(*c))
        .unwrap_or(1);
    parallel_chunks_mut(out, chunk, |i, piece| {
        let base = i * chunk;
        for (j, slot) in piece.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in parts {
                acc += p[base + j];
            }
            *slot = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_all_items_once() {
        let mut buf = vec![0.0f32; 16 * 1024];
        parallel_chunks_mut(&mut buf, 1024, |i, piece| {
            for x in piece.iter_mut() {
                *x = i as f32 + 1.0;
            }
        });
        for (i, chunk) in buf.chunks(1024).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as f32 + 1.0));
        }
    }

    #[test]
    fn small_buffers_run_sequentially() {
        let mut buf = vec![0.0f32; 8];
        parallel_chunks_mut(&mut buf, 2, |i, piece| piece.fill(i as f32));
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn chunk_must_divide() {
        let mut buf = vec![0.0f32; 7];
        parallel_chunks_mut(&mut buf, 2, |_, _| {});
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let n = 1000;
        let sum = AtomicU64::new(0);
        parallel_for(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn worker_count_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parallelism_constructors() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(7).threads(), 7);
        assert!(Parallelism::auto().threads() >= 1);
        assert!(!Parallelism::new(4).is_serial());
    }

    #[test]
    fn map_with_orders_results_by_task_index() {
        for workers in [1usize, 2, 5] {
            let states = vec![0u64; workers];
            let got = parallel_map_with(states, 37, |state, i| {
                *state += 1; // worker-local history must not affect results
                i * i
            });
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn slots_pair_state_and_index_at_any_worker_count() {
        for workers in [1usize, 2, 3, 8] {
            let mut states: Vec<u64> = (0..5).map(|i| 100 * i as u64).collect();
            let got = parallel_slots(&mut states, workers, |i, state| {
                *state += 1; // mutates its own slot only
                (i as u64, *state)
            });
            let want: Vec<(u64, u64)> = (0..5).map(|i| (i, 100 * i + 1)).collect();
            assert_eq!(got, want, "workers={workers}");
            // state history stays with the slot regardless of worker budget
            let after: Vec<u64> = (0..5).map(|i| 100 * i + 1).collect();
            assert_eq!(states, after, "workers={workers}");
        }
    }

    #[test]
    fn fixed_order_reduce_matches_serial_fold() {
        let a: Vec<f32> = (0..5000).map(|i| (i as f32).sin() * 1e-3).collect();
        let b: Vec<f32> = (0..5000).map(|i| (i as f32).cos() * 7.0).collect();
        let c: Vec<f32> = (0..5000).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let mut out = vec![9.9f32; 5000];
        fixed_order_reduce(&[&a, &b, &c], &mut out);
        for i in 0..5000 {
            let serial = (a[i] + b[i]) + c[i];
            assert_eq!(out[i].to_bits(), serial.to_bits(), "element {i}");
        }
    }

    #[test]
    fn fixed_order_reduce_empty_parts_zeroes_output() {
        let mut out = vec![3.0f32; 10];
        fixed_order_reduce(&[], &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn fixed_order_reduce_rejects_ragged_shards() {
        let mut out = vec![0.0f32; 4];
        let short = vec![0.0f32; 3];
        fixed_order_reduce(&[&short], &mut out);
    }
}
