//! Minimal data-parallel helpers built on [`std::thread::scope`].
//!
//! The CBQ stack parallelizes over batch items and output channels; both
//! patterns reduce to "split a disjoint output buffer into chunks and let
//! one thread fill each chunk", which scoped threads express safely without
//! any external dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`parallel_chunks_mut`] and
/// [`parallel_for`]. Defaults to the machine's available parallelism,
/// capped at 8 (the kernels here stop scaling beyond that on typical
/// laptop-class hardware).
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits `out` into `chunk` sized pieces and applies `f(chunk_index, piece)`
/// to each, in parallel.
///
/// `chunk` is the number of *elements* per logical work item; consecutive
/// work items are grouped so every thread handles a contiguous range. Falls
/// back to a sequential loop for small inputs where thread spawn overhead
/// would dominate.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `out.len()`.
pub fn parallel_chunks_mut<F>(out: &mut [f32], chunk: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    assert_eq!(
        out.len() % chunk,
        0,
        "chunk size must divide the buffer length"
    );
    let items = out.len() / chunk;
    let workers = worker_count();
    if workers <= 1 || items <= 1 || out.len() < 4096 {
        for (i, piece) in out.chunks_mut(chunk).enumerate() {
            f(i, piece);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    // Hand out work items through an atomic counter so uneven item costs
    // (e.g. first conv layer vs last) still balance across threads.
    let ptr = out.as_mut_ptr() as usize;
    std::thread::scope(|s| {
        for _ in 0..workers.min(items) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                // SAFETY: each item index is claimed exactly once, and items
                // map to disjoint, in-bounds sub-slices of `out`.
                let piece = unsafe {
                    std::slice::from_raw_parts_mut((ptr as *mut f32).add(i * chunk), chunk)
                };
                f(i, piece);
            });
        }
    });
}

/// Runs `f(i)` for every `i` in `0..n`, in parallel, for side-effect-free
/// accumulation into thread-local state exposed through `f`'s captures
/// (e.g. atomics or per-index disjoint outputs managed by the caller).
///
/// Small `n` runs sequentially.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count();
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_all_items_once() {
        let mut buf = vec![0.0f32; 16 * 1024];
        parallel_chunks_mut(&mut buf, 1024, |i, piece| {
            for x in piece.iter_mut() {
                *x = i as f32 + 1.0;
            }
        });
        for (i, chunk) in buf.chunks(1024).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as f32 + 1.0));
        }
    }

    #[test]
    fn small_buffers_run_sequentially() {
        let mut buf = vec![0.0f32; 8];
        parallel_chunks_mut(&mut buf, 2, |i, piece| piece.fill(i as f32));
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn chunk_must_divide() {
        let mut buf = vec![0.0f32; 7];
        parallel_chunks_mut(&mut buf, 2, |_, _| {});
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let n = 1000;
        let sum = AtomicU64::new(0);
        parallel_for(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn worker_count_positive() {
        assert!(worker_count() >= 1);
    }
}
