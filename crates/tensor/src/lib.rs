#![warn(missing_docs)]

//! Dense `f32` tensor library for the CBQ workspace.
//!
//! This crate is the numerical substrate under the class-based quantization
//! pipeline: a contiguous, row-major n-dimensional tensor with the operations
//! a small CNN training stack needs — elementwise arithmetic, matrix
//! multiplication, im2col convolution (forward and backward), pooling, and
//! reductions. It is deliberately simple: no views, no lazy evaluation, no
//! broadcasting beyond scalar and per-channel forms, which keeps gradient
//! code easy to audit against finite differences.
//!
//! # Example
//!
//! ```
//! use cbq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.as_slice()[0], 3.0);
//! # Ok::<(), cbq_tensor::TensorError>(())
//! ```

pub mod alloc64;
mod conv;
pub mod dispatch;
mod error;
pub mod kernels;
mod matmul;
mod ops;
pub mod parallel;
mod pool;
pub mod scratch;
mod shape;
mod tensor;

pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_backward_into, conv2d_into, im2col, im2col_batched,
    im2col_batched_into, Conv2dGrads, ConvSpec,
};
pub use dispatch::{Isa, NumericsMode};
pub use error::TensorError;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolIndices, PoolSpec,
};
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
