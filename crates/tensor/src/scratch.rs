//! Reusable buffer arena for the zero-allocation forward path.
//!
//! Steady-state search probes run the same network shape over and over; the
//! only thing that changes between probes is the data inside the buffers.
//! [`Scratch`] recycles those buffers: `take_f32` hands out a zeroed vector,
//! preferring a pooled one whose capacity already fits, and `recycle_f32`
//! returns it to the pool once the caller is done. After one warmup pass the
//! pool holds every buffer size the workload needs and `take` never touches
//! the allocator again.
//!
//! Every pool miss (a take that had to allocate fresh backing store)
//! increments both a per-arena counter and a process-wide atomic counter —
//! the debug hook the `kernel_speedup` bench uses to prove the probe loop is
//! allocation-free after warmup. Small fixed-size allocations outside the
//! arena (tensor shape vectors, boxed weight transforms installed per probe)
//! are *not* counted; the arena tracks the O(batch·channels) data buffers
//! that dominate allocator traffic.
//!
//! Every non-empty buffer the arena hands out is **64-byte aligned** for the
//! SIMD kernel arms: fresh allocations round their capacity up to at least
//! one promoted allocation of [`crate::alloc64`] (which aligns every heap
//! block of 64+ bytes to a cache line), `take` only resizes within existing
//! capacity (never moving the storage), and `recycle` drops the rare
//! externally-allocated buffer that is too small to carry the guarantee.

use crate::alloc64::{is_aligned_64, PROMOTED_SIZE};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates a zero-filled `Vec` whose backing store is 64-byte aligned:
/// capacity is rounded up so the allocation reaches the promotion threshold
/// of [`crate::alloc64`]. Zero-length requests allocate nothing.
fn fresh_aligned<T: Clone + Default>(len: usize) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    let min_cap = PROMOTED_SIZE.div_ceil(std::mem::size_of::<T>());
    let mut buf = Vec::with_capacity(len.max(min_cap));
    buf.resize(len, T::default());
    debug_assert!(is_aligned_64(buf.as_ptr()));
    buf
}

/// Process-wide count of pool misses across every [`Scratch`] instance.
static GLOBAL_FRESH: AtomicU64 = AtomicU64::new(0);

/// Total number of pool misses (fresh heap allocations) recorded by all
/// [`Scratch`] arenas since process start or the last
/// [`reset_fresh_alloc_count`].
pub fn fresh_alloc_count() -> u64 {
    GLOBAL_FRESH.load(Ordering::Relaxed)
}

/// Resets the process-wide pool-miss counter. Benchmarks call this after
/// warmup so that a subsequent [`fresh_alloc_count`] reads steady-state
/// misses only.
pub fn reset_fresh_alloc_count() {
    GLOBAL_FRESH.store(0, Ordering::Relaxed);
}

/// A pool of recycled `f32`/`i32` buffers.
///
/// Not thread-safe by design: each worker slot owns its own arena (the same
/// ownership discipline as the model clones handed to `parallel_slots` /
/// `parallel_map_with`), so pooling never introduces cross-thread traffic or
/// scheduling-dependent behavior.
#[derive(Debug, Default)]
pub struct Scratch {
    f32_pool: Vec<Vec<f32>>,
    i32_pool: Vec<Vec<i32>>,
    u64_pool: Vec<Vec<u64>>,
    fresh: u64,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Returns a zero-filled buffer of exactly `len` elements, reusing the
    /// best-fitting pooled buffer (smallest capacity that fits) when one
    /// exists and allocating fresh backing store otherwise. Non-empty
    /// buffers are always 64-byte aligned (see the module docs).
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.f32_pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.f32_pool[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.f32_pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh += 1;
                GLOBAL_FRESH.fetch_add(1, Ordering::Relaxed);
                fresh_aligned(len)
            }
        }
    }

    /// Returns a buffer to the pool for later reuse. Buffers whose backing
    /// store is not 64-byte aligned (possible only for small vectors
    /// allocated outside the arena) are dropped instead of pooled, so every
    /// buffer a later `take` hands out keeps the alignment guarantee.
    pub fn recycle_f32(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && is_aligned_64(buf.as_ptr()) {
            self.f32_pool.push(buf);
        }
    }

    /// Takes a pooled buffer sized and filled from `src` — the common
    /// "stage a batch into the arena" step in evaluation and serving.
    pub fn take_f32_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.take_f32(src.len());
        buf.copy_from_slice(src);
        buf
    }

    /// Integer twin of [`Scratch::take_f32`], used by the integer inference
    /// pathway (`IntActivations` codes).
    pub fn take_i32(&mut self, len: usize) -> Vec<i32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.i32_pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.i32_pool[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.i32_pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.fresh += 1;
                GLOBAL_FRESH.fetch_add(1, Ordering::Relaxed);
                fresh_aligned(len)
            }
        }
    }

    /// Integer twin of [`Scratch::recycle_f32`], with the same alignment
    /// filter.
    pub fn recycle_i32(&mut self, buf: Vec<i32>) {
        if buf.capacity() > 0 && is_aligned_64(buf.as_ptr()) {
            self.i32_pool.push(buf);
        }
    }

    /// Bitplane twin of [`Scratch::take_f32`]: zero-filled `u64` words for
    /// the packed integer pathway's per-sample activation bitplanes.
    pub fn take_u64(&mut self, len: usize) -> Vec<u64> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.u64_pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.u64_pool[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.u64_pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.fresh += 1;
                GLOBAL_FRESH.fetch_add(1, Ordering::Relaxed);
                fresh_aligned(len)
            }
        }
    }

    /// Bitplane twin of [`Scratch::recycle_f32`], with the same alignment
    /// filter.
    pub fn recycle_u64(&mut self, buf: Vec<u64>) {
        if buf.capacity() > 0 && is_aligned_64(buf.as_ptr()) {
            self.u64_pool.push(buf);
        }
    }

    /// Pool misses recorded by this arena alone.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh
    }

    /// Number of buffers currently parked in the pools.
    pub fn pooled(&self) -> usize {
        self.f32_pool.len() + self.i32_pool.len() + self.u64_pool.len()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's shared arena.
///
/// The convenience `Tensor::matmul*` entry points use this for their pack
/// buffers so that even code outside the explicit scratch-threaded probe
/// path reuses packing storage across calls. `f` must not recursively call
/// `with_thread_scratch` (the arena is behind a `RefCell`); the kernels
/// below never do.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_reuse_hits_pool() {
        let mut s = Scratch::new();
        let mut a = s.take_f32(64);
        assert!(a.iter().all(|&x| x == 0.0));
        a.fill(7.0);
        s.recycle_f32(a);
        assert_eq!(s.fresh_allocs(), 1);
        let b = s.take_f32(32); // smaller request reuses the 64-cap buffer
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.len(), 32);
        assert_eq!(s.fresh_allocs(), 1, "reuse must not count as fresh");
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut s = Scratch::new();
        let big = s.take_f32(1024);
        let small = s.take_f32(16);
        s.recycle_f32(big);
        s.recycle_f32(small);
        let got = s.take_f32(10);
        assert!(got.capacity() < 1024, "should pick the 16-cap buffer");
        s.recycle_f32(got);
        let got = s.take_f32(512);
        assert!(got.capacity() >= 1024, "only the big buffer fits");
    }

    #[test]
    fn i32_pool_is_independent() {
        let mut s = Scratch::new();
        let a = s.take_i32(8);
        s.recycle_i32(a);
        let fresh_before = s.fresh_allocs();
        let b = s.take_i32(8);
        assert_eq!(s.fresh_allocs(), fresh_before);
        assert!(b.iter().all(|&x| x == 0));
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn u64_pool_recycles_and_zeroes() {
        let mut s = Scratch::new();
        let mut a = s.take_u64(9);
        a.fill(u64::MAX);
        s.recycle_u64(a);
        assert_eq!(s.fresh_allocs(), 1);
        let b = s.take_u64(4);
        assert_eq!(s.fresh_allocs(), 1, "reuse must not count as fresh");
        assert!(
            b.iter().all(|&x| x == 0),
            "recycled planes must come back zeroed"
        );
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn global_counter_tracks_misses() {
        // Other tests may bump the process-wide counter concurrently, so
        // assert on deltas and on this arena's private counter only.
        let before = fresh_alloc_count();
        let mut s = Scratch::new();
        let a = s.take_f32(128);
        s.recycle_f32(a);
        let _ = s.take_f32(128);
        assert!(fresh_alloc_count() > before);
        assert_eq!(s.fresh_allocs(), 1);
    }

    #[test]
    fn buffers_are_64_byte_aligned_through_take_and_recycle() {
        let mut s = Scratch::new();
        for len in [1usize, 3, 15, 16, 17, 63, 64, 65, 1000] {
            let f = s.take_f32(len);
            let i = s.take_i32(len);
            let u = s.take_u64(len);
            assert!(is_aligned_64(f.as_ptr()), "fresh f32 len={len}");
            assert!(is_aligned_64(i.as_ptr()), "fresh i32 len={len}");
            assert!(is_aligned_64(u.as_ptr()), "fresh u64 len={len}");
            s.recycle_f32(f);
            s.recycle_i32(i);
            s.recycle_u64(u);
        }
        // The pooled path must preserve the guarantee: resize-in-place never
        // moves the storage, so recycled buffers come back aligned.
        for len in [1usize, 17, 64, 1000] {
            let fresh_before = s.fresh_allocs();
            let f = s.take_f32(len);
            let u = s.take_u64(len);
            assert!(is_aligned_64(f.as_ptr()), "pooled f32 len={len}");
            assert!(is_aligned_64(u.as_ptr()), "pooled u64 len={len}");
            assert_eq!(s.fresh_allocs(), fresh_before, "reuse, not realloc");
            s.recycle_f32(f);
            s.recycle_u64(u);
        }
        // Externally allocated buffers only enter the pool if they carry the
        // guarantee themselves.
        let tiny: Vec<f32> = vec![1.0; 2];
        let aligned = is_aligned_64(tiny.as_ptr());
        let pooled_before = s.pooled();
        s.recycle_f32(tiny);
        assert_eq!(
            s.pooled(),
            pooled_before + usize::from(aligned),
            "misaligned external buffers must be dropped, aligned ones kept"
        );
    }

    #[test]
    fn zero_length_take_works() {
        let mut s = Scratch::new();
        let a = s.take_f32(0);
        assert!(a.is_empty());
        s.recycle_f32(a); // capacity 0 buffers are dropped, not pooled
        assert_eq!(s.pooled(), 0);
    }
}
