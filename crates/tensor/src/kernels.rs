//! Cache-blocked packed GEMM with a fixed k-accumulation order.
//!
//! Every dense hot path in the CBQ stack (`matmul`, `matmul_tn`,
//! `matmul_nt`, and the batched im2col convolutions) funnels into
//! [`gemm_packed`], a BLIS-style kernel:
//!
//! * The k dimension is blocked into chunks of [`KC`]. For each chunk, all
//!   of A's row panels and all of B's column panels are packed **serially**
//!   into contiguous tile-major scratch (`a_pack[tile][p][r]`,
//!   `b_pack[tile][p][c]`, edges zero-padded), then the output row tiles
//!   are computed — possibly in parallel, each tile writing a disjoint slice
//!   of C.
//! * The [`MR`]×[`NR`] micro-kernel keeps one `f32` accumulator per output
//!   element. It loads the current C tile, folds the chunk's k range in
//!   strictly ascending order, and stores the tile back. Because an `f32`
//!   store/load round-trip is exact, chaining chunks reproduces the single
//!   left-to-right fold `((0 + a·b)₀ + a·b)₁ + …` bit-for-bit — exactly the
//!   naive kernel's order.
//!
//! Determinism argument: the packing pass is serial, each output tile is
//! computed by exactly one worker from read-only packed panels, and the
//! k order inside a tile is fixed by construction. The worker count decides
//! only *which thread* computes a tile, never *what* it computes, so results
//! are bit-identical at any `CBQ_MAX_THREADS` — and bit-identical to
//! [`naive_gemm`], which is kept as the reference for the equivalence
//! proptests and the bench gate. Zero-padded pack lanes can produce
//! `0 · NaN = NaN` only in accumulator lanes that lie outside the matrix
//! and are discarded on store.

use crate::parallel::{parallel_for, worker_count};
use crate::scratch::Scratch;

/// Rows per register tile of the micro-kernel.
pub const MR: usize = 8;
/// Columns per register tile of the micro-kernel.
pub const NR: usize = 8;
/// k-dimension block size: one A panel chunk of `MR·KC` floats (8 KiB) plus
/// one B panel chunk stays resident in L1/L2 while a tile is computed.
pub const KC: usize = 256;

/// Below this many multiply-adds the kernel always runs on the calling
/// thread; the choice affects wall-clock only, never results.
const PARALLEL_FLOP_CUTOFF: usize = 1 << 15;

/// Reference kernel: the plain ijk triple loop over strided operands.
///
/// Element `(i, p)` of A is `a[i*a_rs + p*a_cs]` and element `(p, j)` of B
/// is `b[p*b_rs + j*b_cs]`, so the same routine serves all of NN / TN / NT
/// by stride choice. `out` is row-major `[m, n]` and is fully overwritten.
/// Kept (and exercised in CI) as the ground truth [`gemm_packed`] must match
/// bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Packs rows `0..m` of A for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*MR + p*MR + r]` holds `A[t*MR + r, k0 + p]`, zero for rows
/// past `m`.
fn pack_a(a: &[f32], a_rs: usize, a_cs: usize, m: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let row_tiles = m.div_ceil(MR);
    for t in 0..row_tiles {
        let i0 = t * MR;
        let rows = MR.min(m - i0);
        let base = t * kc * MR;
        for p in 0..kc {
            let dst = &mut pack[base + p * MR..base + p * MR + MR];
            for (r, slot) in dst.iter_mut().enumerate() {
                *slot = if r < rows {
                    a[(i0 + r) * a_rs + (k0 + p) * a_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs columns `0..n` of B for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*NR + p*NR + c]` holds `B[k0 + p, t*NR + c]`, zero for columns
/// past `n`.
fn pack_b(b: &[f32], b_rs: usize, b_cs: usize, n: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let col_tiles = n.div_ceil(NR);
    for t in 0..col_tiles {
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        let base = t * kc * NR;
        for p in 0..kc {
            let dst = &mut pack[base + p * NR..base + p * NR + NR];
            for (c, slot) in dst.iter_mut().enumerate() {
                *slot = if c < cols {
                    b[(k0 + p) * b_rs + (j0 + c) * b_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Computes one MR×NR output tile for one k chunk: loads the live C lanes,
/// folds `kc` steps in ascending order with one accumulator per element,
/// and stores the live lanes back.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    kc: usize,
    a_tile: &[f32],
    b_tile: &[f32],
    c_rows: &mut [f32],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate().take(rows) {
        let row = &c_rows[r * n + j0..r * n + j0 + cols];
        acc_row[..cols].copy_from_slice(row);
    }
    for p in 0..kc {
        let ab = &a_tile[p * MR..p * MR + MR];
        let bb = &b_tile[p * NR..p * NR + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ab[r];
            for (c, slot) in acc_row.iter_mut().enumerate() {
                // One mul, one add — Rust never contracts these into an FMA,
                // so the sequence matches the naive fold exactly.
                *slot += ar * bb[c];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let row = &mut c_rows[r * n + j0..r * n + j0 + cols];
        row.copy_from_slice(&acc_row[..cols]);
    }
}

/// Cache-blocked packed GEMM: `out[i, j] = Σ_p A[i, p] · B[p, j]` with the
/// strided-operand convention of [`naive_gemm`]. `out` is fully
/// overwritten. Pack buffers come from `scratch` and are recycled before
/// returning, so steady-state calls allocate nothing.
///
/// Bit-for-bit identical to [`naive_gemm`] for every input, at every worker
/// count — see the module docs for the argument.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    scratch: &mut Scratch,
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let row_tiles = m.div_ceil(MR);
    let col_tiles = n.div_ceil(NR);
    let kc_max = KC.min(k);
    let mut a_pack = scratch.take_f32(row_tiles * MR * kc_max);
    let mut b_pack = scratch.take_f32(col_tiles * NR * kc_max);
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_a(a, a_rs, a_cs, m, k0, kc, &mut a_pack[..row_tiles * MR * kc]);
        pack_b(b, b_rs, b_cs, n, k0, kc, &mut b_pack[..col_tiles * NR * kc]);
        let a_pack = &a_pack[..row_tiles * MR * kc];
        let b_pack = &b_pack[..col_tiles * NR * kc];
        let compute_tile = |rt: usize, c_rows: &mut [f32]| {
            let i0 = rt * MR;
            let rows = MR.min(m - i0);
            let a_tile = &a_pack[rt * kc * MR..(rt + 1) * kc * MR];
            for ct in 0..col_tiles {
                let j0 = ct * NR;
                let cols = NR.min(n - j0);
                let b_tile = &b_pack[ct * kc * NR..(ct + 1) * kc * NR];
                micro_kernel(kc, a_tile, b_tile, c_rows, n, j0, rows, cols);
            }
        };
        if worker_count() <= 1 || row_tiles <= 1 || m * n * k < PARALLEL_FLOP_CUTOFF {
            for rt in 0..row_tiles {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                compute_tile(rt, &mut out[i0 * n..(i0 + rows) * n]);
            }
        } else {
            // Row tiles map to disjoint row ranges of `out`; hand each tile
            // to exactly one worker through parallel_for's atomic counter.
            let ptr = out.as_mut_ptr() as usize;
            parallel_for(row_tiles, |rt| {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                // SAFETY: tile `rt` covers rows `i0..i0+rows`, claimed by
                // exactly one worker; the ranges are disjoint and in bounds.
                let c_rows = unsafe {
                    std::slice::from_raw_parts_mut((ptr as *mut f32).add(i0 * n), rows * n)
                };
                compute_tile(rt, c_rows);
            });
        }
        k0 += kc;
    }
    scratch.recycle_f32(a_pack);
    scratch.recycle_f32(b_pack);
}

// ---------------------------------------------------------------------------
// Packed low-bit integer kernels: bitplane XNOR/popcount + nibble i8 MAC
// ---------------------------------------------------------------------------
//
// The float GEMM above needs a fixed accumulation order for bit-identity;
// the integer kernels below do not. Integer addition is associative, so any
// packing layout and any summation grouping reproduces the exact Σ w·a the
// wide `i32`-code path computes — the determinism burden moves entirely into
// "compute the exact integer sum", which these kernels do by construction.

/// Lanes per packed word in the bitplane layout.
pub const WORD_BITS: usize = 64;

/// Words per bitplane covering `len` lanes (trailing lanes zero-padded).
pub fn plane_words(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Packs unsigned integer codes into a plane-major bitplane layout.
///
/// Plane `q` occupies `out[q*W..(q+1)*W]` with `W = plane_words(codes.len())`;
/// bit `i % 64` of word `i / 64` in plane `q` holds bit `q` of `codes[i]`.
/// Padding bits past the last lane stay zero, so whole-word popcounts never
/// see garbage. Panics if a code is negative or needs more than `bits` bits,
/// or if `out` is not exactly `bits * W` words.
pub fn pack_bitplanes(codes: &[i32], bits: u32, out: &mut [u64]) {
    let w = plane_words(codes.len());
    assert_eq!(
        out.len(),
        bits as usize * w,
        "plane buffer must be bits * plane_words(len)"
    );
    out[..bits as usize * w].fill(0);
    for (i, &c) in codes.iter().enumerate() {
        assert!(
            c >= 0 && (bits >= 31 || c < (1i32 << bits)),
            "code {c} does not fit {bits} unsigned bits"
        );
        let (word, bit) = (i / WORD_BITS, i % WORD_BITS);
        for q in 0..bits as usize {
            if c >> q & 1 == 1 {
                out[q * w + word] |= 1u64 << bit;
            }
        }
    }
}

/// Inverse of [`pack_bitplanes`]: reconstructs `len` codes from `bits`
/// planes. `out` is fully overwritten.
pub fn unpack_bitplanes(planes: &[u64], bits: u32, len: usize, out: &mut [i32]) {
    let w = plane_words(len);
    assert_eq!(planes.len(), bits as usize * w, "plane count mismatch");
    assert_eq!(out.len(), len, "output must hold len codes");
    for (i, slot) in out.iter_mut().enumerate() {
        let (word, bit) = (i / WORD_BITS, i % WORD_BITS);
        let mut c = 0i32;
        for q in 0..bits as usize {
            c |= (((planes[q * w + word] >> bit) & 1) as i32) << q;
        }
        *slot = c;
    }
}

/// Packs level indices (each in `0..16`) two per byte, low nibble first —
/// the storage layout for 2–4-bit weight rows executed by
/// [`nibble_dot_i8`].
pub fn pack_nibbles(levels: &[i32], out: &mut [u8]) {
    assert_eq!(out.len(), levels.len().div_ceil(2), "nibble buffer size");
    out.fill(0);
    for (i, &k) in levels.iter().enumerate() {
        assert!((0..16).contains(&k), "level {k} does not fit a nibble");
        out[i / 2] |= (k as u8) << ((i % 2) * 4);
    }
}

/// Inverse of [`pack_nibbles`].
pub fn unpack_nibbles(packed: &[u8], len: usize, out: &mut [i32]) {
    assert_eq!(packed.len(), len.div_ceil(2), "nibble buffer size");
    assert_eq!(out.len(), len, "output must hold len levels");
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((packed[i / 2] >> ((i % 2) * 4)) & 0x0F) as i32;
    }
}

/// Scalar ground truth for the packed kernels: `Σ_i w_i·a_i` over plain
/// `i32` codes in exact `i64` arithmetic — the same sum
/// `IntegerLinear::forward` computes. The equivalence proptests and benches
/// pin every packed kernel against this.
pub fn scalar_code_dot(weights: &[i32], acts: &[i32]) -> i64 {
    assert_eq!(weights.len(), acts.len(), "operand length mismatch");
    weights
        .iter()
        .zip(acts)
        .map(|(&w, &a)| w as i64 * a as i64)
        .sum()
}

/// The classic XNOR/popcount dot: both operands are ±1 vectors stored as
/// sign planes (bit set ⇔ +1), `live` masks the valid lanes. Returns
/// `Σ_i w_i·x_i = 2·popcount(XNOR(w, x) ∧ live) − popcount(live)`:
/// agreeing signs contribute +1, disagreeing −1.
pub fn xnor_popcount_dot(w_sign: &[u64], x_sign: &[u64], live: &[u64]) -> i64 {
    assert!(
        w_sign.len() == x_sign.len() && x_sign.len() == live.len(),
        "operand plane length mismatch"
    );
    let mut agree = 0u64;
    let mut lanes = 0u64;
    for ((&w, &x), &m) in w_sign.iter().zip(x_sign).zip(live) {
        agree += (!(w ^ x) & m).count_ones() as u64;
        lanes += m.count_ones() as u64;
    }
    2 * agree as i64 - lanes as i64
}

/// 1-bit-weight dot against multi-bit activation bitplanes.
///
/// Weights are ±1 codes stored as one sign plane (bit set ⇔ +1);
/// activations are unsigned codes `a_i = Σ_q 2^q·a_{q,i}` in the plane-major
/// layout of [`pack_bitplanes`]. Substituting `w_i = 2·s_i − 1`:
///
/// ```text
/// Σ_i w_i·a_i = 2·Σ_q 2^q·popcount(s ∧ a_q) − Σ_i a_i
/// ```
///
/// Each plane term is [`xnor_popcount_dot`] with the activation plane as the
/// live mask and all-ones as the second operand (`w XNOR 1 = w`, so the
/// masked XNOR collapses to `s ∧ a_q`); the right-hand `Σ_i a_i` term is
/// filter-independent, so the caller computes it once per sample and passes
/// it as `act_code_sum` instead of re-popcounting it for every output row.
pub fn sign_plane_dot(sign: &[u64], act_planes: &[u64], act_bits: u32, act_code_sum: i64) -> i64 {
    let w = sign.len();
    assert_eq!(
        act_planes.len(),
        act_bits as usize * w,
        "activation planes must be act_bits * sign words"
    );
    let mut lifted = 0i64;
    for q in 0..act_bits as usize {
        let plane = &act_planes[q * w..(q + 1) * w];
        let mut pc = 0u64;
        for (&s, &a) in sign.iter().zip(plane) {
            pc += (s & a).count_ones() as u64;
        }
        lifted += (pc as i64) << q;
    }
    2 * lifted - act_code_sum
}

/// Block size for the `i32` partial accumulator in [`nibble_dot_i8`]: with
/// `|v| ≤ 15` and `a ≤ 255` every product fits an `i16` and 2¹³ of them
/// stay far below `i32::MAX` (15 · 255 · 8192 ≈ 3.1·10⁷).
const MAC_BLOCK: usize = 1 << 13;

/// Nibble-packed i8/i16 multiply-accumulate for 2–4-bit weight rows.
///
/// Each 4-bit level `k_i` is decoded on the fly to the odd symmetric code
/// `v_i = 2·k_i − n_minus_1` (an `i8` for every weight bitwidth ≤ 4) and
/// multiplied against the activation code (an `i16` for every activation
/// bitwidth ≤ 8). Products accumulate in `i32` blocks of [`MAC_BLOCK`] and
/// fold into the `i64` total; associativity of integer addition makes the
/// result exactly [`scalar_code_dot`] of the decoded codes.
pub fn nibble_dot_i8(nibbles: &[u8], n_minus_1: i32, acts: &[i32]) -> i64 {
    assert_eq!(nibbles.len(), acts.len().div_ceil(2), "nibble row length");
    assert!((0..16).contains(&n_minus_1), "n_minus_1 must fit a nibble");
    let mut total = 0i64;
    let mut start = 0usize;
    while start < acts.len() {
        let end = (start + MAC_BLOCK).min(acts.len());
        let mut block = 0i32;
        for j in start..end {
            let k = ((nibbles[j / 2] >> ((j % 2) * 4)) & 0x0F) as i32;
            let v = (2 * k - n_minus_1) as i8;
            debug_assert!(
                (0..=255).contains(&acts[j]),
                "activation code exceeds 8 bits"
            );
            let a = acts[j] as i16;
            block += v as i32 * a as i32;
        }
        total += block as i64;
        start = end;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::with_thread_scratch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn check_all_layouts(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        // (a_rs, a_cs) for NN and TN storage; (b_rs, b_cs) for NN and NT.
        for (a_rs, a_cs) in [(k, 1), (1, m)] {
            for (b_rs, b_cs) in [(n, 1), (1, k)] {
                let mut want = vec![0.0f32; m * n];
                naive_gemm(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut want);
                let mut got = vec![f32::NAN; m * n];
                with_thread_scratch(|s| {
                    gemm_packed(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut got, s)
                });
                for i in 0..m * n {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "m={m} n={n} k={k} a=({a_rs},{a_cs}) b=({b_rs},{b_cs}) elem {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_bitwise_at_tile_edges() {
        for &m in &[1, 7, 8, 9, 16] {
            for &n in &[1, 7, 8, 9, 17] {
                for &k in &[1, 3, 8, 31] {
                    check_all_layouts(m, n, k, (m * 1000 + n * 100 + k) as u64);
                }
            }
        }
    }

    #[test]
    fn matches_naive_across_kc_boundary() {
        check_all_layouts(5, 6, KC - 1, 1);
        check_all_layouts(5, 6, KC, 2);
        check_all_layouts(5, 6, KC + 1, 3);
        check_all_layouts(3, 3, 2 * KC + 7, 4);
    }

    #[test]
    fn large_parallel_shape_matches_naive_bitwise() {
        // Big enough to cross PARALLEL_FLOP_CUTOFF and span many tiles.
        check_all_layouts(70, 65, 40, 9);
    }

    #[test]
    fn zero_sized_dims_yield_zero_output() {
        let mut s = Scratch::new();
        let mut out = vec![5.0f32; 0];
        gemm_packed(0, 0, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        let mut out = vec![5.0f32; 6];
        gemm_packed(2, 3, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn nan_and_inf_propagate() {
        let mut s = Scratch::new();
        let a = vec![0.0f32, 1.0];
        let mut b = vec![f32::NAN, 2.0];
        let mut out = vec![0.0f32; 1];
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·NaN must reach the accumulator");
        b[0] = f32::INFINITY;
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·Inf = NaN must reach the accumulator");
    }

    #[test]
    fn steady_state_calls_do_not_allocate() {
        let mut s = Scratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let a = fill(&mut rng, 20 * 30);
        let b = fill(&mut rng, 30 * 10);
        let mut out = vec![0.0f32; 20 * 10];
        gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        let after_warmup = s.fresh_allocs();
        for _ in 0..5 {
            gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        }
        assert_eq!(s.fresh_allocs(), after_warmup);
    }

    // --- packed low-bit integer kernels ---

    fn random_codes(rng: &mut StdRng, len: usize, bits: u32) -> Vec<i32> {
        (0..len).map(|_| rng.gen_range(0..1i32 << bits)).collect()
    }

    #[test]
    fn bitplane_round_trip_across_word_edges() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in 1..=8u32 {
            for &len in &[1usize, 7, 63, 64, 65, 130, 256] {
                let codes = random_codes(&mut rng, len, bits);
                let mut planes = vec![u64::MAX; bits as usize * plane_words(len)];
                pack_bitplanes(&codes, bits, &mut planes);
                let mut back = vec![-1i32; len];
                unpack_bitplanes(&planes, bits, len, &mut back);
                assert_eq!(back, codes, "bits={bits} len={len}");
            }
        }
    }

    #[test]
    fn bitplane_padding_bits_stay_zero() {
        let codes = vec![3i32; 5]; // 5 lanes, 59 padding bits per plane
        let mut planes = vec![0u64; 2];
        pack_bitplanes(&codes, 2, &mut planes);
        for plane in &planes {
            assert_eq!(plane & !0x1F, 0, "padding lanes must stay clear");
        }
    }

    #[test]
    fn nibble_round_trip_odd_and_even_lengths() {
        let mut rng = StdRng::seed_from_u64(13);
        for &len in &[1usize, 2, 7, 8, 9, 64, 255, 256, 257] {
            let levels = random_codes(&mut rng, len, 4);
            let mut packed = vec![0xFFu8; len.div_ceil(2)];
            pack_nibbles(&levels, &mut packed);
            let mut back = vec![-1i32; len];
            unpack_nibbles(&packed, len, &mut back);
            assert_eq!(back, levels, "len={len}");
        }
    }

    #[test]
    fn xnor_popcount_matches_scalar_signed_dot() {
        let mut rng = StdRng::seed_from_u64(17);
        for &len in &[1usize, 8, 63, 64, 65, 200] {
            let w: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
            let x: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
            let to_sign = |codes: &[i32]| {
                let lv: Vec<i32> = codes.iter().map(|&c| i32::from(c == 1)).collect();
                let mut plane = vec![0u64; plane_words(len)];
                pack_bitplanes(&lv, 1, &mut plane);
                plane
            };
            let ones: Vec<i32> = vec![1; len];
            let live = to_sign(&ones);
            let got = xnor_popcount_dot(&to_sign(&w), &to_sign(&x), &live);
            assert_eq!(got, scalar_code_dot(&w, &x), "len={len}");
        }
    }

    #[test]
    fn sign_plane_dot_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(19);
        for act_bits in 1..=8u32 {
            for &len in &[1usize, 9, 64, 65, 192] {
                let w: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
                let acts = random_codes(&mut rng, len, act_bits);
                let levels: Vec<i32> = w.iter().map(|&c| i32::from(c == 1)).collect();
                let mut sign = vec![0u64; plane_words(len)];
                pack_bitplanes(&levels, 1, &mut sign);
                let mut planes = vec![0u64; act_bits as usize * plane_words(len)];
                pack_bitplanes(&acts, act_bits, &mut planes);
                let sum: i64 = acts.iter().map(|&a| a as i64).sum();
                let got = sign_plane_dot(&sign, &planes, act_bits, sum);
                assert_eq!(got, scalar_code_dot(&w, &acts), "bits={act_bits} len={len}");
            }
        }
    }

    #[test]
    fn nibble_dot_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for wbits in 2..=4u32 {
            let n_minus_1 = (1i32 << wbits) - 1;
            for &len in &[1usize, 2, 9, 64, 255, 300] {
                let levels = random_codes(&mut rng, len, wbits);
                let acts = random_codes(&mut rng, len, 8);
                let mut packed = vec![0u8; len.div_ceil(2)];
                pack_nibbles(&levels, &mut packed);
                let codes: Vec<i32> = levels.iter().map(|&k| 2 * k - n_minus_1).collect();
                let got = nibble_dot_i8(&packed, n_minus_1, &acts);
                assert_eq!(
                    got,
                    scalar_code_dot(&codes, &acts),
                    "wbits={wbits} len={len}"
                );
            }
        }
    }

    #[test]
    fn nibble_dot_crosses_block_boundary_exactly() {
        // Lengths straddling MAC_BLOCK exercise the i32→i64 fold seam.
        let mut rng = StdRng::seed_from_u64(29);
        for &len in &[MAC_BLOCK - 1, MAC_BLOCK, MAC_BLOCK + 1] {
            let levels = random_codes(&mut rng, len, 4);
            let acts = random_codes(&mut rng, len, 8);
            let mut packed = vec![0u8; len.div_ceil(2)];
            pack_nibbles(&levels, &mut packed);
            let codes: Vec<i32> = levels.iter().map(|&k| 2 * k - 15).collect();
            assert_eq!(
                nibble_dot_i8(&packed, 15, &acts),
                scalar_code_dot(&codes, &acts),
                "len={len}"
            );
        }
    }
}
