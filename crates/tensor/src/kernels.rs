//! Cache-blocked packed GEMM with a fixed k-accumulation order.
//!
//! Every dense hot path in the CBQ stack (`matmul`, `matmul_tn`,
//! `matmul_nt`, and the batched im2col convolutions) funnels into
//! [`gemm_packed`], a BLIS-style kernel:
//!
//! * The k dimension is blocked into chunks of [`KC`]. For each chunk, all
//!   of A's row panels and all of B's column panels are packed **serially**
//!   into contiguous tile-major scratch (`a_pack[tile][p][r]`,
//!   `b_pack[tile][p][c]`, edges zero-padded), then the output row tiles
//!   are computed — possibly in parallel, each tile writing a disjoint slice
//!   of C.
//! * The [`MR`]×[`NR`] micro-kernel keeps one `f32` accumulator per output
//!   element. It loads the current C tile, folds the chunk's k range in
//!   strictly ascending order, and stores the tile back. Because an `f32`
//!   store/load round-trip is exact, chaining chunks reproduces the single
//!   left-to-right fold `((0 + a·b)₀ + a·b)₁ + …` bit-for-bit — exactly the
//!   naive kernel's order.
//!
//! Determinism argument: the packing pass is serial, each output tile is
//! computed by exactly one worker from read-only packed panels, and the
//! k order inside a tile is fixed by construction. The worker count decides
//! only *which thread* computes a tile, never *what* it computes, so results
//! are bit-identical at any `CBQ_MAX_THREADS` — and bit-identical to
//! [`naive_gemm`], which is kept as the reference for the equivalence
//! proptests and the bench gate. Zero-padded pack lanes can produce
//! `0 · NaN = NaN` only in accumulator lanes that lie outside the matrix
//! and are discarded on store.

use crate::parallel::{parallel_for, worker_count};
use crate::scratch::Scratch;

/// Rows per register tile of the micro-kernel.
pub const MR: usize = 8;
/// Columns per register tile of the micro-kernel.
pub const NR: usize = 8;
/// k-dimension block size: one A panel chunk of `MR·KC` floats (8 KiB) plus
/// one B panel chunk stays resident in L1/L2 while a tile is computed.
pub const KC: usize = 256;

/// Below this many multiply-adds the kernel always runs on the calling
/// thread; the choice affects wall-clock only, never results.
const PARALLEL_FLOP_CUTOFF: usize = 1 << 15;

/// Reference kernel: the plain ijk triple loop over strided operands.
///
/// Element `(i, p)` of A is `a[i*a_rs + p*a_cs]` and element `(p, j)` of B
/// is `b[p*b_rs + j*b_cs]`, so the same routine serves all of NN / TN / NT
/// by stride choice. `out` is row-major `[m, n]` and is fully overwritten.
/// Kept (and exercised in CI) as the ground truth [`gemm_packed`] must match
/// bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Packs rows `0..m` of A for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*MR + p*MR + r]` holds `A[t*MR + r, k0 + p]`, zero for rows
/// past `m`.
fn pack_a(a: &[f32], a_rs: usize, a_cs: usize, m: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let row_tiles = m.div_ceil(MR);
    for t in 0..row_tiles {
        let i0 = t * MR;
        let rows = MR.min(m - i0);
        let base = t * kc * MR;
        for p in 0..kc {
            let dst = &mut pack[base + p * MR..base + p * MR + MR];
            for (r, slot) in dst.iter_mut().enumerate() {
                *slot = if r < rows {
                    a[(i0 + r) * a_rs + (k0 + p) * a_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs columns `0..n` of B for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*NR + p*NR + c]` holds `B[k0 + p, t*NR + c]`, zero for columns
/// past `n`.
fn pack_b(b: &[f32], b_rs: usize, b_cs: usize, n: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let col_tiles = n.div_ceil(NR);
    for t in 0..col_tiles {
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        let base = t * kc * NR;
        for p in 0..kc {
            let dst = &mut pack[base + p * NR..base + p * NR + NR];
            for (c, slot) in dst.iter_mut().enumerate() {
                *slot = if c < cols {
                    b[(k0 + p) * b_rs + (j0 + c) * b_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Computes one MR×NR output tile for one k chunk: loads the live C lanes,
/// folds `kc` steps in ascending order with one accumulator per element,
/// and stores the live lanes back.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    kc: usize,
    a_tile: &[f32],
    b_tile: &[f32],
    c_rows: &mut [f32],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate().take(rows) {
        let row = &c_rows[r * n + j0..r * n + j0 + cols];
        acc_row[..cols].copy_from_slice(row);
    }
    for p in 0..kc {
        let ab = &a_tile[p * MR..p * MR + MR];
        let bb = &b_tile[p * NR..p * NR + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ab[r];
            for (c, slot) in acc_row.iter_mut().enumerate() {
                // One mul, one add — Rust never contracts these into an FMA,
                // so the sequence matches the naive fold exactly.
                *slot += ar * bb[c];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let row = &mut c_rows[r * n + j0..r * n + j0 + cols];
        row.copy_from_slice(&acc_row[..cols]);
    }
}

/// Cache-blocked packed GEMM: `out[i, j] = Σ_p A[i, p] · B[p, j]` with the
/// strided-operand convention of [`naive_gemm`]. `out` is fully
/// overwritten. Pack buffers come from `scratch` and are recycled before
/// returning, so steady-state calls allocate nothing.
///
/// Bit-for-bit identical to [`naive_gemm`] for every input, at every worker
/// count — see the module docs for the argument.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    scratch: &mut Scratch,
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let row_tiles = m.div_ceil(MR);
    let col_tiles = n.div_ceil(NR);
    let kc_max = KC.min(k);
    let mut a_pack = scratch.take_f32(row_tiles * MR * kc_max);
    let mut b_pack = scratch.take_f32(col_tiles * NR * kc_max);
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_a(a, a_rs, a_cs, m, k0, kc, &mut a_pack[..row_tiles * MR * kc]);
        pack_b(b, b_rs, b_cs, n, k0, kc, &mut b_pack[..col_tiles * NR * kc]);
        let a_pack = &a_pack[..row_tiles * MR * kc];
        let b_pack = &b_pack[..col_tiles * NR * kc];
        let compute_tile = |rt: usize, c_rows: &mut [f32]| {
            let i0 = rt * MR;
            let rows = MR.min(m - i0);
            let a_tile = &a_pack[rt * kc * MR..(rt + 1) * kc * MR];
            for ct in 0..col_tiles {
                let j0 = ct * NR;
                let cols = NR.min(n - j0);
                let b_tile = &b_pack[ct * kc * NR..(ct + 1) * kc * NR];
                micro_kernel(kc, a_tile, b_tile, c_rows, n, j0, rows, cols);
            }
        };
        if worker_count() <= 1 || row_tiles <= 1 || m * n * k < PARALLEL_FLOP_CUTOFF {
            for rt in 0..row_tiles {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                compute_tile(rt, &mut out[i0 * n..(i0 + rows) * n]);
            }
        } else {
            // Row tiles map to disjoint row ranges of `out`; hand each tile
            // to exactly one worker through parallel_for's atomic counter.
            let ptr = out.as_mut_ptr() as usize;
            parallel_for(row_tiles, |rt| {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                // SAFETY: tile `rt` covers rows `i0..i0+rows`, claimed by
                // exactly one worker; the ranges are disjoint and in bounds.
                let c_rows = unsafe {
                    std::slice::from_raw_parts_mut((ptr as *mut f32).add(i0 * n), rows * n)
                };
                compute_tile(rt, c_rows);
            });
        }
        k0 += kc;
    }
    scratch.recycle_f32(a_pack);
    scratch.recycle_f32(b_pack);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::with_thread_scratch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn check_all_layouts(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        // (a_rs, a_cs) for NN and TN storage; (b_rs, b_cs) for NN and NT.
        for (a_rs, a_cs) in [(k, 1), (1, m)] {
            for (b_rs, b_cs) in [(n, 1), (1, k)] {
                let mut want = vec![0.0f32; m * n];
                naive_gemm(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut want);
                let mut got = vec![f32::NAN; m * n];
                with_thread_scratch(|s| {
                    gemm_packed(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut got, s)
                });
                for i in 0..m * n {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "m={m} n={n} k={k} a=({a_rs},{a_cs}) b=({b_rs},{b_cs}) elem {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_bitwise_at_tile_edges() {
        for &m in &[1, 7, 8, 9, 16] {
            for &n in &[1, 7, 8, 9, 17] {
                for &k in &[1, 3, 8, 31] {
                    check_all_layouts(m, n, k, (m * 1000 + n * 100 + k) as u64);
                }
            }
        }
    }

    #[test]
    fn matches_naive_across_kc_boundary() {
        check_all_layouts(5, 6, KC - 1, 1);
        check_all_layouts(5, 6, KC, 2);
        check_all_layouts(5, 6, KC + 1, 3);
        check_all_layouts(3, 3, 2 * KC + 7, 4);
    }

    #[test]
    fn large_parallel_shape_matches_naive_bitwise() {
        // Big enough to cross PARALLEL_FLOP_CUTOFF and span many tiles.
        check_all_layouts(70, 65, 40, 9);
    }

    #[test]
    fn zero_sized_dims_yield_zero_output() {
        let mut s = Scratch::new();
        let mut out = vec![5.0f32; 0];
        gemm_packed(0, 0, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        let mut out = vec![5.0f32; 6];
        gemm_packed(2, 3, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn nan_and_inf_propagate() {
        let mut s = Scratch::new();
        let a = vec![0.0f32, 1.0];
        let mut b = vec![f32::NAN, 2.0];
        let mut out = vec![0.0f32; 1];
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·NaN must reach the accumulator");
        b[0] = f32::INFINITY;
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·Inf = NaN must reach the accumulator");
    }

    #[test]
    fn steady_state_calls_do_not_allocate() {
        let mut s = Scratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let a = fill(&mut rng, 20 * 30);
        let b = fill(&mut rng, 30 * 10);
        let mut out = vec![0.0f32; 20 * 10];
        gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        let after_warmup = s.fresh_allocs();
        for _ in 0..5 {
            gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        }
        assert_eq!(s.fresh_allocs(), after_warmup);
    }
}
