//! Cache-blocked packed GEMM with a fixed k-accumulation order.
//!
//! Every dense hot path in the CBQ stack (`matmul`, `matmul_tn`,
//! `matmul_nt`, and the batched im2col convolutions) funnels into
//! [`gemm_packed`], a BLIS-style kernel:
//!
//! * The k dimension is blocked into chunks of [`KC`]. For each chunk, all
//!   of A's row panels and all of B's column panels are packed **serially**
//!   into contiguous tile-major scratch (`a_pack[tile][p][r]`,
//!   `b_pack[tile][p][c]`, edges zero-padded), then the output row tiles
//!   are computed — possibly in parallel, each tile writing a disjoint slice
//!   of C.
//! * The [`MR`]×[`NR`] micro-kernel keeps one `f32` accumulator per output
//!   element. It loads the current C tile, folds the chunk's k range in
//!   strictly ascending order, and stores the tile back. Because an `f32`
//!   store/load round-trip is exact, chaining chunks reproduces the single
//!   left-to-right fold `((0 + a·b)₀ + a·b)₁ + …` bit-for-bit — exactly the
//!   naive kernel's order.
//!
//! Determinism argument: the packing pass is serial, each output tile is
//! computed by exactly one worker from read-only packed panels, and the
//! k order inside a tile is fixed by construction. The worker count decides
//! only *which thread* computes a tile, never *what* it computes, so results
//! are bit-identical at any `CBQ_MAX_THREADS` — and bit-identical to
//! [`naive_gemm`], which is kept as the reference for the equivalence
//! proptests and the bench gate. Zero-padded pack lanes can produce
//! `0 · NaN = NaN` only in accumulator lanes that lie outside the matrix
//! and are discarded on store.
//!
//! # SIMD dispatch
//!
//! The micro-kernel and the integer dots are [`SimdOp`]s: each has a scalar
//! reference arm plus AVX2+FMA / AVX-512 / NEON arms selected at runtime by
//! [`crate::dispatch::active_isa`]. In `BitExact` mode (the default) the
//! vector GEMM arms keep one *lane* per output element and use separate
//! multiply + add instructions, so every element still runs the scalar
//! ascending-k fold and the bytes match; `Fast` mode lets them contract to
//! FMA (bench-only). The integer arms are exact at any grouping, so they
//! vectorize in both modes.

use crate::dispatch::{self, NumericsMode, SimdOp};
use crate::parallel::{parallel_for, worker_count};
use crate::scratch::Scratch;

/// Rows per register tile of the micro-kernel.
pub const MR: usize = 8;
/// Columns per register tile of the micro-kernel.
pub const NR: usize = 8;
/// k-dimension block size: one A panel chunk of `MR·KC` floats (8 KiB) plus
/// one B panel chunk stays resident in L1/L2 while a tile is computed.
pub const KC: usize = 256;

/// Below this many multiply-adds the kernel always runs on the calling
/// thread; the choice affects wall-clock only, never results.
const PARALLEL_FLOP_CUTOFF: usize = 1 << 15;

/// Reference kernel: the plain ijk triple loop over strided operands.
///
/// Element `(i, p)` of A is `a[i*a_rs + p*a_cs]` and element `(p, j)` of B
/// is `b[p*b_rs + j*b_cs]`, so the same routine serves all of NN / TN / NT
/// by stride choice. `out` is row-major `[m, n]` and is fully overwritten.
/// Kept (and exercised in CI) as the ground truth [`gemm_packed`] must match
/// bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * a_rs + p * a_cs] * b[p * b_rs + j * b_cs];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Packs rows `0..m` of A for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*MR + p*MR + r]` holds `A[t*MR + r, k0 + p]`, zero for rows
/// past `m`.
fn pack_a(a: &[f32], a_rs: usize, a_cs: usize, m: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let row_tiles = m.div_ceil(MR);
    for t in 0..row_tiles {
        let i0 = t * MR;
        let rows = MR.min(m - i0);
        let base = t * kc * MR;
        for p in 0..kc {
            let dst = &mut pack[base + p * MR..base + p * MR + MR];
            for (r, slot) in dst.iter_mut().enumerate() {
                *slot = if r < rows {
                    a[(i0 + r) * a_rs + (k0 + p) * a_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs columns `0..n` of B for k range `k0..k0+kc` into tile-major layout:
/// `pack[t*kc*NR + p*NR + c]` holds `B[k0 + p, t*NR + c]`, zero for columns
/// past `n`.
fn pack_b(b: &[f32], b_rs: usize, b_cs: usize, n: usize, k0: usize, kc: usize, pack: &mut [f32]) {
    let col_tiles = n.div_ceil(NR);
    for t in 0..col_tiles {
        let j0 = t * NR;
        let cols = NR.min(n - j0);
        let base = t * kc * NR;
        for p in 0..kc {
            let dst = &mut pack[base + p * NR..base + p * NR + NR];
            for (c, slot) in dst.iter_mut().enumerate() {
                *slot = if c < cols {
                    b[(k0 + p) * b_rs + (j0 + c) * b_cs]
                } else {
                    0.0
                };
            }
        }
    }
}

/// One MR×NR micro-tile update for one k chunk, as a dispatched [`SimdOp`]:
/// load the live C lanes, fold `kc` steps in ascending order with one
/// accumulator (chain) per element, store the live lanes back.
///
/// Every arm stages the live C region into a zero-padded MR×NR stack tile
/// first and copies the live region back out at the end — exact f32 moves,
/// so staging never perturbs bytes. In `BitExact` mode the vector arms issue
/// separate multiply + add instructions; each output element's accumulator
/// is a fixed vector lane, so its rounding sequence is identical to the
/// scalar arm's. `fast` permits FMA contraction instead (bench-only).
struct MicroTile<'a> {
    kc: usize,
    a_tile: &'a [f32],
    b_tile: &'a [f32],
    c_rows: &'a mut [f32],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    fast: bool,
}

impl MicroTile<'_> {
    /// Copies the live C lanes into a zero-padded stack tile.
    #[inline]
    fn load_tile(&self) -> [[f32; NR]; MR] {
        let mut tile = [[0.0f32; NR]; MR];
        for (r, tile_row) in tile.iter_mut().enumerate().take(self.rows) {
            let row = &self.c_rows[r * self.n + self.j0..r * self.n + self.j0 + self.cols];
            tile_row[..self.cols].copy_from_slice(row);
        }
        tile
    }

    /// Copies the live lanes of the computed tile back into C.
    #[inline]
    fn store_tile(&mut self, tile: &[[f32; NR]; MR]) {
        for (r, tile_row) in tile.iter().enumerate().take(self.rows) {
            let row = &mut self.c_rows[r * self.n + self.j0..r * self.n + self.j0 + self.cols];
            row.copy_from_slice(&tile_row[..self.cols]);
        }
    }
}

impl SimdOp for MicroTile<'_> {
    type Output = ();

    fn scalar(mut self) {
        let mut acc = self.load_tile();
        for p in 0..self.kc {
            let ab = &self.a_tile[p * MR..p * MR + MR];
            let bb = &self.b_tile[p * NR..p * NR + NR];
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let ar = ab[r];
                for (c, slot) in acc_row.iter_mut().enumerate() {
                    // One mul, one add — Rust never contracts these into an
                    // FMA, so the sequence matches the naive fold exactly.
                    *slot += ar * bb[c];
                }
            }
        }
        self.store_tile(&acc);
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_fma(self) {
        // SAFETY: dispatched only when `Isa::Avx2Fma` probed available.
        unsafe { x86::micro_tile_avx2(self) }
    }

    #[cfg(target_arch = "x86_64")]
    fn avx512(self) {
        // SAFETY: dispatched only when `Isa::Avx512` probed available.
        unsafe { x86::micro_tile_avx512(self) }
    }

    #[cfg(target_arch = "aarch64")]
    fn neon(self) {
        // SAFETY: dispatched only when `Isa::Neon` probed available.
        unsafe { neon::micro_tile_neon(self) }
    }
}

/// Cache-blocked packed GEMM: `out[i, j] = Σ_p A[i, p] · B[p, j]` with the
/// strided-operand convention of [`naive_gemm`]. `out` is fully
/// overwritten. Pack buffers come from `scratch` and are recycled before
/// returning, so steady-state calls allocate nothing.
///
/// Bit-for-bit identical to [`naive_gemm`] for every input, at every worker
/// count — see the module docs for the argument.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
    scratch: &mut Scratch,
) {
    assert_eq!(out.len(), m * n, "output buffer must be m*n");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Resolve the dispatch decision once per GEMM call; every tile of every
    // k chunk then runs the same arm (a mid-call mode flip cannot mix arms).
    let isa = dispatch::active_isa();
    let fast = dispatch::numerics_mode() == NumericsMode::Fast;
    let row_tiles = m.div_ceil(MR);
    let col_tiles = n.div_ceil(NR);
    let kc_max = KC.min(k);
    let mut a_pack = scratch.take_f32(row_tiles * MR * kc_max);
    let mut b_pack = scratch.take_f32(col_tiles * NR * kc_max);
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_a(a, a_rs, a_cs, m, k0, kc, &mut a_pack[..row_tiles * MR * kc]);
        pack_b(b, b_rs, b_cs, n, k0, kc, &mut b_pack[..col_tiles * NR * kc]);
        let a_pack = &a_pack[..row_tiles * MR * kc];
        let b_pack = &b_pack[..col_tiles * NR * kc];
        let compute_tile = |rt: usize, c_rows: &mut [f32]| {
            let i0 = rt * MR;
            let rows = MR.min(m - i0);
            let a_tile = &a_pack[rt * kc * MR..(rt + 1) * kc * MR];
            for ct in 0..col_tiles {
                let j0 = ct * NR;
                let cols = NR.min(n - j0);
                let b_tile = &b_pack[ct * kc * NR..(ct + 1) * kc * NR];
                MicroTile {
                    kc,
                    a_tile,
                    b_tile,
                    c_rows,
                    n,
                    j0,
                    rows,
                    cols,
                    fast,
                }
                .run(isa);
            }
        };
        if worker_count() <= 1 || row_tiles <= 1 || m * n * k < PARALLEL_FLOP_CUTOFF {
            for rt in 0..row_tiles {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                compute_tile(rt, &mut out[i0 * n..(i0 + rows) * n]);
            }
        } else {
            // Row tiles map to disjoint row ranges of `out`; hand each tile
            // to exactly one worker through parallel_for's atomic counter.
            let ptr = out.as_mut_ptr() as usize;
            parallel_for(row_tiles, |rt| {
                let i0 = rt * MR;
                let rows = MR.min(m - i0);
                // SAFETY: tile `rt` covers rows `i0..i0+rows`, claimed by
                // exactly one worker; the ranges are disjoint and in bounds.
                let c_rows = unsafe {
                    std::slice::from_raw_parts_mut((ptr as *mut f32).add(i0 * n), rows * n)
                };
                compute_tile(rt, c_rows);
            });
        }
        k0 += kc;
    }
    scratch.recycle_f32(a_pack);
    scratch.recycle_f32(b_pack);
}

// ---------------------------------------------------------------------------
// Packed low-bit integer kernels: bitplane XNOR/popcount + nibble i8 MAC
// ---------------------------------------------------------------------------
//
// The float GEMM above needs a fixed accumulation order for bit-identity;
// the integer kernels below do not. Integer addition is associative, so any
// packing layout and any summation grouping reproduces the exact Σ w·a the
// wide `i32`-code path computes — the determinism burden moves entirely into
// "compute the exact integer sum", which these kernels do by construction.

/// Lanes per packed word in the bitplane layout.
pub const WORD_BITS: usize = 64;

/// Words per bitplane covering `len` lanes (trailing lanes zero-padded).
pub fn plane_words(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Packs unsigned integer codes into a plane-major bitplane layout.
///
/// Plane `q` occupies `out[q*W..(q+1)*W]` with `W = plane_words(codes.len())`;
/// bit `i % 64` of word `i / 64` in plane `q` holds bit `q` of `codes[i]`.
/// Padding bits past the last lane stay zero, so whole-word popcounts never
/// see garbage. Panics if a code is negative or needs more than `bits` bits,
/// or if `out` is not exactly `bits * W` words.
pub fn pack_bitplanes(codes: &[i32], bits: u32, out: &mut [u64]) {
    let w = plane_words(codes.len());
    assert_eq!(
        out.len(),
        bits as usize * w,
        "plane buffer must be bits * plane_words(len)"
    );
    out[..bits as usize * w].fill(0);
    for (i, &c) in codes.iter().enumerate() {
        assert!(
            c >= 0 && (bits >= 31 || c < (1i32 << bits)),
            "code {c} does not fit {bits} unsigned bits"
        );
        let (word, bit) = (i / WORD_BITS, i % WORD_BITS);
        for q in 0..bits as usize {
            if c >> q & 1 == 1 {
                out[q * w + word] |= 1u64 << bit;
            }
        }
    }
}

/// Inverse of [`pack_bitplanes`]: reconstructs `len` codes from `bits`
/// planes. `out` is fully overwritten.
pub fn unpack_bitplanes(planes: &[u64], bits: u32, len: usize, out: &mut [i32]) {
    let w = plane_words(len);
    assert_eq!(planes.len(), bits as usize * w, "plane count mismatch");
    assert_eq!(out.len(), len, "output must hold len codes");
    for (i, slot) in out.iter_mut().enumerate() {
        let (word, bit) = (i / WORD_BITS, i % WORD_BITS);
        let mut c = 0i32;
        for q in 0..bits as usize {
            c |= (((planes[q * w + word] >> bit) & 1) as i32) << q;
        }
        *slot = c;
    }
}

/// Packs level indices (each in `0..16`) two per byte, low nibble first —
/// the storage layout for 2–4-bit weight rows executed by
/// [`nibble_dot_i8`].
pub fn pack_nibbles(levels: &[i32], out: &mut [u8]) {
    assert_eq!(out.len(), levels.len().div_ceil(2), "nibble buffer size");
    out.fill(0);
    for (i, &k) in levels.iter().enumerate() {
        assert!((0..16).contains(&k), "level {k} does not fit a nibble");
        out[i / 2] |= (k as u8) << ((i % 2) * 4);
    }
}

/// Inverse of [`pack_nibbles`].
pub fn unpack_nibbles(packed: &[u8], len: usize, out: &mut [i32]) {
    assert_eq!(packed.len(), len.div_ceil(2), "nibble buffer size");
    assert_eq!(out.len(), len, "output must hold len levels");
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((packed[i / 2] >> ((i % 2) * 4)) & 0x0F) as i32;
    }
}

/// Scalar ground truth for the packed kernels: `Σ_i w_i·a_i` over plain
/// `i32` codes in exact `i64` arithmetic — the same sum
/// `IntegerLinear::forward` computes. The equivalence proptests and benches
/// pin every packed kernel against this.
pub fn scalar_code_dot(weights: &[i32], acts: &[i32]) -> i64 {
    assert_eq!(weights.len(), acts.len(), "operand length mismatch");
    weights
        .iter()
        .zip(acts)
        .map(|(&w, &a)| w as i64 * a as i64)
        .sum()
}

/// The classic XNOR/popcount dot: both operands are ±1 vectors stored as
/// sign planes (bit set ⇔ +1), `live` masks the valid lanes. Returns
/// `Σ_i w_i·x_i = 2·popcount(XNOR(w, x) ∧ live) − popcount(live)`:
/// agreeing signs contribute +1, disagreeing −1.
pub fn xnor_popcount_dot(w_sign: &[u64], x_sign: &[u64], live: &[u64]) -> i64 {
    assert!(
        w_sign.len() == x_sign.len() && x_sign.len() == live.len(),
        "operand plane length mismatch"
    );
    let (agree, lanes) = XnorDot {
        w_sign,
        x_sign,
        live,
    }
    .dispatch();
    2 * agree as i64 - lanes as i64
}

/// The XNOR/popcount core as a dispatched [`SimdOp`]: returns
/// `(Σ popcount(XNOR(w, x) ∧ live), Σ popcount(live))`. Both are exact
/// integer sums, so every arm is byte-equivalent by construction and runs in
/// both numerics modes.
struct XnorDot<'a> {
    w_sign: &'a [u64],
    x_sign: &'a [u64],
    live: &'a [u64],
}

impl SimdOp for XnorDot<'_> {
    type Output = (u64, u64);

    fn scalar(self) -> (u64, u64) {
        let mut agree = 0u64;
        let mut lanes = 0u64;
        for ((&w, &x), &m) in self.w_sign.iter().zip(self.x_sign).zip(self.live) {
            agree += (!(w ^ x) & m).count_ones() as u64;
            lanes += m.count_ones() as u64;
        }
        (agree, lanes)
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_fma(self) -> (u64, u64) {
        // SAFETY: dispatched only when `Isa::Avx2Fma` probed available.
        unsafe { x86::xnor_dot_avx2(self.w_sign, self.x_sign, self.live) }
    }

    #[cfg(target_arch = "x86_64")]
    fn avx512(self) -> (u64, u64) {
        if dispatch::has_vpopcntdq() {
            // SAFETY: `Isa::Avx512` probed available and VPOPCNTDQ present.
            unsafe { x86::xnor_dot_avx512(self.w_sign, self.x_sign, self.live) }
        } else {
            self.avx2_fma()
        }
    }

    #[cfg(target_arch = "aarch64")]
    fn neon(self) -> (u64, u64) {
        // SAFETY: dispatched only when `Isa::Neon` probed available.
        unsafe { neon::xnor_dot_neon(self.w_sign, self.x_sign, self.live) }
    }
}

/// `Σ popcount(a ∧ b)` over equal-length word slices as a dispatched
/// [`SimdOp`] — the per-plane primitive under [`sign_plane_dot`].
struct AndPopcount<'a> {
    a: &'a [u64],
    b: &'a [u64],
}

impl SimdOp for AndPopcount<'_> {
    type Output = u64;

    fn scalar(self) -> u64 {
        self.a
            .iter()
            .zip(self.b)
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum()
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_fma(self) -> u64 {
        // SAFETY: dispatched only when `Isa::Avx2Fma` probed available.
        unsafe { x86::and_popcount_avx2(self.a, self.b) }
    }

    #[cfg(target_arch = "x86_64")]
    fn avx512(self) -> u64 {
        if dispatch::has_vpopcntdq() {
            // SAFETY: `Isa::Avx512` probed available and VPOPCNTDQ present.
            unsafe { x86::and_popcount_avx512(self.a, self.b) }
        } else {
            self.avx2_fma()
        }
    }

    #[cfg(target_arch = "aarch64")]
    fn neon(self) -> u64 {
        // SAFETY: dispatched only when `Isa::Neon` probed available.
        unsafe { neon::and_popcount_neon(self.a, self.b) }
    }
}

/// 1-bit-weight dot against multi-bit activation bitplanes.
///
/// Weights are ±1 codes stored as one sign plane (bit set ⇔ +1);
/// activations are unsigned codes `a_i = Σ_q 2^q·a_{q,i}` in the plane-major
/// layout of [`pack_bitplanes`]. Substituting `w_i = 2·s_i − 1`:
///
/// ```text
/// Σ_i w_i·a_i = 2·Σ_q 2^q·popcount(s ∧ a_q) − Σ_i a_i
/// ```
///
/// Each plane term is [`xnor_popcount_dot`] with the activation plane as the
/// live mask and all-ones as the second operand (`w XNOR 1 = w`, so the
/// masked XNOR collapses to `s ∧ a_q`); the right-hand `Σ_i a_i` term is
/// filter-independent, so the caller computes it once per sample and passes
/// it as `act_code_sum` instead of re-popcounting it for every output row.
pub fn sign_plane_dot(sign: &[u64], act_planes: &[u64], act_bits: u32, act_code_sum: i64) -> i64 {
    let w = sign.len();
    assert_eq!(
        act_planes.len(),
        act_bits as usize * w,
        "activation planes must be act_bits * sign words"
    );
    let isa = dispatch::active_isa();
    let mut lifted = 0i64;
    for q in 0..act_bits as usize {
        let plane = &act_planes[q * w..(q + 1) * w];
        let pc = AndPopcount { a: sign, b: plane }.run(isa);
        lifted += (pc as i64) << q;
    }
    2 * lifted - act_code_sum
}

/// Block size for the `i32` partial accumulator in [`nibble_dot_i8`]: with
/// `|v| ≤ 15` and `a ≤ 255` every product fits an `i16` and 2¹³ of them
/// stay far below `i32::MAX` (15 · 255 · 8192 ≈ 3.1·10⁷).
const MAC_BLOCK: usize = 1 << 13;

/// Nibble-packed i8/i16 multiply-accumulate for 2–4-bit weight rows.
///
/// Each 4-bit level `k_i` is decoded on the fly to the odd symmetric code
/// `v_i = 2·k_i − n_minus_1` (an `i8` for every weight bitwidth ≤ 4) and
/// multiplied against the activation code (an `i16` for every activation
/// bitwidth ≤ 8). Products accumulate in `i32` blocks of [`MAC_BLOCK`] and
/// fold into the `i64` total; associativity of integer addition makes the
/// result exactly [`scalar_code_dot`] of the decoded codes.
pub fn nibble_dot_i8(nibbles: &[u8], n_minus_1: i32, acts: &[i32]) -> i64 {
    assert_eq!(nibbles.len(), acts.len().div_ceil(2), "nibble row length");
    assert!((0..16).contains(&n_minus_1), "n_minus_1 must fit a nibble");
    NibbleDot {
        nibbles,
        n_minus_1,
        acts,
    }
    .dispatch()
}

/// The nibble MAC as a dispatched [`SimdOp`]. The vector arms decode 16 (or
/// 32) levels at a time, widen the i8 codes to i32 lanes, and
/// multiply-accumulate into per-lane i32 partials inside the same
/// [`MAC_BLOCK`] bound as the scalar arm (each lane holds at most
/// `MAC_BLOCK / lanes` products of magnitude ≤ 15·255, far below `i32`
/// range), folding lanes into the i64 total per block. Integer addition is
/// associative, so every arm computes the identical sum.
struct NibbleDot<'a> {
    nibbles: &'a [u8],
    n_minus_1: i32,
    acts: &'a [i32],
}

impl NibbleDot<'_> {
    /// Scalar MAC over `self.acts[start..end]` — the in-block tail loop the
    /// vector arms also use past their last full vector group.
    #[inline]
    fn scalar_block(&self, start: usize, end: usize) -> i32 {
        let mut block = 0i32;
        for j in start..end {
            let k = ((self.nibbles[j / 2] >> ((j % 2) * 4)) & 0x0F) as i32;
            let v = (2 * k - self.n_minus_1) as i8;
            debug_assert!(
                (0..=255).contains(&self.acts[j]),
                "activation code exceeds 8 bits"
            );
            let a = self.acts[j] as i16;
            block += v as i32 * a as i32;
        }
        block
    }
}

impl SimdOp for NibbleDot<'_> {
    type Output = i64;

    fn scalar(self) -> i64 {
        let mut total = 0i64;
        let mut start = 0usize;
        while start < self.acts.len() {
            let end = (start + MAC_BLOCK).min(self.acts.len());
            total += self.scalar_block(start, end) as i64;
            start = end;
        }
        total
    }

    #[cfg(target_arch = "x86_64")]
    fn avx2_fma(self) -> i64 {
        // SAFETY: dispatched only when `Isa::Avx2Fma` probed available.
        unsafe { x86::nibble_dot_avx2(&self) }
    }

    #[cfg(target_arch = "x86_64")]
    fn avx512(self) -> i64 {
        // SAFETY: dispatched only when `Isa::Avx512` probed available.
        unsafe { x86::nibble_dot_avx512(&self) }
    }

    #[cfg(target_arch = "aarch64")]
    fn neon(self) -> i64 {
        // SAFETY: dispatched only when `Isa::Neon` probed available.
        unsafe { neon::nibble_dot_neon(&self) }
    }
}

/// AVX2+FMA and AVX-512 arms. Every function carries the matching
/// `#[target_feature]` and is only reachable through [`SimdOp::run`] with an
/// ISA the dispatch layer probed available, which makes the calls sound.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MicroTile, NibbleDot, MR, NR};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_tile_avx2(mut op: MicroTile<'_>) {
        let mut tile = op.load_tile();
        // One 8-lane accumulator per row: lane c is output element (r, c),
        // and in bit-exact mode each lane folds ascending k with separate
        // mul + add — the scalar chain, eight elements at a time.
        let mut acc = [_mm256_setzero_ps(); MR];
        for (a, row) in acc.iter_mut().zip(tile.iter()) {
            *a = _mm256_loadu_ps(row.as_ptr());
        }
        for p in 0..op.kc {
            let bb = _mm256_loadu_ps(op.b_tile.as_ptr().add(p * NR));
            for (r, a) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*op.a_tile.get_unchecked(p * MR + r));
                *a = if op.fast {
                    _mm256_fmadd_ps(av, bb, *a)
                } else {
                    _mm256_add_ps(*a, _mm256_mul_ps(av, bb))
                };
            }
        }
        for (row, a) in tile.iter_mut().zip(acc.iter()) {
            _mm256_storeu_ps(row.as_mut_ptr(), *a);
        }
        op.store_tile(&tile);
    }

    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    pub unsafe fn micro_tile_avx512(mut op: MicroTile<'_>) {
        let mut tile = op.load_tile();
        // Row-pair accumulators: acc[q] lanes 0..7 hold row 2q, lanes 8..15
        // row 2q+1. Same per-lane fold as the scalar chain in bit-exact mode.
        let mut acc = [_mm512_setzero_ps(); MR / 2];
        let mut idx = [_mm512_setzero_si512(); MR / 2];
        for q in 0..MR / 2 {
            let lo = _mm256_loadu_ps(tile[2 * q].as_ptr());
            let hi = _mm256_loadu_ps(tile[2 * q + 1].as_ptr());
            acc[q] = _mm512_insertf32x8::<1>(_mm512_castps256_ps512(lo), hi);
            let (l, h) = (2 * q as i32, 2 * q as i32 + 1);
            // Broadcast map for the packed a column: lanes 0..7 take entry
            // 2q, lanes 8..15 entry 2q+1.
            idx[q] = _mm512_set_epi32(h, h, h, h, h, h, h, h, l, l, l, l, l, l, l, l);
        }
        for p in 0..op.kc {
            let bcol = _mm256_loadu_ps(op.b_tile.as_ptr().add(p * NR));
            let b2 = _mm512_insertf32x8::<1>(_mm512_castps256_ps512(bcol), bcol);
            let acol = _mm512_castps256_ps512(_mm256_loadu_ps(op.a_tile.as_ptr().add(p * MR)));
            for q in 0..MR / 2 {
                let av = _mm512_permutexvar_ps(idx[q], acol);
                acc[q] = if op.fast {
                    _mm512_fmadd_ps(av, b2, acc[q])
                } else {
                    _mm512_add_ps(acc[q], _mm512_mul_ps(av, b2))
                };
            }
        }
        for q in 0..MR / 2 {
            _mm256_storeu_ps(tile[2 * q].as_mut_ptr(), _mm512_castps512_ps256(acc[q]));
            _mm256_storeu_ps(
                tile[2 * q + 1].as_mut_ptr(),
                _mm512_extractf32x8_ps::<1>(acc[q]),
            );
        }
        op.store_tile(&tile);
    }

    /// Per-64-bit-lane popcount without VPOPCNTDQ: the nibble lookup-table
    /// method (`shuffle_epi8` as a 16-entry table) plus `sad_epu8` to fold
    /// bytes into the four word lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi64_avx2(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0F);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64_avx2(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn and_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(4 * i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(4 * i).cast());
            acc = _mm256_add_epi64(acc, popcnt_epi64_avx2(_mm256_and_si256(va, vb)));
        }
        let mut total = hsum_epi64_avx2(acc);
        for i in 4 * chunks..a.len() {
            total += (a[i] & b[i]).count_ones() as u64;
        }
        total
    }

    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
    pub unsafe fn and_popcount_avx512(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = _mm512_setzero_si512();
        let chunks = a.len() / 8;
        for i in 0..chunks {
            let va = _mm512_loadu_epi64(a.as_ptr().add(8 * i).cast());
            let vb = _mm512_loadu_epi64(b.as_ptr().add(8 * i).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64;
        for i in 8 * chunks..a.len() {
            total += (a[i] & b[i]).count_ones() as u64;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn xnor_dot_avx2(w: &[u64], x: &[u64], m: &[u64]) -> (u64, u64) {
        let mut agree_acc = _mm256_setzero_si256();
        let mut lanes_acc = _mm256_setzero_si256();
        let chunks = w.len() / 4;
        for i in 0..chunks {
            let vw = _mm256_loadu_si256(w.as_ptr().add(4 * i).cast());
            let vx = _mm256_loadu_si256(x.as_ptr().add(4 * i).cast());
            let vm = _mm256_loadu_si256(m.as_ptr().add(4 * i).cast());
            // (w XNOR x) ∧ m = ANDNOT(w ⊕ x, m).
            let agree = _mm256_andnot_si256(_mm256_xor_si256(vw, vx), vm);
            agree_acc = _mm256_add_epi64(agree_acc, popcnt_epi64_avx2(agree));
            lanes_acc = _mm256_add_epi64(lanes_acc, popcnt_epi64_avx2(vm));
        }
        let mut agree = hsum_epi64_avx2(agree_acc);
        let mut lanes = hsum_epi64_avx2(lanes_acc);
        for i in 4 * chunks..w.len() {
            agree += (!(w[i] ^ x[i]) & m[i]).count_ones() as u64;
            lanes += m[i].count_ones() as u64;
        }
        (agree, lanes)
    }

    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
    pub unsafe fn xnor_dot_avx512(w: &[u64], x: &[u64], m: &[u64]) -> (u64, u64) {
        let mut agree_acc = _mm512_setzero_si512();
        let mut lanes_acc = _mm512_setzero_si512();
        let chunks = w.len() / 8;
        for i in 0..chunks {
            let vw = _mm512_loadu_epi64(w.as_ptr().add(8 * i).cast());
            let vx = _mm512_loadu_epi64(x.as_ptr().add(8 * i).cast());
            let vm = _mm512_loadu_epi64(m.as_ptr().add(8 * i).cast());
            // Truth table 0x82 is exactly (a XNOR b) ∧ c in one op.
            let agree = _mm512_ternarylogic_epi64::<0x82>(vw, vx, vm);
            agree_acc = _mm512_add_epi64(agree_acc, _mm512_popcnt_epi64(agree));
            lanes_acc = _mm512_add_epi64(lanes_acc, _mm512_popcnt_epi64(vm));
        }
        let mut agree = _mm512_reduce_add_epi64(agree_acc) as u64;
        let mut lanes = _mm512_reduce_add_epi64(lanes_acc) as u64;
        for i in 8 * chunks..w.len() {
            agree += (!(w[i] ^ x[i]) & m[i]).count_ones() as u64;
            lanes += m[i].count_ones() as u64;
        }
        (agree, lanes)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn nibble_dot_avx2(op: &NibbleDot<'_>) -> i64 {
        let acts = op.acts;
        let n1 = _mm_set1_epi8(op.n_minus_1 as i8);
        let lowmask = _mm_set1_epi8(0x0F);
        let mut total = 0i64;
        let mut start = 0usize;
        while start < acts.len() {
            let end = (start + super::MAC_BLOCK).min(acts.len());
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut j = start;
            while j + 16 <= end {
                // 8 packed bytes = 16 levels, low nibble first; `j` stays
                // even (16-step from an even block start), so `j / 2` is the
                // exact byte offset.
                let bytes = _mm_loadl_epi64(op.nibbles.as_ptr().add(j / 2).cast());
                let lo = _mm_and_si128(bytes, lowmask);
                let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), lowmask);
                // lo holds even elements, hi odd — interleave restores order.
                let levels = _mm_unpacklo_epi8(lo, hi);
                // v = 2k − (n−1) fits i8 for every nibble level.
                let v = _mm_sub_epi8(_mm_add_epi8(levels, levels), n1);
                let v0 = _mm256_cvtepi8_epi32(v);
                let v1 = _mm256_cvtepi8_epi32(_mm_srli_si128::<8>(v));
                let a0 = _mm256_loadu_si256(acts.as_ptr().add(j).cast());
                let a1 = _mm256_loadu_si256(acts.as_ptr().add(j + 8).cast());
                acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(v0, a0));
                acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(v1, a1));
                j += 16;
            }
            // Lane partials stay far below i32 range inside one MAC_BLOCK
            // (≤ MAC_BLOCK · 15 · 255 ≈ 3.1e7 across all lanes combined).
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), _mm256_add_epi32(acc0, acc1));
            total += lanes.iter().map(|&v| v as i64).sum::<i64>();
            total += op.scalar_block(j, end) as i64;
            start = end;
        }
        total
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn nibble_dot_avx512(op: &NibbleDot<'_>) -> i64 {
        let acts = op.acts;
        let n1 = _mm_set1_epi8(op.n_minus_1 as i8);
        let lowmask = _mm_set1_epi8(0x0F);
        let mut total = 0i64;
        let mut start = 0usize;
        while start < acts.len() {
            let end = (start + super::MAC_BLOCK).min(acts.len());
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut j = start;
            while j + 32 <= end {
                // 16 packed bytes = 32 levels, decoded in the SSE domain and
                // widened i8 → i32 into the 512-bit MAC lanes.
                let bytes = _mm_loadu_si128(op.nibbles.as_ptr().add(j / 2).cast());
                let lo = _mm_and_si128(bytes, lowmask);
                let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), lowmask);
                let lo16 = _mm_unpacklo_epi8(lo, hi);
                let hi16 = _mm_unpackhi_epi8(lo, hi);
                let v0 = _mm512_cvtepi8_epi32(_mm_sub_epi8(_mm_add_epi8(lo16, lo16), n1));
                let v1 = _mm512_cvtepi8_epi32(_mm_sub_epi8(_mm_add_epi8(hi16, hi16), n1));
                let a0 = _mm512_loadu_epi32(acts.as_ptr().add(j).cast());
                let a1 = _mm512_loadu_epi32(acts.as_ptr().add(j + 16).cast());
                acc0 = _mm512_add_epi32(acc0, _mm512_mullo_epi32(v0, a0));
                acc1 = _mm512_add_epi32(acc1, _mm512_mullo_epi32(v1, a1));
                j += 32;
            }
            // The whole-block sum is ≤ MAC_BLOCK · 15 · 255 ≈ 3.1e7, so the
            // i32 reduction cannot overflow.
            total += _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1)) as i64;
            total += op.scalar_block(j, end) as i64;
            start = end;
        }
        total
    }
}

/// AArch64 NEON arms, mirroring the x86 module. Compiled only on `aarch64`;
/// on other targets the `SimdOp` default routes `Isa::Neon` to scalar (and
/// the dispatch layer never reports NEON available there anyway).
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{MicroTile, NibbleDot, MR, NR};
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn micro_tile_neon(mut op: MicroTile<'_>) {
        let mut tile = op.load_tile();
        // Two 4-lane accumulators per row cover the NR = 8 tile width.
        let mut acc = [[vdupq_n_f32(0.0); 2]; MR];
        for r in 0..MR {
            acc[r][0] = vld1q_f32(tile[r].as_ptr());
            acc[r][1] = vld1q_f32(tile[r].as_ptr().add(4));
        }
        for p in 0..op.kc {
            let b0 = vld1q_f32(op.b_tile.as_ptr().add(p * NR));
            let b1 = vld1q_f32(op.b_tile.as_ptr().add(p * NR + 4));
            for r in 0..MR {
                let av = vdupq_n_f32(*op.a_tile.get_unchecked(p * MR + r));
                if op.fast {
                    acc[r][0] = vfmaq_f32(acc[r][0], av, b0);
                    acc[r][1] = vfmaq_f32(acc[r][1], av, b1);
                } else {
                    acc[r][0] = vaddq_f32(acc[r][0], vmulq_f32(av, b0));
                    acc[r][1] = vaddq_f32(acc[r][1], vmulq_f32(av, b1));
                }
            }
        }
        for r in 0..MR {
            vst1q_f32(tile[r].as_mut_ptr(), acc[r][0]);
            vst1q_f32(tile[r].as_mut_ptr().add(4), acc[r][1]);
        }
        op.store_tile(&tile);
    }

    /// Per-64-bit-lane popcount: byte counts then pairwise widening adds.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn popcnt_words(v: uint64x2_t) -> uint64x2_t {
        vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))))
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn hsum_u64(v: uint64x2_t) -> u64 {
        vgetq_lane_u64::<0>(v) + vgetq_lane_u64::<1>(v)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn and_popcount_neon(a: &[u64], b: &[u64]) -> u64 {
        let mut acc = vdupq_n_u64(0);
        let chunks = a.len() / 2;
        for i in 0..chunks {
            let va = vld1q_u64(a.as_ptr().add(2 * i));
            let vb = vld1q_u64(b.as_ptr().add(2 * i));
            acc = vaddq_u64(acc, popcnt_words(vandq_u64(va, vb)));
        }
        let mut total = hsum_u64(acc);
        for i in 2 * chunks..a.len() {
            total += (a[i] & b[i]).count_ones() as u64;
        }
        total
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn xnor_dot_neon(w: &[u64], x: &[u64], m: &[u64]) -> (u64, u64) {
        let mut agree_acc = vdupq_n_u64(0);
        let mut lanes_acc = vdupq_n_u64(0);
        let chunks = w.len() / 2;
        for i in 0..chunks {
            let vw = vld1q_u64(w.as_ptr().add(2 * i));
            let vx = vld1q_u64(x.as_ptr().add(2 * i));
            let vm = vld1q_u64(m.as_ptr().add(2 * i));
            // (w XNOR x) ∧ m = BIC(m, w ⊕ x) — BIC is a ∧ ¬b.
            let agree = vbicq_u64(vm, veorq_u64(vw, vx));
            agree_acc = vaddq_u64(agree_acc, popcnt_words(agree));
            lanes_acc = vaddq_u64(lanes_acc, popcnt_words(vm));
        }
        let mut agree = hsum_u64(agree_acc);
        let mut lanes = hsum_u64(lanes_acc);
        for i in 2 * chunks..w.len() {
            agree += (!(w[i] ^ x[i]) & m[i]).count_ones() as u64;
            lanes += m[i].count_ones() as u64;
        }
        (agree, lanes)
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn nibble_dot_neon(op: &NibbleDot<'_>) -> i64 {
        let acts = op.acts;
        let n1 = vdup_n_s8(op.n_minus_1 as i8);
        let lowmask = vdup_n_u8(0x0F);
        let mut total = 0i64;
        let mut start = 0usize;
        while start < acts.len() {
            let end = (start + super::MAC_BLOCK).min(acts.len());
            let mut acc = vdupq_n_s32(0);
            let mut j = start;
            while j + 16 <= end {
                // 8 packed bytes = 16 levels, low nibble first.
                let bytes = vld1_u8(op.nibbles.as_ptr().add(j / 2));
                let lo = vand_u8(bytes, lowmask);
                let hi = vshr_n_u8::<4>(bytes);
                // Interleave back to element order (lo = even, hi = odd).
                let halves = [(vzip1_u8(lo, hi), j), (vzip2_u8(lo, hi), j + 8)];
                for (half, base) in halves {
                    let k = vreinterpret_s8_u8(half);
                    let v8 = vsub_s8(vadd_s8(k, k), n1);
                    let v16 = vmovl_s8(v8);
                    let v_lo = vmovl_s16(vget_low_s16(v16));
                    let v_hi = vmovl_s16(vget_high_s16(v16));
                    let a_lo = vld1q_s32(acts.as_ptr().add(base));
                    let a_hi = vld1q_s32(acts.as_ptr().add(base + 4));
                    acc = vmlaq_s32(acc, v_lo, a_lo);
                    acc = vmlaq_s32(acc, v_hi, a_hi);
                }
                j += 16;
            }
            // Whole-block sum ≤ MAC_BLOCK · 15 · 255 ≈ 3.1e7: i32-safe.
            total += vaddvq_s32(acc) as i64;
            total += op.scalar_block(j, end) as i64;
            start = end;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::with_thread_scratch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn check_all_layouts(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        // (a_rs, a_cs) for NN and TN storage; (b_rs, b_cs) for NN and NT.
        for (a_rs, a_cs) in [(k, 1), (1, m)] {
            for (b_rs, b_cs) in [(n, 1), (1, k)] {
                let mut want = vec![0.0f32; m * n];
                naive_gemm(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut want);
                let mut got = vec![f32::NAN; m * n];
                with_thread_scratch(|s| {
                    gemm_packed(m, n, k, &a, a_rs, a_cs, &b, b_rs, b_cs, &mut got, s)
                });
                for i in 0..m * n {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "m={m} n={n} k={k} a=({a_rs},{a_cs}) b=({b_rs},{b_cs}) elem {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_bitwise_at_tile_edges() {
        for &m in &[1, 7, 8, 9, 16] {
            for &n in &[1, 7, 8, 9, 17] {
                for &k in &[1, 3, 8, 31] {
                    check_all_layouts(m, n, k, (m * 1000 + n * 100 + k) as u64);
                }
            }
        }
    }

    #[test]
    fn matches_naive_across_kc_boundary() {
        check_all_layouts(5, 6, KC - 1, 1);
        check_all_layouts(5, 6, KC, 2);
        check_all_layouts(5, 6, KC + 1, 3);
        check_all_layouts(3, 3, 2 * KC + 7, 4);
    }

    #[test]
    fn large_parallel_shape_matches_naive_bitwise() {
        // Big enough to cross PARALLEL_FLOP_CUTOFF and span many tiles.
        check_all_layouts(70, 65, 40, 9);
    }

    #[test]
    fn zero_sized_dims_yield_zero_output() {
        let mut s = Scratch::new();
        let mut out = vec![5.0f32; 0];
        gemm_packed(0, 0, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        let mut out = vec![5.0f32; 6];
        gemm_packed(2, 3, 0, &[], 1, 1, &[], 1, 1, &mut out, &mut s);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn nan_and_inf_propagate() {
        let mut s = Scratch::new();
        let a = vec![0.0f32, 1.0];
        let mut b = vec![f32::NAN, 2.0];
        let mut out = vec![0.0f32; 1];
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·NaN must reach the accumulator");
        b[0] = f32::INFINITY;
        gemm_packed(1, 1, 2, &a, 2, 1, &b, 1, 1, &mut out, &mut s);
        assert!(out[0].is_nan(), "0·Inf = NaN must reach the accumulator");
    }

    #[test]
    fn steady_state_calls_do_not_allocate() {
        let mut s = Scratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let a = fill(&mut rng, 20 * 30);
        let b = fill(&mut rng, 30 * 10);
        let mut out = vec![0.0f32; 20 * 10];
        gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        let after_warmup = s.fresh_allocs();
        for _ in 0..5 {
            gemm_packed(20, 10, 30, &a, 30, 1, &b, 10, 1, &mut out, &mut s);
        }
        assert_eq!(s.fresh_allocs(), after_warmup);
    }

    // --- packed low-bit integer kernels ---

    fn random_codes(rng: &mut StdRng, len: usize, bits: u32) -> Vec<i32> {
        (0..len).map(|_| rng.gen_range(0..1i32 << bits)).collect()
    }

    #[test]
    fn bitplane_round_trip_across_word_edges() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in 1..=8u32 {
            for &len in &[1usize, 7, 63, 64, 65, 130, 256] {
                let codes = random_codes(&mut rng, len, bits);
                let mut planes = vec![u64::MAX; bits as usize * plane_words(len)];
                pack_bitplanes(&codes, bits, &mut planes);
                let mut back = vec![-1i32; len];
                unpack_bitplanes(&planes, bits, len, &mut back);
                assert_eq!(back, codes, "bits={bits} len={len}");
            }
        }
    }

    #[test]
    fn bitplane_padding_bits_stay_zero() {
        let codes = vec![3i32; 5]; // 5 lanes, 59 padding bits per plane
        let mut planes = vec![0u64; 2];
        pack_bitplanes(&codes, 2, &mut planes);
        for plane in &planes {
            assert_eq!(plane & !0x1F, 0, "padding lanes must stay clear");
        }
    }

    #[test]
    fn nibble_round_trip_odd_and_even_lengths() {
        let mut rng = StdRng::seed_from_u64(13);
        for &len in &[1usize, 2, 7, 8, 9, 64, 255, 256, 257] {
            let levels = random_codes(&mut rng, len, 4);
            let mut packed = vec![0xFFu8; len.div_ceil(2)];
            pack_nibbles(&levels, &mut packed);
            let mut back = vec![-1i32; len];
            unpack_nibbles(&packed, len, &mut back);
            assert_eq!(back, levels, "len={len}");
        }
    }

    #[test]
    fn xnor_popcount_matches_scalar_signed_dot() {
        let mut rng = StdRng::seed_from_u64(17);
        for &len in &[1usize, 8, 63, 64, 65, 200] {
            let w: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
            let x: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
            let to_sign = |codes: &[i32]| {
                let lv: Vec<i32> = codes.iter().map(|&c| i32::from(c == 1)).collect();
                let mut plane = vec![0u64; plane_words(len)];
                pack_bitplanes(&lv, 1, &mut plane);
                plane
            };
            let ones: Vec<i32> = vec![1; len];
            let live = to_sign(&ones);
            let got = xnor_popcount_dot(&to_sign(&w), &to_sign(&x), &live);
            assert_eq!(got, scalar_code_dot(&w, &x), "len={len}");
        }
    }

    #[test]
    fn sign_plane_dot_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(19);
        for act_bits in 1..=8u32 {
            for &len in &[1usize, 9, 64, 65, 192] {
                let w: Vec<i32> = (0..len).map(|_| if rng.gen() { 1 } else { -1 }).collect();
                let acts = random_codes(&mut rng, len, act_bits);
                let levels: Vec<i32> = w.iter().map(|&c| i32::from(c == 1)).collect();
                let mut sign = vec![0u64; plane_words(len)];
                pack_bitplanes(&levels, 1, &mut sign);
                let mut planes = vec![0u64; act_bits as usize * plane_words(len)];
                pack_bitplanes(&acts, act_bits, &mut planes);
                let sum: i64 = acts.iter().map(|&a| a as i64).sum();
                let got = sign_plane_dot(&sign, &planes, act_bits, sum);
                assert_eq!(got, scalar_code_dot(&w, &acts), "bits={act_bits} len={len}");
            }
        }
    }

    #[test]
    fn nibble_dot_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for wbits in 2..=4u32 {
            let n_minus_1 = (1i32 << wbits) - 1;
            for &len in &[1usize, 2, 9, 64, 255, 300] {
                let levels = random_codes(&mut rng, len, wbits);
                let acts = random_codes(&mut rng, len, 8);
                let mut packed = vec![0u8; len.div_ceil(2)];
                pack_nibbles(&levels, &mut packed);
                let codes: Vec<i32> = levels.iter().map(|&k| 2 * k - n_minus_1).collect();
                let got = nibble_dot_i8(&packed, n_minus_1, &acts);
                assert_eq!(
                    got,
                    scalar_code_dot(&codes, &acts),
                    "wbits={wbits} len={len}"
                );
            }
        }
    }

    #[test]
    fn nibble_dot_crosses_block_boundary_exactly() {
        // Lengths straddling MAC_BLOCK exercise the i32→i64 fold seam.
        let mut rng = StdRng::seed_from_u64(29);
        for &len in &[MAC_BLOCK - 1, MAC_BLOCK, MAC_BLOCK + 1] {
            let levels = random_codes(&mut rng, len, 4);
            let acts = random_codes(&mut rng, len, 8);
            let mut packed = vec![0u8; len.div_ceil(2)];
            pack_nibbles(&levels, &mut packed);
            let codes: Vec<i32> = levels.iter().map(|&k| 2 * k - 15).collect();
            assert_eq!(
                nibble_dot_i8(&packed, 15, &acts),
                scalar_code_dot(&codes, &acts),
                "len={len}"
            );
        }
    }
}
