use crate::{Result, Shape, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single data type flowing through the CBQ stack:
/// activations, weights, gradients and datasets all use it. Storage is a
/// flat `Vec<f32>` plus a [`Shape`]; there are no strided views, so every
/// operation's memory behaviour is obvious.
///
/// # Example
///
/// ```
/// use cbq_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2])?;
/// assert_eq!(t.max_abs(), 4.0);
/// assert_eq!(t.sum(), -2.0);
/// let relu = t.map(|x| x.max(0.0));
/// assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
/// # Ok::<(), cbq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::full(dims, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor whose element at linear index `i` is `f(i)`.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with elements drawn from `N(0, std^2)`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        // Box-Muller transform: two uniforms give two independent normals.
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { data, shape }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        assert!(lo < hi, "uniform range must be non-empty");
        Tensor::from_fn(dims, |_| rng.gen_range(lo..hi))
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's shape as a [`Shape`] value.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on an out-of-bounds index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on an out-of-bounds index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.len() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Consuming reshape that avoids copying the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn into_reshape(self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data,
            shape,
        })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.len()]),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.shape.ensure_same(&other.shape)?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `alpha * other` into `self` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.shape.ensure_same(&other.shape)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, in place.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns the tensor scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Sets every element to zero without reallocating.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements (f64 accumulation for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute value, or `0.0` for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Largest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .reduce(f32::max)
            .ok_or(TensorError::Empty)
    }

    /// Smallest element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .reduce(f32::min)
            .ok_or(TensorError::Empty)
    }

    /// Index of the largest element in a rank-1 tensor or flattened view.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::Empty);
        }
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax for a rank-2 `[rows, cols]` tensor — the predicted
    /// class for each sample in a logits batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2 and
    /// [`TensorError::Empty`] if it has no columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        self.shape.ensure_rank(2)?;
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if cols == 0 {
            return Err(TensorError::Empty);
        }
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &x) in row.iter().enumerate() {
                if x > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        self.shape.ensure_rank(2)?;
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut data = vec![0.0f32; self.data.len()];
        for r in 0..rows {
            for c in 0..cols {
                data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(data, &[cols, rows])
    }

    /// Copies row `row` of a rank-2 tensor into a new rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 input or
    /// [`TensorError::AxisOutOfRange`] when `row` is out of bounds.
    pub fn row(&self, row: usize) -> Result<Tensor> {
        self.shape.ensure_rank(2)?;
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if row >= rows {
            return Err(TensorError::AxisOutOfRange {
                axis: row,
                rank: rows,
            });
        }
        Tensor::from_vec(self.data[row * cols..(row + 1) * cols].to_vec(), &[cols])
    }

    /// Stacks rank-`r` tensors of identical shape into a rank-`r+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] when the items disagree in shape.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::Empty)?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            first.shape.ensure_same(&item.shape)?;
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape());
        Tensor::from_vec(data, &dims)
    }

    /// Splits the leading axis, returning one tensor per slice. Inverse of
    /// [`Tensor::stack`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for a rank-0 tensor.
    pub fn unstack(&self) -> Result<Vec<Tensor>> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dims()[0];
        let inner: Vec<usize> = self.shape.dims()[1..].to_vec();
        let chunk = inner.iter().product::<usize>();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(Tensor::from_vec(
                self.data[i * chunk..(i + 1) * chunk].to_vec(),
                &inner,
            )?);
        }
        Ok(out)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>() as f32
    }

    /// Number of elements for which `pred` holds.
    pub fn count(&self, pred: impl Fn(f32) -> bool) -> usize {
        self.data.iter().filter(|&&x| pred(x)).count()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn fill_constructors() {
        assert!(Tensor::zeros(&[3]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[3], 2.5).as_slice().iter().all(|&x| x == 2.5));
        assert_eq!(Tensor::scalar(7.0).len(), 1);
    }

    #[test]
    fn set_and_at_round_trip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[0, 1], 9.0);
        assert_eq!(t.at(&[0, 1]), 9.0);
        assert_eq!(t.at(&[1, 0]), 0.0);
    }

    #[test]
    fn randn_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(&[1000], -1.0, 1.0, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.max().unwrap(), 2.0);
        assert_eq!(t.min().unwrap(), -3.0);
        assert_eq!(t.argmax().unwrap(), 2);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0]);
        assert!(t.max().is_err());
        assert!(t.min().is_err());
        assert!(t.argmax().is_err());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn argmax_rows_per_sample() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.transpose2d().unwrap(), t);
    }

    #[test]
    fn stack_unstack_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let parts = s.unstack().unwrap();
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn stack_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.5], &[2, 1]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn count_predicate() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0, 3.0], &[4]).unwrap();
        assert_eq!(t.count(|x| x > 0.0), 2);
    }
}
