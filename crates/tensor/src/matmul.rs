use crate::parallel::parallel_chunks_mut;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Uses an ikj loop order (streaming the right operand row-wise) and
    /// parallelizes over output rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 operands and
    /// [`TensorError::MatmulDimMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().ensure_rank(2)?;
        rhs.shape_obj().ensure_rank(2)?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            let a = self.as_slice();
            let b = rhs.as_slice();
            parallel_chunks_mut(&mut out, n, |i, row| {
                for p in 0..k {
                    let aik = a[i * k + p];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in row.iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T x rhs`: `[k, m]^T x [k, n] -> [m, n]` without materializing
    /// the transpose. Used for weight gradients (`x^T · dy`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with the inner dimension taken
    /// from `self`'s rows.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().ensure_rank(2)?;
        rhs.shape_obj().ensure_rank(2)?;
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            let a = self.as_slice();
            let b = rhs.as_slice();
            parallel_chunks_mut(&mut out, n, |i, row| {
                for p in 0..k {
                    let a_pi = a[p * m + i];
                    if a_pi == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in row.iter_mut().zip(brow) {
                        *o += a_pi * bv;
                    }
                }
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x rhs^T`: `[m, k] x [n, k]^T -> [m, n]` without materializing
    /// the transpose. Used for input gradients (`dy · w`) when weights are
    /// stored `[out, in]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with the inner dimension taken
    /// from both operands' columns.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.shape_obj().ensure_rank(2)?;
        rhs.shape_obj().ensure_rank(2)?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                lhs_cols: k,
                rhs_rows: k2,
            });
        }
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            let a = self.as_slice();
            let b = rhs.as_slice();
            parallel_chunks_mut(&mut out, n, |i, row| {
                let arow = &a[i * k..(i + 1) * k];
                for (j, o) in row.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            });
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 9], 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 3], 1.0, &mut rng);
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            a.matmul(&v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        let prod = a.matmul(&eye).unwrap();
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_sized_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
        let d = Tensor::zeros(&[2, 3])
            .matmul(&Tensor::zeros(&[3, 0]))
            .unwrap();
        assert_eq!(d.shape(), &[2, 0]);
    }
}
