use crate::kernels::gemm_packed;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::{Result, Tensor, TensorError};

/// Validates rank-2 operands, then returns their shapes as
/// `([rows_a, cols_a], [rows_b, cols_b])`.
fn rank2_dims(lhs: &Tensor, rhs: &Tensor) -> Result<([usize; 2], [usize; 2])> {
    lhs.shape_obj().ensure_rank(2)?;
    rhs.shape_obj().ensure_rank(2)?;
    Ok((
        [lhs.shape()[0], lhs.shape()[1]],
        [rhs.shape()[0], rhs.shape()[1]],
    ))
}

/// Checks the contraction dimensions agree.
fn check_inner(inner_lhs: usize, inner_rhs: usize) -> Result<()> {
    if inner_lhs != inner_rhs {
        return Err(TensorError::MatmulDimMismatch {
            lhs_cols: inner_lhs,
            rhs_rows: inner_rhs,
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs on the packed tiled kernel (see [`crate::kernels`]), which
    /// accumulates every output element in a fixed ascending-k order —
    /// results are bit-identical at any worker count, and non-finite
    /// operands propagate per IEEE semantics (no zero-skip short-circuits).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 operands and
    /// [`TensorError::MatmulDimMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let ([m, k], [k2, n]) = rank2_dims(self, rhs)?;
        check_inner(k, k2)?;
        let mut out = vec![0.0f32; m * n];
        with_thread_scratch(|s| {
            gemm_packed(
                m,
                n,
                k,
                self.as_slice(),
                k,
                1,
                rhs.as_slice(),
                n,
                1,
                &mut out,
                s,
            )
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T x rhs`: `[k, m]^T x [k, n] -> [m, n]` without materializing
    /// the transpose. Used for weight gradients (`x^T · dy`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with the inner dimension taken
    /// from `self`'s rows.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let ([k, m], [k2, n]) = rank2_dims(self, rhs)?;
        check_inner(k, k2)?;
        let mut out = vec![0.0f32; m * n];
        with_thread_scratch(|s| {
            gemm_packed(
                m,
                n,
                k,
                self.as_slice(),
                1,
                m,
                rhs.as_slice(),
                n,
                1,
                &mut out,
                s,
            )
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x rhs^T`: `[m, k] x [n, k]^T -> [m, n]` without materializing
    /// the transpose. Used for input gradients (`dy · w`) when weights are
    /// stored `[out, in]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with the inner dimension taken
    /// from both operands' columns.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let ([m, k], [n, k2]) = rank2_dims(self, rhs)?;
        check_inner(k, k2)?;
        let mut out = vec![0.0f32; m * n];
        with_thread_scratch(|s| {
            gemm_packed(
                m,
                n,
                k,
                self.as_slice(),
                k,
                1,
                rhs.as_slice(),
                1,
                k,
                &mut out,
                s,
            )
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Allocation-free [`Tensor::matmul_nt`]: writes `[m, n]` row-major into
    /// `out`, drawing pack buffers from `scratch`.
    ///
    /// # Errors
    ///
    /// Same shape conditions as [`Tensor::matmul_nt`], plus
    /// [`TensorError::LengthMismatch`] when `out` is not `m * n` long.
    pub fn matmul_nt_into(
        &self,
        rhs: &Tensor,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) -> Result<()> {
        let ([m, k], [n, k2]) = rank2_dims(self, rhs)?;
        check_inner(k, k2)?;
        if out.len() != m * n {
            return Err(TensorError::LengthMismatch {
                expected: m * n,
                actual: out.len(),
            });
        }
        gemm_packed(
            m,
            n,
            k,
            self.as_slice(),
            k,
            1,
            rhs.as_slice(),
            1,
            k,
            out,
            scratch,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 9], 1.0, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "packed kernel must match naive");
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 3], 1.0, &mut rng);
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_nt_into_matches_and_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::randn(&[9, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let want = a.matmul_nt(&b).unwrap();
        let mut s = Scratch::new();
        let mut out = s.take_f32(9 * 5);
        a.matmul_nt_into(&b, &mut out, &mut s).unwrap();
        assert_eq!(out.as_slice(), want.as_slice());
        let misses = s.fresh_allocs();
        s.recycle_f32(out);
        let mut out = s.take_f32(9 * 5);
        a.matmul_nt_into(&b, &mut out, &mut s).unwrap();
        assert_eq!(s.fresh_allocs(), misses, "steady state must not allocate");
        let wrong = &mut [0.0f32; 3][..];
        assert!(a.matmul_nt_into(&b, wrong, &mut s).is_err());
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            a.matmul(&v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        let prod = a.matmul(&eye).unwrap();
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_sized_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
        let d = Tensor::zeros(&[2, 3])
            .matmul(&Tensor::zeros(&[3, 0]))
            .unwrap();
        assert_eq!(d.shape(), &[2, 0]);
    }

    /// Regression for the removed `aik == 0.0` skip branches: a zero on the
    /// left times NaN/Inf on the right must poison the product, so the
    /// resilience guards can see non-finite activations.
    #[test]
    fn zero_times_nan_propagates_through_all_variants() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[2, 1]).unwrap();
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());
        let a_t = Tensor::from_vec(vec![0.0, 0.0], &[2, 1]).unwrap();
        assert!(a_t.matmul_tn(&b).unwrap().as_slice()[0].is_nan());
        let b_nt = Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[1, 2]).unwrap();
        assert!(a.matmul_nt(&b_nt).unwrap().as_slice()[0].is_nan());
    }
}
