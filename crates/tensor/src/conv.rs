//! 2-D convolution via im2col/col2im, with full backward passes.
//!
//! Layout conventions: activations are `[N, C, H, W]`, weights are
//! `[O, C, KH, KW]`, biases are `[O]`. The whole minibatch is unfolded at
//! once into a single `[C*KH*KW, N*OH*OW]` matrix (column block `ni` is
//! exactly the per-item [`im2col`] matrix of item `ni`), so the forward
//! pass is **one** GEMM per layer instead of N small ones, and the backward
//! pass reuses the same batched matrix for both the weight gradient (one
//! `dY · colsᵀ` GEMM over the folded batch-and-space dimension) and the
//! input gradient (one `Wᵀ · dY` GEMM followed by per-item [`col2im`]).
//! The per-item [`im2col`]/[`col2im`] pair is kept as the reference the
//! batched path is property-tested against.
//!
//! Every step has an `_into` variant that writes caller-provided buffers
//! and draws temporaries from a [`Scratch`] arena, which is what makes the
//! probe forward path allocation-free in steady state.

use crate::kernels::gemm_packed;
use crate::scratch::{with_thread_scratch, Scratch};
use crate::{Result, Tensor, TensorError};

/// Geometry of a convolution or correlation: stride and zero padding,
/// identical in both spatial directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Step between receptive fields.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl ConvSpec {
    /// Unit-stride, unpadded convolution.
    pub fn new(stride: usize, padding: usize) -> Self {
        ConvSpec { stride, padding }
    }

    /// Output spatial size for an input extent `n` and kernel extent `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero or the
    /// kernel does not fit in the padded input.
    pub fn out_extent(&self, n: usize, k: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be positive".into(),
            ));
        }
        let padded = n + 2 * self.padding;
        if k == 0 || k > padded {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel extent {k} does not fit padded input extent {padded}"
            )));
        }
        Ok((padded - k) / self.stride + 1)
    }
}

impl Default for ConvSpec {
    fn default() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weights, `[O, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[O]`.
    pub grad_bias: Tensor,
}

/// Unfolds one image `[C, H, W]` into the im2col matrix
/// `[C*KH*KW, OH*OW]` for the given kernel size and geometry.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-3 input and
/// [`TensorError::InvalidGeometry`] when the kernel does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Result<Tensor> {
    input.shape_obj().ensure_rank(3)?;
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    unfold_item(
        input.as_slice(),
        c,
        h,
        w,
        kh,
        kw,
        oh,
        ow,
        spec,
        &mut out,
        cols,
        0,
    );
    Tensor::from_vec(out, &[rows, cols])
}

/// Copies one image's receptive fields into its column block of an
/// (possibly batched) im2col matrix. `row_stride` is the full matrix's
/// column count and `col_off` the first column of this item's block; the
/// destination must already be zeroed (padding positions are skipped).
#[allow(clippy::too_many_arguments)]
fn unfold_item(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    spec: ConvSpec,
    out: &mut [f32],
    row_stride: usize,
    col_off: usize,
) {
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * row_stride + col_off;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let in_row = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out[base + oi * ow + oj] = data[in_row + jj as usize];
                    }
                }
            }
        }
    }
}

/// Scatter-adds one column block of an im2col-shaped gradient back onto one
/// image gradient (the adjoint of [`unfold_item`], accumulation order
/// identical to [`col2im`]).
#[allow(clippy::too_many_arguments)]
fn fold_item(
    cols_mat: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    spec: ConvSpec,
    grad: &mut [f32],
    row_stride: usize,
    col_off: usize,
) {
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * row_stride + col_off;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let out_row = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        grad[out_row + jj as usize] += cols_mat[base + oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// Folds an im2col-shaped gradient `[C*KH*KW, OH*OW]` back onto an image
/// gradient `[C, H, W]`, summing overlapping contributions. Adjoint of
/// [`im2col`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the matrix does not match the
/// implied geometry or [`TensorError::InvalidGeometry`] when the kernel does
/// not fit.
pub fn col2im(
    cols_mat: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Result<Tensor> {
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = oh * ow;
    if cols_mat.shape() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols_mat.shape().to_vec(),
            rhs: vec![rows, cols],
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    fold_item(
        cols_mat.as_slice(),
        c,
        h,
        w,
        kh,
        kw,
        oh,
        ow,
        spec,
        &mut out,
        cols,
        0,
    );
    Tensor::from_vec(out, &[c, h, w])
}

/// Validated geometry of a batched convolution.
struct ConvGeom {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    o: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
}

impl ConvGeom {
    fn check(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: ConvSpec,
    ) -> Result<ConvGeom> {
        input.shape_obj().ensure_rank(4)?;
        weight.shape_obj().ensure_rank(4)?;
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (o, wc, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if c != wc {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: weight.shape().to_vec(),
            });
        }
        if let Some(b) = bias {
            if b.shape() != [o] {
                return Err(TensorError::ShapeMismatch {
                    lhs: b.shape().to_vec(),
                    rhs: vec![o],
                });
            }
        }
        let oh = spec.out_extent(h, kh)?;
        let ow = spec.out_extent(w, kw)?;
        Ok(ConvGeom {
            n,
            c,
            h,
            w,
            o,
            kh,
            kw,
            oh,
            ow,
        })
    }

    fn k(&self) -> usize {
        self.c * self.kh * self.kw
    }

    fn space(&self) -> usize {
        self.oh * self.ow
    }
}

/// Unfolds a whole minibatch `[N, C, H, W]` into one batched im2col matrix
/// `[C*KH*KW, N*OH*OW]`; column block `ni` equals `im2col(item ni)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input and
/// [`TensorError::InvalidGeometry`] when the kernel does not fit.
pub fn im2col_batched(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Result<Tensor> {
    input.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_batched_into(input, kh, kw, spec, &mut out)?;
    Tensor::from_vec(out, &[rows, cols])
}

/// Allocation-free [`im2col_batched`]: fills `out` (length
/// `C*KH*KW * N*OH*OW`, row-major) in place.
///
/// # Errors
///
/// Same conditions as [`im2col_batched`], plus
/// [`TensorError::LengthMismatch`] when `out` has the wrong length.
pub fn im2col_batched_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    out: &mut [f32],
) -> Result<()> {
    input.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    if out.len() != rows * cols {
        return Err(TensorError::LengthMismatch {
            expected: rows * cols,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    let img = c * h * w;
    let space = oh * ow;
    let data = input.as_slice();
    for ni in 0..n {
        unfold_item(
            &data[ni * img..(ni + 1) * img],
            c,
            h,
            w,
            kh,
            kw,
            oh,
            ow,
            spec,
            out,
            cols,
            ni * space,
        );
    }
    Ok(())
}

/// Batched 2-D convolution: `[N, C, H, W] * [O, C, KH, KW] -> [N, O, OH, OW]`.
///
/// One batched im2col plus one packed GEMM for the entire minibatch; the
/// per-output-element accumulation order (ascending over `C*KH*KW`) is
/// identical to the per-item formulation, so results are bit-equal to it.
///
/// # Errors
///
/// Returns a shape or geometry error when the operand ranks, channel counts
/// or kernel size are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    let g = ConvGeom::check(input, weight, bias, spec)?;
    let mut out = vec![0.0f32; g.n * g.o * g.space()];
    with_thread_scratch(|s| conv2d_into(input, weight, bias, spec, &mut out, s))?;
    Tensor::from_vec(out, &[g.n, g.o, g.oh, g.ow])
}

/// Allocation-free [`conv2d`]: writes `[N, O, OH, OW]` into `out`, drawing
/// the im2col and GEMM temporaries from `scratch`. Returns the output dims.
///
/// # Errors
///
/// Same conditions as [`conv2d`], plus [`TensorError::LengthMismatch`] when
/// `out` has the wrong length.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    out: &mut [f32],
    scratch: &mut Scratch,
) -> Result<[usize; 4]> {
    let g = ConvGeom::check(input, weight, bias, spec)?;
    let (k, space) = (g.k(), g.space());
    let cols_total = g.n * space;
    if out.len() != g.n * g.o * space {
        return Err(TensorError::LengthMismatch {
            expected: g.n * g.o * space,
            actual: out.len(),
        });
    }
    let mut cols = scratch.take_f32(k * cols_total);
    im2col_batched_into(input, g.kh, g.kw, spec, &mut cols)?;
    // One GEMM for the whole batch: W2 [O, K] × cols [K, N*S] -> [O, N*S].
    let mut prod = scratch.take_f32(g.o * cols_total);
    gemm_packed(
        g.o,
        cols_total,
        k,
        weight.as_slice(),
        k,
        1,
        &cols,
        cols_total,
        1,
        &mut prod,
        scratch,
    );
    // Transpose [O, N, S] -> [N, O, S], fusing in the bias add.
    for ni in 0..g.n {
        for oi in 0..g.o {
            let src = &prod[oi * cols_total + ni * space..oi * cols_total + (ni + 1) * space];
            let dst = &mut out[(ni * g.o + oi) * space..(ni * g.o + oi + 1) * space];
            match bias {
                Some(b) => {
                    let bv = b.as_slice()[oi];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bv;
                    }
                }
                None => dst.copy_from_slice(src),
            }
        }
    }
    scratch.recycle_f32(cols);
    scratch.recycle_f32(prod);
    Ok([g.n, g.o, g.oh, g.ow])
}

/// Backward pass of [`conv2d`]: gradients with respect to input, weight and
/// bias, given the upstream gradient `grad_out` of shape `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns a shape or geometry error when the operands are inconsistent
/// with the forward geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Result<Conv2dGrads> {
    let g = ConvGeom::check(input, weight, None, spec)?;
    let mut grad_input = Tensor::zeros(&[g.n, g.c, g.h, g.w]);
    let mut grad_weight = Tensor::zeros(&[g.o, g.c, g.kh, g.kw]);
    let mut grad_bias = Tensor::zeros(&[g.o]);
    with_thread_scratch(|s| {
        conv2d_backward_into(
            input,
            weight,
            grad_out,
            spec,
            grad_input.as_mut_slice(),
            grad_weight.as_mut_slice(),
            grad_bias.as_mut_slice(),
            s,
        )
    })?;
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// Allocation-free [`conv2d_backward`]: writes the input, weight and bias
/// gradients into the provided buffers, drawing temporaries from `scratch`.
/// The whole batch's weight gradient is one `dY · colsᵀ` GEMM (contraction
/// over the folded `N*OH*OW` dimension) and the input gradient one
/// `Wᵀ · dY` GEMM followed by per-item col2im.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward`], plus
/// [`TensorError::LengthMismatch`] for wrongly sized output buffers.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
    grad_input: &mut [f32],
    grad_weight: &mut [f32],
    grad_bias: &mut [f32],
    scratch: &mut Scratch,
) -> Result<()> {
    let g = ConvGeom::check(input, weight, None, spec)?;
    grad_out.shape_obj().ensure_rank(4)?;
    if grad_out.shape() != [g.n, g.o, g.oh, g.ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![g.n, g.o, g.oh, g.ow],
        });
    }
    let (k, space) = (g.k(), g.space());
    let cols_total = g.n * space;
    for (buf, want) in [
        (&*grad_input, g.n * g.c * g.h * g.w),
        (&*grad_weight, g.o * k),
        (&*grad_bias, g.o),
    ] {
        if buf.len() != want {
            return Err(TensorError::LengthMismatch {
                expected: want,
                actual: buf.len(),
            });
        }
    }
    let mut cols = scratch.take_f32(k * cols_total);
    im2col_batched_into(input, g.kh, g.kw, spec, &mut cols)?;
    // gy in [O, N*S] layout: transpose of grad_out's [N, O, S].
    let mut gy = scratch.take_f32(g.o * cols_total);
    let go = grad_out.as_slice();
    for ni in 0..g.n {
        for oi in 0..g.o {
            let src = &go[(ni * g.o + oi) * space..(ni * g.o + oi + 1) * space];
            gy[oi * cols_total + ni * space..oi * cols_total + (ni + 1) * space]
                .copy_from_slice(src);
        }
    }
    // dW = gy · colsᵀ : [O, N*S] × [N*S, K] -> [O, K], one GEMM.
    gemm_packed(
        g.o,
        k,
        cols_total,
        &gy,
        cols_total,
        1,
        &cols,
        1,
        cols_total,
        grad_weight,
        scratch,
    );
    // db = row sums of gy.
    for (oi, gb) in grad_bias.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for &v in &gy[oi * cols_total..(oi + 1) * cols_total] {
            acc += v;
        }
        *gb = acc;
    }
    // dX = col2im(Wᵀ · gy) : [K, O] × [O, N*S] -> [K, N*S], then fold.
    let mut gcols = scratch.take_f32(k * cols_total);
    gemm_packed(
        k,
        cols_total,
        g.o,
        weight.as_slice(),
        1,
        k,
        &gy,
        cols_total,
        1,
        &mut gcols,
        scratch,
    );
    grad_input.fill(0.0);
    let img = g.c * g.h * g.w;
    for ni in 0..g.n {
        fold_item(
            &gcols,
            g.c,
            g.h,
            g.w,
            g.kh,
            g.kw,
            g.oh,
            g.ow,
            spec,
            &mut grad_input[ni * img..(ni + 1) * img],
            cols_total,
            ni * space,
        );
    }
    scratch.recycle_f32(cols);
    scratch.recycle_f32(gy);
    scratch.recycle_f32(gcols);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, spec: ConvSpec) -> Tensor {
        let (n, c, h, ww) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = spec.out_extent(h, kh).unwrap();
        let ow = spec.out_extent(ww, kw).unwrap();
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for yi in 0..oh {
                    for xi in 0..ow {
                        let mut acc = b.map(|b| b.as_slice()[oi]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii =
                                        (yi * spec.stride + ki) as isize - spec.padding as isize;
                                    let jj =
                                        (xi * spec.stride + kj) as isize - spec.padding as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= ww as isize {
                                        continue;
                                    }
                                    acc += x.at(&[ni, ci, ii as usize, jj as usize])
                                        * w.at(&[oi, ci, ki, kj]);
                                }
                            }
                        }
                        out.set(&[ni, oi, yi, xi], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_extent_math() {
        let s = ConvSpec::new(1, 1);
        assert_eq!(s.out_extent(8, 3).unwrap(), 8);
        let s2 = ConvSpec::new(2, 0);
        assert_eq!(s2.out_extent(8, 2).unwrap(), 4);
        assert!(ConvSpec::new(0, 0).out_extent(8, 3).is_err());
        assert!(ConvSpec::new(1, 0).out_extent(2, 5).is_err());
    }

    #[test]
    fn conv_matches_naive_padded_strided() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = ConvSpec::new(stride, pad);
            let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
            let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
            let b = Tensor::randn(&[4], 0.1, &mut rng);
            let fast = conv2d(&x, &w, Some(&b), spec).unwrap();
            let slow = naive_conv2d(&x, &w, Some(&b), spec);
            assert_eq!(fast.shape(), slow.shape());
            for (a, c) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!(
                    (a - c).abs() < 1e-3,
                    "stride {stride} pad {pad}: {a} vs {c}"
                );
            }
        }
    }

    #[test]
    fn batched_im2col_blocks_equal_per_item() {
        let mut rng = StdRng::seed_from_u64(47);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1), (3, 2)] {
            let spec = ConvSpec::new(stride, pad);
            let x = Tensor::randn(&[3, 2, 6, 6], 1.0, &mut rng);
            let batched = im2col_batched(&x, 3, 3, spec).unwrap();
            let space = batched.shape()[1] / 3;
            for ni in 0..3 {
                let item = Tensor::from_vec(
                    x.as_slice()[ni * 2 * 36..(ni + 1) * 2 * 36].to_vec(),
                    &[2, 6, 6],
                )
                .unwrap();
                let per_item = im2col(&item, 3, 3, spec).unwrap();
                for r in 0..batched.shape()[0] {
                    for s in 0..space {
                        assert_eq!(
                            batched.as_slice()[r * batched.shape()[1] + ni * space + s].to_bits(),
                            per_item.as_slice()[r * space + s].to_bits(),
                            "item {ni} row {r} col {s} (stride {stride} pad {pad})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv2d_into_matches_and_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(51);
        let spec = ConvSpec::new(1, 1);
        let x = Tensor::randn(&[2, 3, 5, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.1, &mut rng);
        let want = conv2d(&x, &w, Some(&b), spec).unwrap();
        let mut s = Scratch::new();
        let mut out = s.take_f32(want.len());
        let dims = conv2d_into(&x, &w, Some(&b), spec, &mut out, &mut s).unwrap();
        assert_eq!(&dims[..], want.shape());
        for (a, c) in out.iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
        let misses = s.fresh_allocs();
        conv2d_into(&x, &w, Some(&b), spec, &mut out, &mut s).unwrap();
        assert_eq!(s.fresh_allocs(), misses, "steady state must not allocate");
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the backward pass correct.
        let mut rng = StdRng::seed_from_u64(23);
        let spec = ConvSpec::new(2, 1);
        let x = Tensor::randn(&[2, 5, 5], 1.0, &mut rng);
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let folded = col2im(&y, 2, 5, 5, 3, 3, spec).unwrap();
        let rhs: f32 = folded.mul(&x).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(29);
        let spec = ConvSpec::new(1, 1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3], 0.1, &mut rng);
        // loss = sum(conv(x)) so grad_out = ones.
        let y = conv2d(&x, &w, Some(&b), spec).unwrap();
        let gy = Tensor::ones(y.shape());
        let grads = conv2d_backward(&x, &w, &gy, spec).unwrap();
        let eps = 1e-2f32;
        // check a handful of weight coordinates
        for idx in [0usize, 7, 20, 35, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&x, &wp, Some(&b), spec).unwrap().sum();
            let lm = conv2d(&x, &wm, Some(&b), spec).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.grad_weight.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "weight[{idx}]: fd {fd} vs an {an}");
        }
        // check input coordinates
        for idx in [0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&xp, &w, Some(&b), spec).unwrap().sum();
            let lm = conv2d(&xm, &w, Some(&b), spec).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.grad_input.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "input[{idx}]: fd {fd} vs an {an}");
        }
        // bias gradient is just the output count per channel
        let per_channel = (y.len() / 3) as f32;
        for &gb in grads.grad_bias.as_slice() {
            assert!((gb - per_channel).abs() < 1e-2);
        }
    }

    #[test]
    fn batched_backward_matches_multi_item_finite_difference() {
        // Multi-item batch exercises the folded N*S contraction dimension.
        let mut rng = StdRng::seed_from_u64(61);
        let spec = ConvSpec::new(2, 1);
        let x = Tensor::randn(&[3, 2, 5, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.5, &mut rng);
        let y = conv2d(&x, &w, None, spec).unwrap();
        let gy = Tensor::ones(y.shape());
        let grads = conv2d_backward(&x, &w, &gy, spec).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 9, 17, 30] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (conv2d(&x, &wp, None, spec).unwrap().sum()
                - conv2d(&x, &wm, None, spec).unwrap().sum())
                / (2.0 * eps);
            let an = grads.grad_weight.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "weight[{idx}]: fd {fd} vs an {an}");
        }
        for idx in [0usize, 24, 60, 149] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (conv2d(&xp, &w, None, spec).unwrap().sum()
                - conv2d(&xm, &w, None, spec).unwrap().sum())
                / (2.0 * eps);
            let an = grads.grad_input.as_slice()[idx];
            assert!((fd - an).abs() < 3e-2, "input[{idx}]: fd {fd} vs an {an}");
        }
    }

    #[test]
    fn channel_mismatch_errors() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, ConvSpec::default()).is_err());
    }

    #[test]
    fn bias_shape_checked() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d(&x, &w, Some(&bad_bias), ConvSpec::default()).is_err());
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let w = Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, ConvSpec::default()).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
