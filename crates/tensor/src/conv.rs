//! 2-D convolution via im2col/col2im, with full backward passes.
//!
//! Layout conventions: activations are `[N, C, H, W]`, weights are
//! `[O, C, KH, KW]`, biases are `[O]`. The im2col matrix for one batch item
//! is `[C*KH*KW, OH*OW]`, so the forward pass is a single matrix product
//! per item and the backward pass reuses the same matrix for both the
//! weight gradient and (through [`col2im`]) the input gradient.

use crate::{Result, Tensor, TensorError};

/// Geometry of a convolution or correlation: stride and zero padding,
/// identical in both spatial directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Step between receptive fields.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl ConvSpec {
    /// Unit-stride, unpadded convolution.
    pub fn new(stride: usize, padding: usize) -> Self {
        ConvSpec { stride, padding }
    }

    /// Output spatial size for an input extent `n` and kernel extent `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero or the
    /// kernel does not fit in the padded input.
    pub fn out_extent(&self, n: usize, k: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be positive".into(),
            ));
        }
        let padded = n + 2 * self.padding;
        if k == 0 || k > padded {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel extent {k} does not fit padded input extent {padded}"
            )));
        }
        Ok((padded - k) / self.stride + 1)
    }
}

impl Default for ConvSpec {
    fn default() -> Self {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weights, `[O, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[O]`.
    pub grad_bias: Tensor,
}

/// Unfolds one image `[C, H, W]` into the im2col matrix
/// `[C*KH*KW, OH*OW]` for the given kernel size and geometry.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-3 input and
/// [`TensorError::InvalidGeometry`] when the kernel does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Result<Tensor> {
    input.shape_obj().ensure_rank(3)?;
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * cols;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let in_row = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out[base + oi * ow + oj] = data[in_row + jj as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Folds an im2col-shaped gradient `[C*KH*KW, OH*OW]` back onto an image
/// gradient `[C, H, W]`, summing overlapping contributions. Adjoint of
/// [`im2col`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the matrix does not match the
/// implied geometry or [`TensorError::InvalidGeometry`] when the kernel does
/// not fit.
pub fn col2im(
    cols_mat: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Result<Tensor> {
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let rows = c * kh * kw;
    let cols = oh * ow;
    if cols_mat.shape() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols_mat.shape().to_vec(),
            rhs: vec![rows, cols],
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    let data = cols_mat.as_slice();
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * cols;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let out_row = (ci * h + ii as usize) * w;
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out[out_row + jj as usize] += data[base + oi * ow + oj];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w])
}

/// Batched 2-D convolution: `[N, C, H, W] * [O, C, KH, KW] -> [N, O, OH, OW]`.
///
/// # Errors
///
/// Returns a shape or geometry error when the operand ranks, channel counts
/// or kernel size are inconsistent.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    input.shape_obj().ensure_rank(4)?;
    weight.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if c != wc {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: weight.shape().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.shape() != [o] {
            return Err(TensorError::ShapeMismatch {
                lhs: b.shape().to_vec(),
                rhs: vec![o],
            });
        }
    }
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let w2 = weight.reshape(&[o, c * kh * kw])?;
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let plane = o * oh * ow;
    for ni in 0..n {
        let item = Tensor::from_vec(
            input.as_slice()[ni * c * h * w..(ni + 1) * c * h * w].to_vec(),
            &[c, h, w],
        )?;
        let cols = im2col(&item, kh, kw, spec)?;
        let prod = w2.matmul(&cols)?; // [o, oh*ow]
        let dst = &mut out.as_mut_slice()[ni * plane..(ni + 1) * plane];
        dst.copy_from_slice(prod.as_slice());
        if let Some(b) = bias {
            for oi in 0..o {
                let bv = b.as_slice()[oi];
                for v in &mut dst[oi * oh * ow..(oi + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`conv2d`]: gradients with respect to input, weight and
/// bias, given the upstream gradient `grad_out` of shape `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns a shape or geometry error when the operands are inconsistent
/// with the forward geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> Result<Conv2dGrads> {
    input.shape_obj().ensure_rank(4)?;
    weight.shape_obj().ensure_rank(4)?;
    grad_out.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (o, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    if grad_out.shape() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, o, oh, ow],
        });
    }
    let k = c * kh * kw;
    let w2 = weight.reshape(&[o, k])?;
    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight2 = Tensor::zeros(&[o, k]);
    let mut grad_bias = Tensor::zeros(&[o]);
    let plane = o * oh * ow;
    let img = c * h * w;
    for ni in 0..n {
        let item = Tensor::from_vec(
            input.as_slice()[ni * img..(ni + 1) * img].to_vec(),
            &[c, h, w],
        )?;
        let cols = im2col(&item, kh, kw, spec)?; // [k, oh*ow]
        let gy = Tensor::from_vec(
            grad_out.as_slice()[ni * plane..(ni + 1) * plane].to_vec(),
            &[o, oh * ow],
        )?;
        // dW += gy · cols^T
        let gw = gy.matmul_nt(&cols)?;
        grad_weight2.add_scaled(&gw, 1.0)?;
        // db += row sums of gy
        for oi in 0..o {
            let s: f32 = gy.as_slice()[oi * oh * ow..(oi + 1) * oh * ow].iter().sum();
            grad_bias.as_mut_slice()[oi] += s;
        }
        // dX = col2im(W^T · gy)
        let gcols = w2.matmul_tn(&gy)?; // [k, oh*ow]
        let gx = col2im(&gcols, c, h, w, kh, kw, spec)?;
        grad_input.as_mut_slice()[ni * img..(ni + 1) * img].copy_from_slice(gx.as_slice());
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight: grad_weight2.into_reshape(&[o, c, kh, kw])?,
        grad_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, spec: ConvSpec) -> Tensor {
        let (n, c, h, ww) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = spec.out_extent(h, kh).unwrap();
        let ow = spec.out_extent(ww, kw).unwrap();
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for yi in 0..oh {
                    for xi in 0..ow {
                        let mut acc = b.map(|b| b.as_slice()[oi]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii =
                                        (yi * spec.stride + ki) as isize - spec.padding as isize;
                                    let jj =
                                        (xi * spec.stride + kj) as isize - spec.padding as isize;
                                    if ii < 0 || jj < 0 || ii >= h as isize || jj >= ww as isize {
                                        continue;
                                    }
                                    acc += x.at(&[ni, ci, ii as usize, jj as usize])
                                        * w.at(&[oi, ci, ki, kj]);
                                }
                            }
                        }
                        out.set(&[ni, oi, yi, xi], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_extent_math() {
        let s = ConvSpec::new(1, 1);
        assert_eq!(s.out_extent(8, 3).unwrap(), 8);
        let s2 = ConvSpec::new(2, 0);
        assert_eq!(s2.out_extent(8, 2).unwrap(), 4);
        assert!(ConvSpec::new(0, 0).out_extent(8, 3).is_err());
        assert!(ConvSpec::new(1, 0).out_extent(2, 5).is_err());
    }

    #[test]
    fn conv_matches_naive_padded_strided() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = ConvSpec::new(stride, pad);
            let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
            let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
            let b = Tensor::randn(&[4], 0.1, &mut rng);
            let fast = conv2d(&x, &w, Some(&b), spec).unwrap();
            let slow = naive_conv2d(&x, &w, Some(&b), spec);
            assert_eq!(fast.shape(), slow.shape());
            for (a, c) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!(
                    (a - c).abs() < 1e-3,
                    "stride {stride} pad {pad}: {a} vs {c}"
                );
            }
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the backward pass correct.
        let mut rng = StdRng::seed_from_u64(23);
        let spec = ConvSpec::new(2, 1);
        let x = Tensor::randn(&[2, 5, 5], 1.0, &mut rng);
        let cols = im2col(&x, 3, 3, spec).unwrap();
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let folded = col2im(&y, 2, 5, 5, 3, 3, spec).unwrap();
        let rhs: f32 = folded.mul(&x).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(29);
        let spec = ConvSpec::new(1, 1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3], 0.1, &mut rng);
        // loss = sum(conv(x)) so grad_out = ones.
        let y = conv2d(&x, &w, Some(&b), spec).unwrap();
        let gy = Tensor::ones(y.shape());
        let grads = conv2d_backward(&x, &w, &gy, spec).unwrap();
        let eps = 1e-2f32;
        // check a handful of weight coordinates
        for idx in [0usize, 7, 20, 35, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&x, &wp, Some(&b), spec).unwrap().sum();
            let lm = conv2d(&x, &wm, Some(&b), spec).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.grad_weight.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "weight[{idx}]: fd {fd} vs an {an}");
        }
        // check input coordinates
        for idx in [0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = conv2d(&xp, &w, Some(&b), spec).unwrap().sum();
            let lm = conv2d(&xm, &w, Some(&b), spec).unwrap().sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.grad_input.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "input[{idx}]: fd {fd} vs an {an}");
        }
        // bias gradient is just the output count per channel
        let per_channel = (y.len() / 3) as f32;
        for &gb in grads.grad_bias.as_slice() {
            assert!((gb - per_channel).abs() < 1e-2);
        }
    }

    #[test]
    fn channel_mismatch_errors() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, ConvSpec::default()).is_err());
    }

    #[test]
    fn bias_shape_checked() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(conv2d(&x, &w, Some(&bad_bias), ConvSpec::default()).is_err());
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let w = Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, ConvSpec::default()).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
