use std::error::Error;
use std::fmt;

/// Error produced by tensor operations.
///
/// Every fallible operation in this crate reports a structured error so
/// callers can distinguish shape bugs from data bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two shapes that must match (e.g. elementwise operands) do not.
    ShapeMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// An operation required a specific rank (number of dimensions).
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor given.
        actual: usize,
    },
    /// Inner dimensions of a matrix multiplication disagree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        lhs_cols: usize,
        /// Rows of the right matrix.
        rhs_rows: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Axis requested.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger
    /// than padded input).
    InvalidGeometry(String),
    /// A reshape changed the total element count.
    ReshapeMismatch {
        /// Element count of the source tensor.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// A tensor that must be non-empty was empty.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} elements)"
                )
            }
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::MatmulDimMismatch { lhs_cols, rhs_rows } => {
                write!(
                    f,
                    "matmul inner dimensions disagree: {lhs_cols} vs {rhs_rows}"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} elements into shape with {to} elements"
                )
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                lhs: vec![2],
                rhs: vec![3],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 1,
            },
            TensorError::MatmulDimMismatch {
                lhs_cols: 2,
                rhs_rows: 3,
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::InvalidGeometry("kernel too large".into()),
            TensorError::ReshapeMismatch { from: 4, to: 5 },
            TensorError::Empty,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
