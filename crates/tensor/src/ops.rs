//! Operator overloads and axis-wise reductions.
//!
//! The arithmetic operators work on references (`&a + &b`) so operands
//! stay usable; they panic on shape mismatch, which is documented per
//! impl — use the fallible [`Tensor::add`]-family methods when shapes are
//! not statically known to agree.

use crate::{Result, Tensor, TensorError};
use std::ops::{Add, Mul, Neg, Sub};

impl Add for &Tensor {
    type Output = Tensor;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::add`] for a fallible
    /// version.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("operand shapes must match for +")
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::sub`] for a fallible
    /// version.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("operand shapes must match for -")
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::mul`] for a fallible
    /// version.
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs).expect("operand shapes must match for *")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

impl Tensor {
    /// Sums over one axis, removing it: `[d0, …, dk, …] -> [d0, …, …]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let dims = self.shape();
        if axis >= dims.len() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: dims.len(),
            });
        }
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims: Vec<usize> = dims[..axis].to_vec();
        out_dims.extend_from_slice(&dims[axis + 1..]);
        let mut out = vec![0.0f32; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    *d += s;
                }
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Mean over one axis, removing it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape_obj().dim(axis)? as f32;
        let mut s = self.sum_axis(axis)?;
        if n > 0.0 {
            s.scale_inplace(1.0 / n);
        }
        Ok(s)
    }

    /// Concatenates tensors along the leading axis. All operands must
    /// agree on the trailing dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for no operands or a shape error on
    /// disagreement.
    pub fn concat(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::Empty)?;
        if first.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let tail: Vec<usize> = first.shape()[1..].to_vec();
        let mut lead = 0usize;
        let mut data = Vec::new();
        for item in items {
            if item.rank() == 0 || item.shape()[1..] != tail[..] {
                return Err(TensorError::ShapeMismatch {
                    lhs: item.shape().to_vec(),
                    rhs: first.shape().to_vec(),
                });
            }
            lead += item.shape()[0];
            data.extend_from_slice(item.as_slice());
        }
        let mut dims = vec![lead];
        dims.extend_from_slice(&tail);
        Tensor::from_vec(data, &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "match")]
    fn operator_panics_on_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = &a + &b;
    }

    #[test]
    fn sum_axis_each_position() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let s0 = t.sum_axis(0).unwrap();
        assert_eq!(s0.shape(), &[3, 4]);
        assert_eq!(s0.at(&[0, 0]), 0.0 + 12.0);
        let s1 = t.sum_axis(1).unwrap();
        assert_eq!(s1.shape(), &[2, 4]);
        assert_eq!(s1.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        let s2 = t.sum_axis(2).unwrap();
        assert_eq!(s2.shape(), &[2, 3]);
        assert_eq!(s2.at(&[0, 0]), 0.0 + 1.0 + 2.0 + 3.0);
        assert!(t.sum_axis(3).is_err());
    }

    #[test]
    fn sum_axis_total_matches_sum() {
        let t = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.7).sin());
        let total_by_axis = t.sum_axis(0).unwrap().sum();
        assert!((total_by_axis - t.sum()).abs() < 1e-4);
    }

    #[test]
    fn mean_axis_divides() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[2, 2]).unwrap();
        let m = t.mean_axis(0).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn concat_along_leading_axis() {
        let a = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = Tensor::from_fn(&[1, 3], |i| 100.0 + i as f32);
        let c = Tensor::concat(&[a.clone(), b]).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert_eq!(c.at(&[2, 1]), 101.0);
        let bad = Tensor::zeros(&[1, 4]);
        assert!(Tensor::concat(&[a, bad]).is_err());
        assert!(Tensor::concat(&[]).is_err());
    }
}
