use crate::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor, row-major.
///
/// `Shape` owns a small vector of dimension sizes and provides the index
/// arithmetic used throughout the crate. A zero-length shape is a scalar
/// (one element); a dimension of size zero yields an empty tensor.
///
/// # Example
///
/// ```
/// use cbq_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index rank or any coordinate is out of
    /// bounds; release builds produce an unspecified offset.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            let _ = i;
            off += ix * stride;
            stride *= d;
        }
        off
    }

    /// Checks element-for-element equality with another shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn ensure_same(&self, other: &Shape) -> Result<(), TensorError> {
        if self.dims == other.dims {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
            })
        }
    }

    /// Checks the shape has exactly `rank` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] otherwise.
    pub fn ensure_rank(&self, rank: usize) -> Result<(), TensorError> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    fn ensure_same_detects_mismatch() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 2]);
        assert!(a.ensure_same(&a.clone()).is_ok());
        assert!(matches!(
            a.ensure_same(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn ensure_rank_checks() {
        let a = Shape::new(&[2, 3]);
        assert!(a.ensure_rank(2).is_ok());
        assert!(matches!(
            a.ensure_rank(3),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn dim_access() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(a.dim(1).unwrap(), 3);
        assert!(matches!(a.dim(2), Err(TensorError::AxisOutOfRange { .. })));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3, 4]).to_string(), "[2x3x4]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s2: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s2.dims(), &[3, 4]);
    }
}
