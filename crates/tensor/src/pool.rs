//! Spatial pooling: max, average and global-average, with backward passes.

use crate::{ConvSpec, Result, Tensor, TensorError};

/// Geometry of a pooling window: size and stride (padding is always zero —
/// the model zoo only needs valid pooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Window extent in both spatial directions.
    pub kernel: usize,
    /// Step between windows.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec. A typical CNN downsampling stage uses
    /// `PoolSpec::new(2, 2)`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        PoolSpec { kernel, stride }
    }

    fn conv_spec(&self) -> ConvSpec {
        ConvSpec {
            stride: self.stride,
            padding: 0,
        }
    }
}

/// Winner indices recorded by [`max_pool2d`], needed by its backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolIndices {
    indices: Vec<usize>,
    input_dims: [usize; 4],
}

/// Max pooling over `[N, C, H, W]`, returning the pooled tensor and the
/// winner indices for the backward pass.
///
/// # Errors
///
/// Returns a rank or geometry error for invalid operands.
pub fn max_pool2d(input: &Tensor, spec: PoolSpec) -> Result<(Tensor, MaxPoolIndices)> {
    input.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let cs = spec.conv_spec();
    let oh = cs.out_extent(h, spec.kernel)?;
    let ow = cs.out_extent(w, spec.kernel)?;
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ki in 0..spec.kernel {
                        for kj in 0..spec.kernel {
                            let p = in_base + (oi * spec.stride + ki) * w + oj * spec.stride + kj;
                            if data[p] > best {
                                best = data[p];
                                best_idx = p;
                            }
                        }
                    }
                    out[out_base + oi * ow + oj] = best;
                    idx[out_base + oi * ow + oj] = best_idx;
                }
            }
        }
    }
    Ok((
        Tensor::from_vec(out, &[n, c, oh, ow])?,
        MaxPoolIndices {
            indices: idx,
            input_dims: [n, c, h, w],
        },
    ))
}

/// Backward pass of [`max_pool2d`]: routes each upstream gradient to the
/// winning input position.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `grad_out` disagrees with
/// the recorded indices.
pub fn max_pool2d_backward(grad_out: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor> {
    if grad_out.len() != indices.indices.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.indices.len(),
            actual: grad_out.len(),
        });
    }
    let [n, c, h, w] = indices.input_dims;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.as_mut_slice();
    for (&src, &g) in indices.indices.iter().zip(grad_out.as_slice()) {
        gi[src] += g;
    }
    Ok(grad_in)
}

/// Average pooling over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns a rank or geometry error for invalid operands.
pub fn avg_pool2d(input: &Tensor, spec: PoolSpec) -> Result<Tensor> {
    input.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let cs = spec.conv_spec();
    let oh = cs.out_extent(h, spec.kernel)?;
    let ow = cs.out_extent(w, spec.kernel)?;
    let norm = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for ki in 0..spec.kernel {
                        for kj in 0..spec.kernel {
                            acc +=
                                data[in_base + (oi * spec.stride + ki) * w + oj * spec.stride + kj];
                        }
                    }
                    out[out_base + oi * ow + oj] = acc * norm;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d`]: spreads each upstream gradient evenly
/// over its window.
///
/// # Errors
///
/// Returns a rank or geometry error when `grad_out` disagrees with the
/// stated input geometry.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_dims: [usize; 4],
    spec: PoolSpec,
) -> Result<Tensor> {
    grad_out.shape_obj().ensure_rank(4)?;
    let [n, c, h, w] = input_dims;
    let cs = spec.conv_spec();
    let oh = cs.out_extent(h, spec.kernel)?;
    let ow = cs.out_extent(w, spec.kernel)?;
    if grad_out.shape() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let norm = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.as_mut_slice();
    let go = grad_out.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let out_base = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = go[out_base + oi * ow + oj] * norm;
                    for ki in 0..spec.kernel {
                        for kj in 0..spec.kernel {
                            gi[in_base + (oi * spec.stride + ki) * w + oj * spec.stride + kj] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    input.shape_obj().ensure_rank(4)?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let hw = (h * w).max(1);
    let mut out = vec![0.0f32; n * c];
    let data = input.as_slice();
    for (i, o) in out.iter_mut().enumerate() {
        let base = i * h * w;
        let s: f32 = data[base..base + h * w].iter().sum();
        *o = s / hw as f32;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool`].
///
/// # Errors
///
/// Returns a shape error when `grad_out` is not `[N, C]` for the given
/// input dims.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_dims: [usize; 4]) -> Result<Tensor> {
    let [n, c, h, w] = input_dims;
    if grad_out.shape() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().to_vec(),
            rhs: vec![n, c],
        });
    }
    let norm = 1.0 / (h * w).max(1) as f32;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.as_mut_slice();
    for (i, &g) in grad_out.as_slice().iter().enumerate() {
        let base = i * h * w;
        for v in &mut gi[base..base + h * w] {
            *v = g * norm;
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, _) = max_pool2d(&x, PoolSpec::new(2, 2)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let (_, idx) = max_pool2d(&x, PoolSpec::new(2, 2)).unwrap();
        let gy = Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]).unwrap();
        let gx = max_pool2d_backward(&gy, &idx).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = avg_pool2d(&x, PoolSpec::new(2, 2)).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn avg_pool_backward_finite_difference() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let y = avg_pool2d(&x, spec).unwrap();
        let gy = Tensor::ones(y.shape());
        let gx = avg_pool2d_backward(&gy, [1, 2, 4, 4], spec).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 3, 9, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (avg_pool2d(&xp, spec).unwrap().sum() - avg_pool2d(&xm, spec).unwrap().sum())
                / (2.0 * eps);
            assert!((fd - gx.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn max_pool_backward_finite_difference() {
        let mut rng = StdRng::seed_from_u64(37);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let (y, idx) = max_pool2d(&x, spec).unwrap();
        let gy = Tensor::ones(y.shape());
        let gx = max_pool2d_backward(&gy, &idx).unwrap();
        let eps = 1e-3f32;
        for i in 0..16 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (max_pool2d(&xp, spec).unwrap().0.sum()
                - max_pool2d(&xm, spec).unwrap().0.sum())
                / (2.0 * eps);
            assert!((fd - gx.as_slice()[i]).abs() < 0.51, "pos {i}");
        }
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        let gy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gx = global_avg_pool_backward(&gy, [1, 2, 2, 2]).unwrap();
        assert_eq!(gx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_geometry_errors() {
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(max_pool2d(&x, PoolSpec::new(4, 1)).is_err());
        assert!(avg_pool2d(&x, PoolSpec::new(2, 0)).is_err());
        let bad_rank = Tensor::zeros(&[3, 3]);
        assert!(global_avg_pool(&bad_rank).is_err());
    }

    #[test]
    fn mismatched_grad_shapes_error() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let (_, idx) = max_pool2d(&x, PoolSpec::new(2, 2)).unwrap();
        let wrong = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(max_pool2d_backward(&wrong, &idx).is_err());
        assert!(avg_pool2d_backward(&wrong, [1, 1, 4, 4], PoolSpec::new(2, 2)).is_err());
        assert!(global_avg_pool_backward(&Tensor::zeros(&[2, 2]), [1, 1, 2, 2]).is_err());
    }
}
