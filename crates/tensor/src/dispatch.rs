//! Runtime SIMD ISA dispatch for the compute kernels.
//!
//! The packed GEMM micro-kernel and the low-bit integer dots in
//! [`crate::kernels`] each ship several implementations: a scalar reference
//! plus vector arms per instruction set. This module decides, once per
//! process, which arm runs:
//!
//! * [`Isa`] names the supported instruction sets in ladder order
//!   (`Avx512` > `Avx2Fma` > `Neon` > `Scalar`). [`Isa::detect`] probes the
//!   host with `is_x86_feature_detected!` / `is_aarch64_feature_detected!`
//!   and picks the highest available rung.
//! * The `CBQ_FORCE_ISA` environment variable (`avx512`, `avx2`, `neon`,
//!   `scalar`) overrides detection — the hook the forced-ISA test matrix and
//!   the CI `simd-dispatch` job use. Forcing an ISA the host lacks clamps to
//!   `Scalar` (never silently upgrades), so a matrix sweep is safe on any
//!   runner. In-process tests and benches use [`force_isa`] instead of
//!   re-reading the environment.
//! * [`SimdOp`] is the dispatch seam: a kernel is a struct holding its
//!   operands, with one method per ISA arm. Arms default *down* the ladder
//!   (`avx512 → avx2_fma → scalar`, `neon → scalar`), so an op only
//!   overrides the arms it actually specializes, and an arm is only ever
//!   invoked when [`active_isa`] proved the features present at runtime.
//!
//! # Determinism contract: [`NumericsMode`]
//!
//! `BitExact` (the default) requires every dispatched arm to reproduce the
//! scalar kernel's output bytes. For the float GEMM this works because the
//! micro-kernel keeps one accumulator per output element and folds k in
//! ascending order; a vector arm that keeps one *lane* per output element
//! and uses separate multiply + add instructions runs the identical
//! per-element fold, just eight elements at a time — same rounding at every
//! step, same bytes. `Fast` lifts that constraint (FMA contraction,
//! reassociation) for peak throughput; it is bench-only and never enabled by
//! the serving path. The integer kernels (popcount, nibble MAC) compute an
//! exact integer sum whose value is independent of grouping, so they run
//! vectorized in both modes.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction sets the kernels can dispatch to, in ladder order (widest
/// first). `Avx2Fma` and `Avx512` exist on `x86_64`, `Neon` on `aarch64`;
/// `Scalar` is the portable reference and is always available.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// AVX-512 (requires F, BW, DQ and VL; the popcount arm additionally
    /// probes VPOPCNTDQ via [`has_vpopcntdq`] and falls back to the AVX2
    /// arm without it).
    Avx512,
    /// AVX2 plus FMA.
    Avx2Fma,
    /// AArch64 Advanced SIMD.
    Neon,
    /// Portable scalar reference — the byte-level ground truth.
    Scalar,
}

impl Isa {
    /// Every ISA, widest first — the probe order of [`Isa::detect`] and the
    /// candidate list benches iterate when reporting per-ISA results.
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2Fma, Isa::Neon, Isa::Scalar];

    /// Stable lower-case name used in banners, stats and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512",
            Isa::Avx2Fma => "avx2+fma",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }

    /// Parses a `CBQ_FORCE_ISA` token. Accepts the canonical names plus the
    /// obvious aliases; returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx512" | "avx-512" => Some(Isa::Avx512),
            "avx2" | "avx2+fma" | "avx2fma" => Some(Isa::Avx2Fma),
            "neon" => Some(Isa::Neon),
            "scalar" | "none" => Some(Isa::Scalar),
            _ => None,
        }
    }

    /// Whether the running host can execute this ISA's arms. Checked with
    /// the std runtime feature probes, so a binary compiled for a generic
    /// target still uses the widest ISA the actual CPU has.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx512f")
                        && std::arch::is_x86_feature_detected!("avx512bw")
                        && std::arch::is_x86_feature_detected!("avx512dq")
                        && std::arch::is_x86_feature_detected!("avx512vl")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// The widest ISA available on this host.
    pub fn detect() -> Isa {
        *Isa::ALL
            .iter()
            .find(|isa| isa.is_available())
            .unwrap_or(&Isa::Scalar)
    }

    /// All ISAs available on this host, widest first (always ends with
    /// `Scalar`) — what the forced-ISA test matrices sweep.
    pub fn available() -> Vec<Isa> {
        Isa::ALL
            .iter()
            .copied()
            .filter(|isa| isa.is_available())
            .collect()
    }

    /// Numeric encoding for the `kernels.isa` telemetry gauge: ladder rung
    /// from 0 (`Scalar`) to 3 (`Avx512`). Gauges carry `f64`, so the ISA is
    /// reported as its rung rather than a string.
    pub fn gauge_value(self) -> f64 {
        match self {
            Isa::Scalar => 0.0,
            Isa::Neon => 1.0,
            Isa::Avx2Fma => 2.0,
            Isa::Avx512 => 3.0,
        }
    }
}

/// Whether the host has AVX-512 VPOPCNTDQ (Ice Lake+). The AVX-512 popcount
/// arm uses it when present and falls back to the AVX2 lookup-table popcount
/// otherwise; GEMM and nibble arms don't need it.
pub fn has_vpopcntdq() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

const ISA_UNSET: u8 = u8::MAX;

/// The process-wide active ISA. `ISA_UNSET` until the first [`active_isa`]
/// call resolves `CBQ_FORCE_ISA` / detection, or a [`force_isa`] call pins
/// it explicitly.
static ACTIVE_ISA: AtomicU8 = AtomicU8::new(ISA_UNSET);

fn encode_isa(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => 0,
        Isa::Neon => 1,
        Isa::Avx2Fma => 2,
        Isa::Avx512 => 3,
    }
}

fn decode_isa(v: u8) -> Isa {
    match v {
        1 => Isa::Neon,
        2 => Isa::Avx2Fma,
        3 => Isa::Avx512,
        _ => Isa::Scalar,
    }
}

/// Resolves the startup ISA: `CBQ_FORCE_ISA` if set (clamped to `Scalar`
/// when the named ISA is unavailable on this host), detection otherwise.
fn isa_from_env() -> Isa {
    match std::env::var("CBQ_FORCE_ISA") {
        Ok(s) if !s.trim().is_empty() => match Isa::parse(&s) {
            Some(isa) if isa.is_available() => isa,
            Some(_) => Isa::Scalar,
            None => {
                eprintln!("cbq: ignoring unknown CBQ_FORCE_ISA value {s:?}; using detected ISA");
                Isa::detect()
            }
        },
        _ => Isa::detect(),
    }
}

/// The ISA every dispatched kernel runs on. Resolved once (environment
/// override, then detection) and cached; the steady-state cost is a single
/// relaxed atomic load per kernel call.
pub fn active_isa() -> Isa {
    let v = ACTIVE_ISA.load(Ordering::Relaxed);
    if v != ISA_UNSET {
        return decode_isa(v);
    }
    let isa = isa_from_env();
    ACTIVE_ISA.store(encode_isa(isa), Ordering::Relaxed);
    isa
}

/// Pins the active ISA for this process — the in-process override the
/// forced-ISA test matrices and the per-ISA bench arms use (sweeping the
/// environment variable would need one process per ISA). `Some(isa)` clamps
/// to `Scalar` if the host lacks `isa`; `None` re-resolves from
/// `CBQ_FORCE_ISA` / detection. Returns the ISA that is now active.
pub fn force_isa(isa: Option<Isa>) -> Isa {
    let resolved = match isa {
        Some(i) if i.is_available() => i,
        Some(_) => Isa::Scalar,
        None => isa_from_env(),
    };
    ACTIVE_ISA.store(encode_isa(resolved), Ordering::Relaxed);
    resolved
}

/// Float-accumulation policy for the dispatched GEMM micro-kernel.
///
/// The integer kernels ignore this: their sums are exact at any grouping, so
/// they vectorize in both modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum NumericsMode {
    /// Every dispatched arm must reproduce the scalar kernel's bytes:
    /// separate multiply + add, ascending-k fold, one accumulator chain per
    /// output element. The default, and the only mode the serving path runs.
    #[default]
    BitExact,
    /// Vector arms may contract to FMA and reassociate the k fold for peak
    /// throughput. Results are deterministic for a fixed build + ISA but are
    /// *not* byte-comparable to scalar — bench-only.
    Fast,
}

impl NumericsMode {
    /// Stable name used in banners, stats and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            NumericsMode::BitExact => "bit-exact",
            NumericsMode::Fast => "fast",
        }
    }

    /// Parses a `CBQ_NUMERICS` token.
    pub fn parse(s: &str) -> Option<NumericsMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bit-exact" | "bitexact" | "exact" => Some(NumericsMode::BitExact),
            "fast" => Some(NumericsMode::Fast),
            _ => None,
        }
    }

    /// Numeric encoding for the `kernels.numerics` telemetry gauge.
    pub fn gauge_value(self) -> f64 {
        match self {
            NumericsMode::BitExact => 0.0,
            NumericsMode::Fast => 1.0,
        }
    }
}

const NUMERICS_UNSET: u8 = u8::MAX;

static NUMERICS: AtomicU8 = AtomicU8::new(NUMERICS_UNSET);

/// The active float-accumulation policy: `CBQ_NUMERICS` on first read
/// (defaulting to `BitExact`), until [`set_numerics_mode`] overrides it.
pub fn numerics_mode() -> NumericsMode {
    match NUMERICS.load(Ordering::Relaxed) {
        0 => NumericsMode::BitExact,
        1 => NumericsMode::Fast,
        _ => {
            let mode = std::env::var("CBQ_NUMERICS")
                .ok()
                .and_then(|s| NumericsMode::parse(&s))
                .unwrap_or_default();
            NUMERICS.store(mode.gauge_value() as u8, Ordering::Relaxed);
            mode
        }
    }
}

/// Sets the process-wide numerics mode. The pipeline applies
/// `CqConfig.numerics` here at run start; the serving path pins `BitExact`
/// before loading models (serving never reassociates).
pub fn set_numerics_mode(mode: NumericsMode) {
    NUMERICS.store(mode.gauge_value() as u8, Ordering::Relaxed);
}

/// A kernel with per-ISA specializations — the dispatch seam.
///
/// Implementors are operand-holding structs; each ISA arm consumes the op.
/// Default arms delegate down the ladder (`avx512 → avx2_fma → scalar`,
/// `neon → scalar`), which is always sound: every AVX-512-capable host also
/// executes AVX2+FMA, and `scalar` runs anywhere. [`SimdOp::run`] is the
/// only place an arm is selected, and callers pass it an ISA obtained from
/// [`active_isa`] / [`force_isa`], both of which verify availability — the
/// invariant that makes the `unsafe { target_feature }` calls inside the
/// arms sound.
pub trait SimdOp {
    /// The kernel's result type.
    type Output;

    /// Portable reference arm; in `BitExact` mode every other arm must
    /// reproduce its bytes.
    fn scalar(self) -> Self::Output;

    /// AVX2+FMA arm.
    fn avx2_fma(self) -> Self::Output
    where
        Self: Sized,
    {
        self.scalar()
    }

    /// AVX-512 arm. Defaults to the AVX2+FMA arm: any host that can run
    /// AVX-512 can run AVX2+FMA.
    fn avx512(self) -> Self::Output
    where
        Self: Sized,
    {
        self.avx2_fma()
    }

    /// AArch64 NEON arm.
    fn neon(self) -> Self::Output
    where
        Self: Sized,
    {
        self.scalar()
    }

    /// Runs the arm for `isa`. `isa` must come from [`active_isa`] /
    /// [`force_isa`] (or otherwise be verified available on this host).
    fn run(self, isa: Isa) -> Self::Output
    where
        Self: Sized,
    {
        debug_assert!(isa.is_available(), "dispatching to unavailable ISA");
        match isa {
            Isa::Avx512 => self.avx512(),
            Isa::Avx2Fma => self.avx2_fma(),
            Isa::Neon => self.neon(),
            Isa::Scalar => self.scalar(),
        }
    }

    /// Runs the arm for the process-wide [`active_isa`].
    fn dispatch(self) -> Self::Output
    where
        Self: Sized,
    {
        self.run(active_isa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_detect_returns_available() {
        assert!(Isa::Scalar.is_available());
        assert!(Isa::detect().is_available());
        let avail = Isa::available();
        assert_eq!(avail.last(), Some(&Isa::Scalar), "scalar closes the ladder");
        assert!(avail.contains(&Isa::detect()));
    }

    #[test]
    fn parse_round_trips_canonical_names() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
        }
        assert_eq!(Isa::parse("AVX2"), Some(Isa::Avx2Fma));
        assert_eq!(Isa::parse("riscv-v"), None);
        for mode in [NumericsMode::BitExact, NumericsMode::Fast] {
            assert_eq!(NumericsMode::parse(mode.name()), Some(mode));
        }
    }

    #[test]
    fn force_isa_pins_and_clamps() {
        let prev = active_isa();
        assert_eq!(force_isa(Some(Isa::Scalar)), Isa::Scalar);
        assert_eq!(active_isa(), Isa::Scalar);
        // Forcing an unavailable ISA must clamp to scalar, never upgrade.
        let unavailable = Isa::ALL.iter().copied().find(|i| !i.is_available());
        if let Some(isa) = unavailable {
            assert_eq!(force_isa(Some(isa)), Isa::Scalar);
        }
        force_isa(None);
        // Restore whatever the process had (other tests may run after us).
        force_isa(Some(prev));
        force_isa(None);
    }

    #[test]
    fn numerics_defaults_to_bit_exact_and_set_overrides() {
        set_numerics_mode(NumericsMode::BitExact);
        assert_eq!(numerics_mode(), NumericsMode::BitExact);
        set_numerics_mode(NumericsMode::Fast);
        assert_eq!(numerics_mode(), NumericsMode::Fast);
        set_numerics_mode(NumericsMode::BitExact);
    }

    #[test]
    fn gauge_values_follow_the_ladder() {
        assert!(Isa::Avx512.gauge_value() > Isa::Avx2Fma.gauge_value());
        assert!(Isa::Avx2Fma.gauge_value() > Isa::Neon.gauge_value());
        assert!(Isa::Neon.gauge_value() > Isa::Scalar.gauge_value());
    }

    struct Probe;
    impl SimdOp for Probe {
        type Output = &'static str;
        fn scalar(self) -> &'static str {
            "scalar"
        }
    }

    #[test]
    fn simd_op_defaults_fall_down_the_ladder() {
        for isa in Isa::available() {
            assert_eq!(Probe.run(isa), "scalar", "default arms delegate to scalar");
        }
    }
}
