//! Versioned, checksummed checkpoint files and a per-run store.
//!
//! Container layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes   "CBQCKPT\x01"
//! schema       u32       writer's schema version
//! phase        str       phase name (length-prefixed UTF-8)
//! payload_len  u64       payload byte count
//! payload      bytes
//! crc64        u64       CRC-64/XZ over everything above
//! ```
//!
//! Readers verify magic, declared lengths and the trailing checksum before
//! handing the payload out, so a torn or bit-flipped file surfaces as
//! [`ResilienceError::Corrupt`] — never as silently wrong weights.

use crate::atomic::atomic_write;
use crate::codec::{ByteReader, ByteWriter};
use crate::error::{ResilienceError, Result};
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CBQCKPT\x01";

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-free bitwise form.
/// Checkpoints are megabytes at most and written once per phase, so the
/// simple implementation is plenty fast.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= b as u64;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// One decoded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Pipeline phase this checkpoint completes.
    pub phase: String,
    /// Schema version the writer used.
    pub schema_version: u32,
    /// Opaque phase payload (see `cbq-core`'s codecs).
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// Serializes the container (header + payload + checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.schema_version);
        w.put_str(&self.phase);
        w.put_usize(self.payload.len());
        let mut out = Vec::with_capacity(MAGIC.len() + w.len() + self.payload.len() + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&w.into_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc64(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and integrity-checks a container.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Corrupt`] on bad magic, short file, length
    /// mismatch or checksum mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(ResilienceError::Corrupt(format!(
                "file too short ({} bytes) to be a checkpoint",
                bytes.len()
            )));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ResilienceError::Corrupt("bad magic".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
        let computed = crc64(body);
        if stored != computed {
            return Err(ResilienceError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut r = ByteReader::new(&body[MAGIC.len()..]);
        let schema_version = r.get_u32().map_err(corrupt)?;
        let phase = r.get_string().map_err(corrupt)?;
        let payload_len = r.get_usize().map_err(corrupt)?;
        if payload_len != r.remaining() {
            return Err(ResilienceError::Corrupt(format!(
                "payload length {payload_len} disagrees with {} bytes present",
                r.remaining()
            )));
        }
        let payload = r.get_bytes_exact(payload_len).map_err(corrupt)?;
        Ok(Checkpoint {
            phase,
            schema_version,
            payload,
        })
    }
}

fn corrupt(e: ResilienceError) -> ResilienceError {
    ResilienceError::Corrupt(format!("malformed header: {e}"))
}

/// A directory of per-phase checkpoints for one run.
///
/// Each phase writes one file, `<phase>.ckpt`, atomically. Loading
/// verifies integrity and the expected schema version; a corrupt file is
/// reported (not returned), so callers fall back to recomputing that
/// phase from the previous one.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    schema_version: u32,
}

/// Outcome of [`CheckpointStore::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// A valid checkpoint for the phase was found.
    Loaded(Vec<u8>),
    /// No checkpoint file exists for the phase.
    Absent,
    /// A file exists but failed integrity or version checks.
    Invalid(ResilienceError),
}

impl LoadOutcome {
    /// The payload, if a valid checkpoint was loaded.
    pub fn payload(self) -> Option<Vec<u8>> {
        match self {
            LoadOutcome::Loaded(p) => Some(p),
            _ => None,
        }
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>, schema_version: u32) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| ResilienceError::Io(format!("create checkpoint dir {dir:?}: {e}")))?;
        Ok(CheckpointStore {
            dir,
            schema_version,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a phase's checkpoint file.
    pub fn path_for(&self, phase: &str) -> PathBuf {
        self.dir.join(format!("{phase}.ckpt"))
    }

    /// Atomically writes a phase checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] on filesystem failure.
    pub fn save(&self, phase: &str, payload: Vec<u8>) -> Result<()> {
        let ckpt = Checkpoint {
            phase: phase.to_string(),
            schema_version: self.schema_version,
            payload,
        };
        atomic_write(self.path_for(phase), &ckpt.to_bytes())
    }

    /// Loads and verifies a phase checkpoint.
    ///
    /// Integrity failures are *returned as data* ([`LoadOutcome::Invalid`])
    /// rather than as an `Err`: a corrupt checkpoint is an expected,
    /// recoverable condition — the caller recomputes the phase.
    pub fn load(&self, phase: &str) -> LoadOutcome {
        let path = self.path_for(phase);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Absent,
            Err(e) => {
                return LoadOutcome::Invalid(ResilienceError::Io(format!("read {path:?}: {e}")))
            }
        };
        let ckpt = match Checkpoint::from_bytes(&bytes) {
            Ok(c) => c,
            Err(e) => return LoadOutcome::Invalid(e),
        };
        if ckpt.schema_version != self.schema_version {
            return LoadOutcome::Invalid(ResilienceError::SchemaVersion {
                found: ckpt.schema_version,
                expected: self.schema_version,
            });
        }
        if ckpt.phase != phase {
            return LoadOutcome::Invalid(ResilienceError::Corrupt(format!(
                "file {path:?} holds phase {:?}, expected {phase:?}",
                ckpt.phase
            )));
        }
        LoadOutcome::Loaded(ckpt.payload)
    }

    /// Removes a phase's checkpoint (used when a later run invalidates
    /// earlier state). Missing files are fine.
    pub fn invalidate(&self, phase: &str) {
        let _ = fs::remove_file(self.path_for(phase));
    }

    /// Atomically records run metadata as the `meta` pseudo-phase.
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Io`] on filesystem failure.
    pub fn save_meta(&self, meta: &RunMeta) -> Result<()> {
        self.save(RunMeta::PHASE, meta.to_bytes())
    }

    /// Loads run metadata saved by [`CheckpointStore::save_meta`].
    ///
    /// Missing or corrupt metadata returns `None` — metadata is advisory
    /// (it describes how a run was produced); it must never block a resume.
    pub fn load_meta(&self) -> Option<RunMeta> {
        let payload = self.load(RunMeta::PHASE).payload()?;
        RunMeta::from_bytes(&payload).ok()
    }
}

/// Metadata describing how a run's checkpoints were produced.
///
/// Saved as `meta.ckpt` next to the phase checkpoints. The CQ pipeline's
/// phases are bit-exact at any worker count, so the recorded `threads` is
/// informational — a resumed run may use a different thread count and
/// still reproduce identical bytes — but recording it lets reports and
/// post-mortems state exactly how a checkpoint came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Worker-thread count the run was configured with.
    pub threads: u32,
}

impl RunMeta {
    /// Pseudo-phase name under which the metadata file is stored.
    pub const PHASE: &'static str = "meta";

    /// Serializes into the payload byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.threads);
        w.into_bytes()
    }

    /// Deserializes a payload written by [`RunMeta::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ResilienceError::Corrupt`] on truncated or oversized
    /// payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunMeta> {
        let mut r = ByteReader::new(bytes);
        let threads = r
            .get_u32()
            .map_err(|e| ResilienceError::Corrupt(format!("run meta: {e}")))?;
        if !r.is_exhausted() {
            return Err(ResilienceError::Corrupt(format!(
                "run meta: {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(RunMeta { threads })
    }
}

impl ByteReader<'_> {
    /// Reads exactly `n` raw bytes (used by the container parser, where
    /// the length was validated against the file size already).
    pub fn get_bytes_exact(&mut self, n: usize) -> Result<Vec<u8>> {
        let mut v = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            v.push(self.get_u8()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("cbq_resilience_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 1).unwrap()
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn save_load_round_trip() {
        let s = store("roundtrip");
        s.save("scores", vec![1, 2, 3, 250]).unwrap();
        assert_eq!(s.load("scores"), LoadOutcome::Loaded(vec![1, 2, 3, 250]));
        assert_eq!(s.load("missing"), LoadOutcome::Absent);
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn every_truncation_is_detected() {
        let s = store("trunc");
        s.save("search", (0..200u8).collect()).unwrap();
        let path = s.path_for("search");
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            match s.load("search") {
                LoadOutcome::Invalid(_) => {}
                other => panic!("truncation at {cut} not detected: {other:?}"),
            }
        }
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let s = store("bitflip");
        s.save("refine", vec![9; 64]).unwrap();
        let path = s.path_for("refine");
        let full = fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            match s.load("refine") {
                LoadOutcome::Invalid(_) => {}
                other => panic!("bit flip in byte {byte} not detected: {other:?}"),
            }
        }
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn schema_and_phase_mismatches_rejected() {
        let s = store("schema");
        s.save("calibrate", vec![1]).unwrap();
        let wrong_version = CheckpointStore::open(s.dir().to_path_buf(), 2).unwrap();
        assert!(matches!(
            wrong_version.load("calibrate"),
            LoadOutcome::Invalid(ResilienceError::SchemaVersion {
                found: 1,
                expected: 2
            })
        ));
        // phase name inside the file must match the file the caller asked for
        fs::copy(s.path_for("calibrate"), s.path_for("search")).unwrap();
        assert!(matches!(s.load("search"), LoadOutcome::Invalid(_)));
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn run_meta_round_trip() {
        let s = store("meta");
        assert_eq!(s.load_meta(), None);
        s.save_meta(&RunMeta { threads: 7 }).unwrap();
        assert_eq!(s.load_meta(), Some(RunMeta { threads: 7 }));
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn run_meta_rejects_malformed_payloads() {
        assert!(RunMeta::from_bytes(&[1, 2]).is_err());
        let mut long = RunMeta { threads: 4 }.to_bytes();
        long.push(0);
        assert!(RunMeta::from_bytes(&long).is_err());
    }

    #[test]
    fn corrupt_run_meta_is_advisory_not_fatal() {
        let s = store("meta_corrupt");
        s.save_meta(&RunMeta { threads: 4 }).unwrap();
        let path = s.path_for(RunMeta::PHASE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.load_meta(), None);
        fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn invalidate_removes() {
        let s = store("invalidate");
        s.save("pretrain", vec![5]).unwrap();
        s.invalidate("pretrain");
        assert_eq!(s.load("pretrain"), LoadOutcome::Absent);
        s.invalidate("pretrain"); // second removal is a no-op
        fs::remove_dir_all(s.dir()).ok();
    }
}
