//! Crash-safety layer for the CBQ workspace.
//!
//! The CQ pipeline (pretrain → score → calibrate → search → refine) can
//! run for hours; this crate makes a killed or corrupted run recoverable
//! and a numerically poisoned run diagnosable:
//!
//! - [`atomic_write`] — write-temp → fsync → rename file replacement, so
//!   readers never observe a torn file;
//! - [`CheckpointStore`] / [`Checkpoint`] — versioned, CRC-64-checksummed
//!   per-phase checkpoints with corruption detection and fallback;
//! - [`ByteWriter`] / [`ByteReader`] — a bounds-checked binary codec that
//!   stores floats as raw IEEE-754 bits, making resume bit-exact;
//! - [`GuardPolicy`] / [`GuardState`] and the `ensure_finite_*` checks —
//!   NaN/Inf detection with abort / skip-batch / halve-LR reactions;
//! - [`SearchBudget`] / [`BudgetTracker`] — probe-count and wall-clock
//!   limits that end the threshold search gracefully;
//! - [`FaultPlan`] — deterministic fault injection (fail at phase, poison
//!   a gradient step, truncate a checkpoint) for chaos tests.
//!
//! The crate is dependency-free on purpose: it sits below every other
//! workspace crate and must build anywhere `std` does.

#![warn(missing_docs)]

mod atomic;
mod budget;
mod checkpoint;
mod codec;
mod error;
mod fault;
mod guards;

pub use atomic::{atomic_write, atomic_write_text};
pub use budget::{BudgetExhausted, BudgetTracker, SearchBudget};
pub use checkpoint::{crc64, Checkpoint, CheckpointStore, LoadOutcome, RunMeta};
pub use codec::{ByteReader, ByteWriter};
pub use error::{ResilienceError, Result};
pub use fault::FaultPlan;
pub use guards::{
    ensure_finite_f32, ensure_finite_f64, scan_finite_f32, scan_finite_f64, FiniteReport,
    GuardAction, GuardPolicy, GuardState,
};
