use std::error::Error;
use std::fmt;

/// Error produced by the resilience layer.
///
/// I/O failures are carried as strings (`std::io::Error` is neither
/// `Clone` nor `PartialEq`, and callers only ever report these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// An underlying file operation failed.
    Io(String),
    /// A checkpoint file failed an integrity check (bad magic, length or
    /// checksum). The message names the file and the failed check.
    Corrupt(String),
    /// A checkpoint was written by an incompatible schema.
    SchemaVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// A decode ran past the end of the payload.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// A decoded value is structurally invalid (bad tag, absurd length).
    Decode(String),
    /// A deterministic fault injected by a [`FaultPlan`](crate::FaultPlan)
    /// fired; the message names the injection site.
    FaultInjected(String),
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Io(msg) => write!(f, "i/o error: {msg}"),
            ResilienceError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ResilienceError::SchemaVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint schema v{found}, this build expects v{expected}"
                )
            }
            ResilienceError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated payload: needed {needed} bytes, {available} left"
                )
            }
            ResilienceError::Decode(msg) => write!(f, "decode error: {msg}"),
            ResilienceError::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl Error for ResilienceError {}

impl From<std::io::Error> for ResilienceError {
    fn from(e: std::io::Error) -> Self {
        ResilienceError::Io(e.to_string())
    }
}

/// Result alias for resilience operations.
pub type Result<T> = std::result::Result<T, ResilienceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ResilienceError::Corrupt("x.ckpt: bad crc".into())
            .to_string()
            .contains("bad crc"));
        assert!(ResilienceError::SchemaVersion {
            found: 2,
            expected: 1
        }
        .to_string()
        .contains("v2"));
        assert!(ResilienceError::Truncated {
            needed: 8,
            available: 3
        }
        .to_string()
        .contains("8 bytes"));
        assert!(ResilienceError::FaultInjected("search".into())
            .to_string()
            .contains("search"));
    }

    #[test]
    fn io_errors_convert() {
        let e: ResilienceError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
