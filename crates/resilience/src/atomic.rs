//! Atomic file replacement: write-temp → fsync → rename.
//!
//! A killed process can leave a half-written file; readers then see torn
//! JSON or a truncated checkpoint. POSIX `rename(2)` within one directory
//! is atomic, so writing the full contents to a temporary sibling, syncing
//! it, and renaming over the destination guarantees every reader sees
//! either the old complete file or the new complete file — never a mix.

use crate::error::{ResilienceError, Result};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// Parent directories are created as needed. The temporary file lives in
/// the destination directory (rename across filesystems is not atomic)
/// and carries the process id so concurrent writers never collide.
///
/// # Errors
///
/// Returns [`ResilienceError::Io`] for any underlying filesystem error;
/// the temporary file is removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .map_err(|e| ResilienceError::Io(format!("create_dir_all {parent:?}: {e}")))?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| ResilienceError::Io(format!("{path:?} has no file name")))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));

    let write_result = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Durability point: data must be on disk before the rename makes
        // it visible, or a crash could publish an empty file.
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write_result {
        let _ = fs::remove_file(&tmp);
        return Err(ResilienceError::Io(format!("write {tmp:?}: {e}")));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(ResilienceError::Io(format!(
            "rename {tmp:?} -> {path:?}: {e}"
        )));
    }
    // Best-effort directory sync so the rename itself is durable; some
    // filesystems (and all of Windows) don't support fsync on directories.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// [`atomic_write`] for text content.
///
/// # Errors
///
/// Same as [`atomic_write`].
pub fn atomic_write_text(path: impl AsRef<Path>, text: &str) -> Result<()> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cbq_resilience_atomic_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // no temp droppings left behind
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creates_parent_directories() {
        let dir = tmp_dir("parents");
        let path = dir.join("a/b/c.txt");
        atomic_write_text(&path, "nested").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "nested");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_on_directory_target() {
        let dir = tmp_dir("dirtarget");
        // Writing over an existing directory must error, not loop or panic.
        assert!(atomic_write(&dir, b"x").is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
