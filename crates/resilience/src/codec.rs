//! A minimal length-checked binary codec for checkpoint payloads.
//!
//! Floats are written as raw IEEE-754 bits, so an encode → decode round
//! trip is bit-exact — a resumed run sees exactly the numbers the
//! interrupted run computed, which is what makes resume-equals-rerun
//! checkable at all. Every read is bounds-checked and returns
//! [`ResilienceError::Truncated`] instead of panicking on short input.

use crate::error::{ResilienceError, Result};

/// Cap on decoded collection lengths: a corrupted length prefix must fail
/// fast, not attempt a multi-terabyte allocation.
const MAX_LEN: usize = 1 << 32;

/// Append-only byte sink for encoding.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as u64 (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an f32 as its raw bits.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an f64 as its raw bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed f32 slice (raw bits).
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Writes a length-prefixed f64 slice (raw bits).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Writes a length-prefixed usize slice.
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }
}

/// Bounds-checked reader over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ResilienceError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a usize (stored as u64), rejecting values past [`MAX_LEN`].
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        if v > MAX_LEN as u64 {
            return Err(ResilienceError::Decode(format!(
                "length {v} exceeds sanity cap {MAX_LEN}"
            )));
        }
        Ok(v as usize)
    }

    /// Reads an f32 from raw bits.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an f64 from raw bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ResilienceError::Decode(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| ResilienceError::Decode(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed raw byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed f32 vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.get_usize()?;
        // Bound the reservation by what the buffer can actually hold.
        if self.remaining() < len.saturating_mul(4) {
            return Err(ResilienceError::Truncated {
                needed: len * 4,
                available: self.remaining(),
            });
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.get_f32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed f64 vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.get_usize()?;
        if self.remaining() < len.saturating_mul(8) {
            return Err(ResilienceError::Truncated {
                needed: len * 8,
                available: self.remaining(),
            });
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed usize vector.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>> {
        let len = self.get_usize()?;
        if self.remaining() < len.saturating_mul(8) {
            return Err(ResilienceError::Truncated {
                needed: len * 8,
                available: self.remaining(),
            });
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.get_usize()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f32(-0.25);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("thresholds");
        w.put_bytes(&[1, 2, 3]);
        w.put_f32_slice(&[1.5, -2.5]);
        w.put_f64_slice(&[0.125]);
        w.put_usize_slice(&[9, 8]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f32().unwrap(), -0.25);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_string().unwrap(), "thresholds");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.get_f64_vec().unwrap(), vec![0.125]);
        assert_eq!(r.get_usize_vec().unwrap(), vec![9, 8]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bits_survive_round_trip() {
        // Resume must reproduce even pathological values bit-for-bit.
        let weird = f32::from_bits(0x7FC0_1234); // a specific NaN payload
        let mut w = ByteWriter::new();
        w.put_f32(weird);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f32().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.get_f64_vec().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // a "length" that cannot be allocated
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_usize(), Err(ResilienceError::Decode(_))));
    }

    #[test]
    fn bad_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.get_bool().is_err());
        let mut w = ByteWriter::new();
        w.put_usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_string().is_err());
    }
}
